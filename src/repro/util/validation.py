"""Argument-validation helpers shared across the library.

These raise early with actionable messages instead of letting malformed
arrays propagate into numerical code where failures are obscure.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Ensure a scalar is positive (or non-negative when ``strict=False``)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_probability(name: str, value: float) -> float:
    """Ensure a scalar lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_matrix(
    name: str,
    value: np.ndarray,
    *,
    ndim: int = 2,
    dtype: type = float,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce ``value`` to a float ndarray of dimension ``ndim`` and validate it."""
    array = np.asarray(value, dtype=dtype)
    if array.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {array.shape}")
    if not allow_empty and array.size == 0:
        raise ValueError(f"{name} must not be empty")
    return array


def check_finite(name: str, value: np.ndarray) -> np.ndarray:
    """Ensure an array contains no NaN or infinity."""
    array = np.asarray(value)
    if not np.all(np.isfinite(array)):
        bad = int(np.count_nonzero(~np.isfinite(array)))
        raise ValueError(f"{name} contains {bad} non-finite entries")
    return array


def check_shape(
    name: str, value: np.ndarray, expected: Tuple[Optional[int], ...]
) -> np.ndarray:
    """Ensure ``value.shape`` matches ``expected`` (``None`` = wildcard)."""
    array = np.asarray(value)
    if len(array.shape) != len(expected):
        raise ValueError(
            f"{name} must have {len(expected)} dimensions, got shape {array.shape}"
        )
    for axis, (actual, want) in enumerate(zip(array.shape, expected)):
        if want is not None and actual != want:
            raise ValueError(
                f"{name} axis {axis} must have length {want}, got {actual} "
                f"(full shape {array.shape})"
            )
    return array


def check_index_array(
    name: str, value: Sequence[int], *, upper: int, allow_duplicates: bool = False
) -> np.ndarray:
    """Validate an integer index array against ``range(upper)``."""
    indices = np.asarray(value, dtype=int)
    if indices.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {indices.shape}")
    if indices.size and (indices.min() < 0 or indices.max() >= upper):
        raise ValueError(
            f"{name} entries must lie in [0, {upper}), got range "
            f"[{indices.min()}, {indices.max()}]"
        )
    if not allow_duplicates and len(np.unique(indices)) != len(indices):
        raise ValueError(f"{name} must not contain duplicate indices")
    return indices
