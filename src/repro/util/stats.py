"""Latency statistics shared by every benchmark and the load generator.

Two tools, one vocabulary:

* :func:`latency_summary` — exact percentiles over a list of wall-time
  samples, the summary every bench section reports (p50/p95/p99, max,
  mean, all in milliseconds). This used to live as a private helper in
  ``eval/benchmark.py`` and was quietly re-implemented by each new
  section; it is now the single definition all sections (and the load
  generator's closed-loop driver) route through.
* :class:`LatencyHistogram` — fixed geometric-bucket histogram for
  recording per-query latency at load-generator scale. Exact-sample
  percentiles need every observation in memory and a sort per report;
  the histogram is O(buckets) memory regardless of query count, merges
  across worker threads without reordering, and its bucket layout is a
  *fixed* function of the constructor arguments — so two runs (or two
  threads) always bin identically and merged results are independent of
  merge order. Percentiles interpolate within the winning bucket, with
  relative error bounded by the bucket growth factor.

Everything here is pure computation — no clocks, no RNG — so it is
safe to import from deterministic modules.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["LatencyHistogram", "latency_summary", "timed_singles"]

#: Percentiles every latency report carries, as (key, q) pairs.
_SUMMARY_PERCENTILES: Sequence[tuple[str, float]] = (
    ("p50_ms", 50.0),
    ("p95_ms", 95.0),
    ("p99_ms", 99.0),
)


def latency_summary(
    latencies_s: Sequence[float], *, p999: bool = False
) -> Dict[str, float]:
    """Exact-percentile summary of wall-time samples, in milliseconds.

    The shared row schema of every bench section: ``count``, ``p50_ms``,
    ``p95_ms``, ``p99_ms``, ``max_ms``, ``mean_ms`` — plus ``p999_ms``
    when ``p999`` is set (the load-generator sections report four nines;
    the pre-existing sections keep their historical shape so committed
    ``BENCH_PR*.json`` files stay field-for-field comparable).
    """
    if not latencies_s:
        return {"count": 0}
    arr = np.asarray(latencies_s, dtype=float) * 1000.0
    summary: Dict[str, float] = {"count": int(arr.size)}
    for key, q in _SUMMARY_PERCENTILES:
        summary[key] = float(np.percentile(arr, q))
    if p999:
        summary["p999_ms"] = float(np.percentile(arr, 99.9))
    summary["max_ms"] = float(arr.max())
    summary["mean_ms"] = float(arr.mean())
    return summary


def timed_singles(
    call: "object", frames: Sequence[object]
) -> List[float]:
    """Per-call wall times for one sequential pass of ``call`` over ``frames``.

    The single-query latency probe used by the wire bench sections; the
    clock is read here (the benchmark layer) so the called code stays
    wall-clock free.
    """
    import time

    latencies: List[float] = []
    for frame in frames:
        start = time.perf_counter()
        call(frame)  # type: ignore[operator]
        latencies.append(time.perf_counter() - start)
    return latencies


class LatencyHistogram:
    """Fixed geometric-bucket latency histogram.

    Buckets span ``[min_s, max_s)`` with ``buckets_per_decade`` bins per
    factor of ten; an underflow and an overflow bucket catch the rest.
    The layout depends only on the constructor arguments, never on the
    data, so histograms built with the same parameters merge exactly
    and percentile results are independent of recording order.

    Args:
        min_s: Lower edge of the first regular bucket (seconds).
        max_s: Upper edge of the last regular bucket (seconds).
        buckets_per_decade: Resolution; relative percentile error is
            bounded by ``10 ** (1 / buckets_per_decade) - 1`` (≈5.5%
            at the default 40/decade).
    """

    def __init__(
        self,
        min_s: float = 1e-6,
        max_s: float = 1e3,
        buckets_per_decade: int = 40,
    ) -> None:
        if not (0.0 < min_s < max_s):
            raise ValueError(
                f"need 0 < min_s < max_s, got {min_s!r}, {max_s!r}"
            )
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.min_s = float(min_s)
        self.max_s = float(max_s)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(self.max_s / self.min_s)
        count = int(math.ceil(decades * self.buckets_per_decade))
        # Edge i = min_s * 10 ** (i / per_decade); edges[0] == min_s.
        self._edges = self.min_s * np.power(
            10.0, np.arange(count + 1) / self.buckets_per_decade
        )
        # counts[0] is underflow (< min_s); counts[-1] overflow (>= max edge).
        self._counts = np.zeros(count + 2, dtype=np.int64)
        self._total = 0
        self._sum_s = 0.0
        self._max_s = 0.0

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._total

    @property
    def max_seconds(self) -> float:
        return self._max_s

    @property
    def mean_seconds(self) -> float:
        return self._sum_s / self._total if self._total else 0.0

    def record(self, seconds: float) -> None:
        """Record one latency sample."""
        value = float(seconds)
        index = int(np.searchsorted(self._edges, value, side="right"))
        self._counts[index] += 1
        self._total += 1
        self._sum_s += value
        if value > self._max_s:
            self._max_s = value

    def record_many(self, seconds: Sequence[float]) -> None:
        """Record a batch of samples in one vectorized pass."""
        arr = np.asarray(seconds, dtype=float)
        if arr.size == 0:
            return
        indices = np.searchsorted(self._edges, arr, side="right")
        np.add.at(self._counts, indices, 1)
        self._total += int(arr.size)
        self._sum_s += float(arr.sum())
        self._max_s = max(self._max_s, float(arr.max()))

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram (layouts must match)."""
        if (
            other.min_s != self.min_s
            or other.max_s != self.max_s
            or other.buckets_per_decade != self.buckets_per_decade
        ):
            raise ValueError("cannot merge histograms with different layouts")
        self._counts += other._counts
        self._total += other._total
        self._sum_s += other._sum_s
        self._max_s = max(self._max_s, other._max_s)
        return self

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """The ``q``-th percentile in seconds (0 with no samples).

        Linear interpolation inside the winning bucket; the underflow
        bucket reports ``min_s`` scaled by rank, the overflow bucket
        reports the recorded maximum (exact, tracked separately).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self._total == 0:
            return 0.0
        rank = q / 100.0 * self._total
        cumulative = np.cumsum(self._counts)
        index = int(np.searchsorted(cumulative, rank, side="left"))
        index = min(index, len(self._counts) - 1)
        if index >= len(self._counts) - 1:
            return self._max_s
        in_bucket = int(self._counts[index])
        below = int(cumulative[index]) - in_bucket
        fraction = (rank - below) / in_bucket if in_bucket else 0.0
        if index == 0:
            return self.min_s * fraction
        low = float(self._edges[index - 1])
        high = float(self._edges[index])
        return min(low + (high - low) * fraction, self._max_s)

    def summary(self) -> Dict[str, float]:
        """The shared latency row schema, with four nines (milliseconds)."""
        if self._total == 0:
            return {"count": 0}
        row: Dict[str, float] = {"count": self._total}
        for key, q in _SUMMARY_PERCENTILES:
            row[key] = self.percentile(q) * 1000.0
        row["p999_ms"] = self.percentile(99.9) * 1000.0
        row["max_ms"] = self._max_s * 1000.0
        row["mean_ms"] = self.mean_seconds * 1000.0
        return row

    def counts(self) -> np.ndarray:
        """Raw bucket counts (underflow, regular..., overflow); a copy."""
        return self._counts.copy()

    def edges(self) -> np.ndarray:
        """Regular bucket edges in seconds; a copy."""
        return self._edges.copy()

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self._total}, "
            f"p99={self.percentile(99.0) * 1000.0:.3f} ms)"
        )


def merge_histograms(
    histograms: Sequence[LatencyHistogram],
) -> Optional[LatencyHistogram]:
    """Merge per-thread histograms into one (None for an empty list)."""
    if not histograms:
        return None
    merged = histograms[0]
    for other in histograms[1:]:
        merged.merge(other)
    return merged
