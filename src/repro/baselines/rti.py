"""Radio Tomographic Imaging (Wilson & Patwari, IEEE TMC 2010).

RTI is the model-based comparator of the paper's Fig. 5. It images the
attenuation field of the monitored area from per-link RSS *changes* relative
to an empty-room calibration:

1. Measure the link-change vector ``Δy = calibration - live`` (positive where
   a body attenuates a link).
2. Model ``Δy = W a + noise`` where ``a`` is the per-voxel (here: per grid
   cell) attenuation and ``W`` is the ellipse weight model: cell ``j``
   contributes to link ``i`` iff its excess path length is within ``λ``, with
   weight ``1 / sqrt(link length)``.
3. Solve the regularized least squares ``a = (WᵀW + α Cᵀ C)⁻¹ Wᵀ Δy`` where
   ``C`` penalizes differences between adjacent cells (Tikhonov image prior).
4. The target estimate is the attenuation-image peak (optionally the centroid
   of the near-peak region).

Because RTI re-calibrates against the *current* empty room, it is immune to
slow drift — but its accuracy is bounded by the ellipse model and link
density, which is why the paper's fingerprint approach beats it when the
fingerprints are fresh (or freshly reconstructed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.base import DeviceFreeLocalizer
from repro.core.operators import continuity_operator
from repro.sim.deployment import Deployment
from repro.sim.geometry import Point
from repro.util.validation import check_positive


@dataclass(frozen=True)
class RtiConfig:
    """RTI parameters (defaults follow the original paper's regime).

    Attributes:
        lambda_m: Ellipse excess-path-length width of the weight model.
        regularization: Tikhonov weight α on the image smoothness prior.
        peak_fraction: Cells with attenuation within this fraction of the
            peak are averaged for the final position (1.0 = pure argmax).
        min_change_db: Link changes below this magnitude are zeroed
            (denoising; RSSI quantization otherwise leaks into the image).
    """

    lambda_m: float = 0.3
    regularization: float = 3.0
    peak_fraction: float = 0.9
    min_change_db: float = 0.5

    def __post_init__(self) -> None:
        check_positive("lambda_m", self.lambda_m)
        check_positive("regularization", self.regularization, strict=False)
        if not 0.0 < self.peak_fraction <= 1.0:
            raise ValueError(
                f"peak_fraction must lie in (0, 1], got {self.peak_fraction}"
            )
        check_positive("min_change_db", self.min_change_db, strict=False)


class RtiLocalizer(DeviceFreeLocalizer):
    """Radio tomographic imaging over a gridded deployment.

    Args:
        deployment: Link and grid geometry.
        calibration_rss: Empty-room RSS vector measured at (or near) query
            time; RTI's drift immunity comes from keeping this fresh.
        config: Algorithm parameters.
    """

    def __init__(
        self,
        deployment: Deployment,
        calibration_rss: np.ndarray,
        config: Optional[RtiConfig] = None,
    ) -> None:
        self.deployment = deployment
        self.config = config if config is not None else RtiConfig()
        calibration = np.asarray(calibration_rss, dtype=float)
        if calibration.shape != (deployment.link_count,):
            raise ValueError(
                f"calibration shape {calibration.shape} must be "
                f"({deployment.link_count},)"
            )
        self.calibration = calibration
        self._weights = self._build_weight_matrix()
        self._solver = self._build_solver()

    # ------------------------------------------------------------------
    def recalibrate(self, calibration_rss: np.ndarray) -> None:
        """Replace the empty-room calibration (cheap, no survey)."""
        calibration = np.asarray(calibration_rss, dtype=float)
        if calibration.shape != self.calibration.shape:
            raise ValueError(
                f"calibration shape {calibration.shape} must be "
                f"{self.calibration.shape}"
            )
        self.calibration = calibration

    def attenuation_image(self, live_rss: np.ndarray) -> np.ndarray:
        """The reconstructed per-cell attenuation field (the RTI image)."""
        live = np.asarray(live_rss, dtype=float)
        if live.shape != (self.deployment.link_count,):
            raise ValueError(
                f"live vector shape {live.shape} must be "
                f"({self.deployment.link_count},)"
            )
        changes = self.calibration - live
        changes[np.abs(changes) < self.config.min_change_db] = 0.0
        return self._solver @ changes

    def locate(self, live_rss: np.ndarray) -> Point:
        image = self.attenuation_image(live_rss)
        peak = float(image.max())
        if peak <= 0.0:
            # No attenuation anywhere: target absent or invisible; report the
            # room center rather than an arbitrary corner.
            return self.deployment.grid.room.center
        threshold = self.config.peak_fraction * peak
        candidates = np.flatnonzero(image >= threshold)
        weights = image[candidates]
        centers = [self.deployment.grid.center_of(int(j)) for j in candidates]
        total = float(weights.sum())
        return Point(
            float(sum(w * c.x for w, c in zip(weights, centers)) / total),
            float(sum(w * c.y for w, c in zip(weights, centers)) / total),
        )

    # ------------------------------------------------------------------
    def _build_weight_matrix(self) -> np.ndarray:
        grid = self.deployment.grid
        weights = np.zeros((self.deployment.link_count, grid.cell_count))
        for i, link in enumerate(self.deployment.links):
            norm = 1.0 / np.sqrt(max(link.length, 1e-9))
            for j in range(grid.cell_count):
                if link.excess_path_length(grid.center_of(j)) <= self.config.lambda_m:
                    weights[i, j] = norm
        return weights

    def _build_solver(self) -> np.ndarray:
        """Precompute ``(WᵀW + α CᵀC + εI)⁻¹ Wᵀ`` once per deployment."""
        w = self._weights
        difference = continuity_operator(self.deployment.grid).T  # pairs x cells
        gram = w.T @ w + self.config.regularization * (difference.T @ difference)
        gram += 1e-6 * np.eye(gram.shape[0])
        return np.linalg.solve(gram, w.T)
