"""Comparator systems from the paper's Fig. 5: RTI and RASS.

Both are implemented against the same deployment/measurement abstractions as
TafLoc so the Fig. 5 benchmark compares algorithms on identical data.
"""

from repro.baselines.base import DeviceFreeLocalizer
from repro.baselines.rass import RassConfig, RassLocalizer
from repro.baselines.rti import RtiConfig, RtiLocalizer

__all__ = [
    "DeviceFreeLocalizer",
    "RassConfig",
    "RassLocalizer",
    "RtiConfig",
    "RtiLocalizer",
]
