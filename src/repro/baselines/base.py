"""Common interface of device-free localizers (TafLoc, RTI, RASS)."""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from repro.sim.geometry import Point
from repro.sim.trace import LiveTrace


class DeviceFreeLocalizer(abc.ABC):
    """A system that maps one live RSS vector to a position estimate."""

    @abc.abstractmethod
    def locate(self, live_rss: np.ndarray) -> Point:
        """Estimate the target position from a live RSS vector."""

    def locate_trace(self, trace: LiveTrace) -> List[Point]:
        """Estimate every frame of a trace."""
        return [self.locate(frame) for frame in trace.rss]

    def errors(self, trace: LiveTrace) -> np.ndarray:
        """Per-frame Euclidean error (m) against the trace ground truth."""
        if trace.true_positions is None:
            raise ValueError("trace carries no ground-truth positions")
        estimates = self.locate_trace(trace)
        return np.array(
            [
                estimate.distance_to(Point(float(x), float(y)))
                for estimate, (x, y) in zip(estimates, trace.true_positions)
            ]
        )
