"""RASS-style dynamic-fingerprint localizer (after Zhang et al., TPDS 2013).

RASS ("a real-time, accurate and scalable system for tracking
transceiver-free objects") localizes from the *dynamics* of link RSS — the
per-link change a body induces relative to the empty room — rather than from
absolute dBm. Our implementation captures the part of RASS the poster
interacts with: a fingerprint-consuming classifier over ΔRSS signatures with
a best-cover refinement among affected links' midpoints.

Two properties matter for the Fig. 5 reproduction:

* RASS consumes a fingerprint database, so it suffers from drift exactly like
  any fingerprint system ("RASS w/o rec.") — and the poster shows that
  plugging TafLoc's reconstruction underneath it ("RASS w/ rec.") restores
  much of its accuracy. This class therefore takes the fingerprint as a
  constructor argument, so either a stale or a reconstructed matrix can be
  supplied.
* Because RASS matches *changes* rather than absolute values, a common-mode
  drift of all links partially cancels; link-specific drift does not. The
  degradation of "RASS w/o rec." in the figure is the non-common-mode part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.base import DeviceFreeLocalizer
from repro.core.fingerprint import FingerprintMatrix
from repro.sim.deployment import Deployment
from repro.sim.geometry import Point
from repro.util.validation import check_positive


@dataclass(frozen=True)
class RassConfig:
    """RASS parameters.

    Attributes:
        affected_threshold_db: |ΔRSS| above which a link counts as affected
            by the target (the RASS "signal dynamic" detection threshold).
        k: Number of best-matching fingerprint cells blended for the
            position estimate.
        geometric_weight: Blend factor in [0, 1] between the fingerprint
            estimate and the geometric best-cover estimate (centroid of the
            affected links' closest points). RASS leans on geometry when few
            links react.
    """

    affected_threshold_db: float = 2.0
    k: int = 3
    geometric_weight: float = 0.3

    def __post_init__(self) -> None:
        check_positive("affected_threshold_db", self.affected_threshold_db)
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not 0.0 <= self.geometric_weight <= 1.0:
            raise ValueError(
                f"geometric_weight must lie in [0, 1], got {self.geometric_weight}"
            )


class RassLocalizer(DeviceFreeLocalizer):
    """Dynamic-fingerprint localization with geometric refinement.

    Args:
        deployment: Link/grid geometry.
        fingerprint: The fingerprint matrix RASS classifies against — stale
            ("w/o rec.") or reconstructed ("w/ rec."). Its ``empty_rss``
            anchors the ΔRSS templates.
        live_empty_rss: Fresh empty-room calibration used to compute live
            ΔRSS. When omitted, the fingerprint's own (possibly stale)
            calibration is used, modeling a deployment that never
            recalibrates.
        config: Algorithm parameters.
    """

    def __init__(
        self,
        deployment: Deployment,
        fingerprint: FingerprintMatrix,
        *,
        live_empty_rss: Optional[np.ndarray] = None,
        config: Optional[RassConfig] = None,
    ) -> None:
        config = config if config is not None else RassConfig()
        if fingerprint.cell_count != deployment.cell_count:
            raise ValueError(
                f"fingerprint covers {fingerprint.cell_count} cells, deployment "
                f"has {deployment.cell_count}"
            )
        self.deployment = deployment
        self.fingerprint = fingerprint
        self.config = config
        if live_empty_rss is None:
            self._live_empty = fingerprint.empty_rss
        else:
            live_empty = np.asarray(live_empty_rss, dtype=float)
            if live_empty.shape != (deployment.link_count,):
                raise ValueError(
                    f"live_empty_rss shape {live_empty.shape} must be "
                    f"({deployment.link_count},)"
                )
            self._live_empty = live_empty
        # ΔRSS templates: the dip each cell inflicts on each link, per the
        # fingerprint's own calibration.
        self._templates = fingerprint.dips()

    # ------------------------------------------------------------------
    def live_dynamics(self, live_rss: np.ndarray) -> np.ndarray:
        """Per-link ΔRSS (positive = attenuated) of a live vector."""
        live = np.asarray(live_rss, dtype=float)
        if live.shape != (self.deployment.link_count,):
            raise ValueError(
                f"live vector shape {live.shape} must be "
                f"({self.deployment.link_count},)"
            )
        return self._live_empty - live

    def locate(self, live_rss: np.ndarray) -> Point:
        dynamics = self.live_dynamics(live_rss)
        fingerprint_estimate = self._fingerprint_estimate(dynamics)
        geometric_estimate = self._geometric_estimate(dynamics)
        if geometric_estimate is None or self.config.geometric_weight == 0.0:
            return fingerprint_estimate
        w = self.config.geometric_weight
        return Point(
            (1.0 - w) * fingerprint_estimate.x + w * geometric_estimate.x,
            (1.0 - w) * fingerprint_estimate.y + w * geometric_estimate.y,
        )

    # ------------------------------------------------------------------
    def _fingerprint_estimate(self, dynamics: np.ndarray) -> Point:
        deltas = self._templates - dynamics[:, None]
        distances = np.sqrt(np.sum(deltas**2, axis=0))
        k = min(self.config.k, len(distances))
        order = np.argsort(distances)[:k]
        weights = 1.0 / (distances[order] + 1e-6)
        weights = weights / weights.sum()
        grid = self.deployment.grid
        centers = [grid.center_of(int(j)) for j in order]
        return Point(
            float(sum(w * c.x for w, c in zip(weights, centers))),
            float(sum(w * c.y for w, c in zip(weights, centers))),
        )

    def _geometric_estimate(self, dynamics: np.ndarray) -> Optional[Point]:
        """Attenuation-weighted centroid of affected links' midpoints."""
        affected = np.abs(dynamics) >= self.config.affected_threshold_db
        if not affected.any():
            return None
        weights = np.abs(dynamics[affected])
        midpoints = [
            self.deployment.links[i].midpoint
            for i in np.flatnonzero(affected)
        ]
        total = float(weights.sum())
        return Point(
            float(sum(w * m.x for w, m in zip(weights, midpoints)) / total),
            float(sum(w * m.y for w, m in zip(weights, midpoints)) / total),
        )
