"""Many-site registration soak: memory and routing at fleet scale.

The ROADMAP's "millions of users" story implies thousands of registered
sites, but nothing had ever held more than a handful in one process.
:func:`run_site_soak` registers 1k–10k sites on one
:class:`~repro.serve.service.LocalizationService` and records what that
actually costs:

* **memory** — ``VmRSS`` sampled at baseline, after registration, after
  warm, and after the query phase. All soak sites share one cheap
  ``square-<edge>m`` spec, so the manager's fingerprint dedupe should
  commission exactly **one** pipeline for the whole fleet
  (``pipelines_built`` is recorded and gated in the smoke check) — the
  per-site marginal cost is routing metadata, not survey state.
* **query mix** — a Zipf-skewed single-query sweep across the whole
  fleet (every request a different site name through the routing path),
  with latency, throughput, and failure counts.
* **routing tables** — the jump-hash shard distribution of the full
  site population at several shard counts (pure
  :func:`~repro.serve.shard.shard_for_site` math — no worker processes
  are spawned), reporting min/max/imbalance so placement skew at fleet
  scale is a recorded number.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.loadgen.plan import open_loop_plan
from repro.serve import LocalizationService, shard_for_site
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import build_scenario, get_scenario_spec
from repro.util.rng import counter_stream, task_key
from repro.util.stats import LatencyHistogram

__all__ = ["run_site_soak", "vm_rss_kb"]


def vm_rss_kb() -> Optional[int]:
    """Resident set size in kB from ``/proc/self/status`` (None off Linux)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def _routing_stats(
    sites: Sequence[str], shard_counts: Sequence[int]
) -> Dict[str, Dict[str, float]]:
    stats: Dict[str, Dict[str, float]] = {}
    for count in shard_counts:
        loads = np.bincount(
            [shard_for_site(site, count) for site in sites], minlength=count
        )
        mean = float(loads.mean())
        stats[str(count)] = {
            "shards": int(count),
            "min_sites": int(loads.min()),
            "max_sites": int(loads.max()),
            "mean_sites": mean,
            "imbalance_x": float(loads.max() / mean) if mean > 0 else 0.0,
        }
    return stats


def run_site_soak(
    *,
    sites: int,
    spec: str = "square-3m",
    seed: int = 2016,
    queries: int = 500,
    zipf_s: float = 1.1,
    frames: int = 16,
    samples_per_cell: int = 2,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
) -> Dict[str, object]:
    """Register ``sites`` sites on one service; measure memory + routing.

    Returns a plain-data record (the ``soak`` block of the loadgen bench
    section). The query phase drives Zipf-ranked site names through
    ``service.query`` one request at a time, so every request exercises
    the site-routing path with a real localization underneath.
    """
    if sites < 1:
        raise ValueError(f"sites must be >= 1, got {sites}")
    scenario_spec = get_scenario_spec(spec)
    site_names = [f"soak-{index:05d}" for index in range(sites)]
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=5
    )

    record: Dict[str, object] = {
        "sites": int(sites),
        "spec": scenario_spec.name,
        "zipf_s": float(zipf_s),
        "queries": int(queries),
        "rss_kb": {"baseline": vm_rss_kb()},
    }

    service = LocalizationService(protocol=protocol, seed=seed)
    start = time.perf_counter()
    for name in site_names:
        service.register(name, scenario_spec)
    record["register_s"] = time.perf_counter() - start
    record["rss_kb"]["registered"] = vm_rss_kb()

    # All sites share one spec fingerprint: warming the whole fleet runs
    # ONE commissioning survey (the dedupe that makes this soak cheap).
    start = time.perf_counter()
    service.warm()
    record["warm_s"] = time.perf_counter() - start
    record["rss_kb"]["warm"] = vm_rss_kb()
    record["pipelines_built"] = int(service.manager.stats.pipelines_built)

    scenario = build_scenario(scenario_spec.with_seed(seed))
    cells = counter_stream(task_key(seed, "soak-cells")).integers(
        0, scenario.deployment.cell_count, size=frames
    )
    trace = RssCollector(
        scenario, protocol, seed=task_key(seed, "soak-workload")
    ).live_trace(0.0, cells)

    plan = open_loop_plan(
        sites=site_names,
        seed=seed,
        rate_qps=max(1.0, float(queries)),  # pacing-free: offsets unused here
        requests=queries,
        process="uniform",
        zipf_s=zipf_s,
    )
    histogram = LatencyHistogram()
    failed = 0
    start = time.perf_counter()
    for index in range(plan.requests):
        site = plan.site_name(index)
        frame = trace.rss[index % frames]
        begin = time.perf_counter()
        try:
            service.query(site, frame, 0.0)
        except Exception:
            failed += 1
            continue
        histogram.record(time.perf_counter() - begin)
    wall_s = time.perf_counter() - start
    record["rss_kb"]["queried"] = vm_rss_kb()
    distinct: List[int] = np.unique(plan.site_index).tolist()
    record["query_phase"] = {
        "failed_queries": int(failed),
        "completed": int(histogram.count),
        "qps": histogram.count / wall_s if wall_s > 0 else float("inf"),
        "distinct_sites_hit": len(distinct),
        "latency": histogram.summary(),
    }
    baseline = record["rss_kb"]["baseline"]
    warm = record["rss_kb"]["warm"]
    if baseline is not None and warm is not None:
        record["rss_per_site_kb"] = (warm - baseline) / sites
    record["routing"] = _routing_stats(site_names, shard_counts)
    return record
