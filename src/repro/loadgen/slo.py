"""SLO saturation search: the max offered rate a target sustains.

``max-sustained-q/s-under-SLO`` is the headline serving number the
ROADMAP asks for: the highest *offered* (open-loop) rate at which the
target still answers every query correctly with tail latency inside the
SLO, while actually keeping up with the offered rate. The search is a
geometric ramp (double the rate until the target breaks) followed by a
bisection refinement between the last sustained and first failed rates —
O(log) runs instead of a linear sweep.

The search itself is pure control flow over a caller-supplied
``run_at(rate) -> summary`` callable (the bench layer binds it to a real
driver + transport; tests bind it to a synthetic latency model), which
is what makes the monotonicity contract testable: with runs memoized per
rate, a looser SLO can only enlarge the set of passing rates, so the
found maximum is non-decreasing in the SLO bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

__all__ = ["SloSearchResult", "find_max_sustained_qps", "sustains_slo"]


def sustains_slo(
    summary: Mapping[str, object],
    *,
    slo_ms: float,
    percentile: str = "p99_ms",
    achieved_fraction: float = 0.9,
) -> bool:
    """Does one run summary satisfy the SLO pass criterion?

    Four conditions, all required: zero failed queries, zero mismatched
    answers, the chosen latency percentile within ``slo_ms``, and the
    achieved rate at least ``achieved_fraction`` of the offered rate
    (a driver that cannot even *send* at the offered rate is not
    sustaining it, whatever its latency says).
    """
    if int(summary.get("failed_queries", 0)) != 0:
        return False
    if int(summary.get("mismatched_queries", 0)) != 0:
        return False
    latency = summary.get("latency", {})
    if not isinstance(latency, Mapping) or percentile not in latency:
        return False
    if float(latency[percentile]) > slo_ms:  # type: ignore[arg-type]
        return False
    offered = float(summary.get("offered_qps", 0.0))
    achieved = float(summary.get("achieved_qps", 0.0))
    return achieved >= achieved_fraction * offered


@dataclass
class SloSearchResult:
    """Outcome of one saturation search."""

    slo_ms: float
    percentile: str
    max_sustained_qps: float
    sustained_summary: Optional[Dict[str, object]]
    probes: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "slo_ms": float(self.slo_ms),
            "percentile": self.percentile,
            "max_sustained_qps": float(self.max_sustained_qps),
            "sustained": self.sustained_summary,
            "probes": self.probes,
        }


def find_max_sustained_qps(
    run_at: Callable[[float], Mapping[str, object]],
    *,
    slo_ms: float,
    percentile: str = "p99_ms",
    start_qps: float = 50.0,
    max_qps: float = 1_000_000.0,
    achieved_fraction: float = 0.9,
    refine_steps: int = 3,
) -> SloSearchResult:
    """Find the highest offered rate ``run_at`` sustains under the SLO.

    Ramp: probe ``start_qps``, doubling while the target passes
    (:func:`sustains_slo`), up to ``max_qps``. If even ``start_qps``
    fails, the answer is 0. Otherwise bisect ``refine_steps`` times
    between the last passing and first failing rates. Every probe's
    summary is kept in ``probes`` (tagged with its verdict) so a report
    shows the whole saturation curve, not just the answer.
    """
    if slo_ms <= 0:
        raise ValueError(f"slo_ms must be > 0, got {slo_ms}")
    if start_qps <= 0:
        raise ValueError(f"start_qps must be > 0, got {start_qps}")
    if max_qps < start_qps:
        raise ValueError(
            f"max_qps ({max_qps}) must be >= start_qps ({start_qps})"
        )
    probes: List[Dict[str, object]] = []
    summaries: Dict[float, Mapping[str, object]] = {}

    def probe(rate: float) -> bool:
        summary = summaries.get(rate)
        if summary is None:
            summary = run_at(rate)
            summaries[rate] = summary
            probes.append(dict(summary))
        verdict = sustains_slo(
            summary,
            slo_ms=slo_ms,
            percentile=percentile,
            achieved_fraction=achieved_fraction,
        )
        for row in probes:
            if row.get("offered_qps") == float(summary.get("offered_qps", rate)):
                row["sustained"] = bool(verdict)
        return verdict

    best = 0.0
    rate = float(start_qps)
    first_bad: Optional[float] = None
    while rate <= max_qps:
        if probe(rate):
            best = rate
            rate *= 2.0
        else:
            first_bad = rate
            break
    if best > 0.0 and first_bad is not None:
        low, high = best, first_bad
        for _ in range(max(0, refine_steps)):
            mid = (low + high) / 2.0
            if probe(mid):
                low = mid
            else:
                high = mid
        best = low
    best = min(best, float(max_qps))
    sustained = summaries.get(best)
    return SloSearchResult(
        slo_ms=float(slo_ms),
        percentile=percentile,
        max_sustained_qps=best,
        sustained_summary=dict(sustained) if sustained is not None else None,
        probes=probes,
    )
