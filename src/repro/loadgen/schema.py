"""Structural validation for loadgen reports (no third-party deps).

The smoke gate promises "schema-valid JSON" without a jsonschema
dependency: a template is a nested description — a ``type`` (or tuple of
types) for leaves, a dict of required keys for objects, and
``Optional(template)`` for keys that may be absent or None. Validation
returns a list of human-readable problems (empty = valid), each naming
the JSON path that broke, so a CI failure says *what* is malformed, not
just that something is.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, Union

__all__ = [
    "DRIVER_SUMMARY_TEMPLATE",
    "LATENCY_TEMPLATE",
    "Optional",
    "SLO_RESULT_TEMPLATE",
    "SOAK_TEMPLATE",
    "validate",
    "validate_loadgen_section",
]

_NUMBER = (int, float)


class Optional:
    """Marks a template key as allowed to be absent or None."""

    def __init__(self, template: Any) -> None:
        self.template = template


Template = Union[type, Tuple[type, ...], Dict[str, Any], list, Optional]


def validate(value: Any, template: Template, path: str = "$") -> List[str]:
    """Check ``value`` against ``template``; returns problems (empty = ok)."""
    problems: List[str] = []
    if isinstance(template, Optional):
        if value is None:
            return problems
        return validate(value, template.template, path)
    if isinstance(template, dict):
        if not isinstance(value, dict):
            return [f"{path}: expected object, got {type(value).__name__}"]
        for key, sub in template.items():
            if key not in value:
                if isinstance(sub, Optional):
                    continue
                problems.append(f"{path}.{key}: missing required key")
                continue
            problems.extend(validate(value[key], sub, f"{path}.{key}"))
        return problems
    if isinstance(template, list):
        if not isinstance(value, list):
            return [f"{path}: expected array, got {type(value).__name__}"]
        for index, item in enumerate(value):
            problems.extend(validate(item, template[0], f"{path}[{index}]"))
        return problems
    if isinstance(template, tuple) or isinstance(template, type):
        # bool is an int subclass; don't let True satisfy a number slot.
        if isinstance(value, bool) and bool not in (
            template if isinstance(template, tuple) else (template,)
        ):
            return [f"{path}: expected {template}, got bool"]
        if not isinstance(value, template):
            expected = (
                "/".join(t.__name__ for t in template)
                if isinstance(template, tuple)
                else template.__name__
            )
            return [
                f"{path}: expected {expected}, got {type(value).__name__}"
            ]
        return problems
    return [f"{path}: unsupported template {template!r}"]


#: A non-empty latency summary row (the shared bench schema, four nines).
LATENCY_TEMPLATE: Dict[str, Any] = {
    "count": int,
    "p50_ms": _NUMBER,
    "p95_ms": _NUMBER,
    "p99_ms": _NUMBER,
    "p999_ms": Optional(_NUMBER),
    "max_ms": _NUMBER,
    "mean_ms": _NUMBER,
}

#: One driver run (:meth:`repro.loadgen.driver.DriverResult.summary`).
DRIVER_SUMMARY_TEMPLATE: Dict[str, Any] = {
    "arrival": str,
    "transport": str,
    "offered_qps": _NUMBER,
    "achieved_qps": _NUMBER,
    "requests": int,
    "completed": int,
    "failed_queries": int,
    "mismatched_queries": int,
    "wall_s": _NUMBER,
    "latency": LATENCY_TEMPLATE,
}

#: One saturation search (:meth:`repro.loadgen.slo.SloSearchResult.as_dict`).
SLO_RESULT_TEMPLATE: Dict[str, Any] = {
    "slo_ms": _NUMBER,
    "percentile": str,
    "max_sustained_qps": _NUMBER,
    "sustained": Optional(DRIVER_SUMMARY_TEMPLATE),
    "probes": [DRIVER_SUMMARY_TEMPLATE],
}

#: One many-site soak (:func:`repro.loadgen.soak.run_site_soak`).
SOAK_TEMPLATE: Dict[str, Any] = {
    "sites": int,
    "spec": str,
    "zipf_s": _NUMBER,
    "queries": int,
    "register_s": _NUMBER,
    "warm_s": _NUMBER,
    "pipelines_built": int,
    "rss_kb": {
        "baseline": Optional(int),
        "registered": Optional(int),
        "warm": Optional(int),
        "queried": Optional(int),
    },
    "query_phase": {
        "failed_queries": int,
        "completed": int,
        "qps": _NUMBER,
        "distinct_sites_hit": int,
        "latency": LATENCY_TEMPLATE,
    },
    "routing": dict,
}


def validate_loadgen_section(section: Dict[str, Any]) -> List[str]:
    """Validate a full ``loadgen`` bench section record."""
    template: Dict[str, Any] = {
        "sites": [str],
        "plan": {
            "arrival": str,
            "process": str,
            "seed": int,
            "sites": int,
            "zipf_s": _NUMBER,
            "rate_qps": _NUMBER,
            "clients": int,
            "requests": int,
            "duration_s": _NUMBER,
            "fingerprint": str,
        },
        "plan_bit_identical": bool,
        "slo_ms": _NUMBER,
        "saturation": dict,
        "closed_loop": Optional(DRIVER_SUMMARY_TEMPLATE),
        "perturbation": Optional(dict),
        "soak": Optional(SOAK_TEMPLATE),
    }
    problems = validate(section, template, "$.loadgen")
    saturation = section.get("saturation")
    if isinstance(saturation, dict):
        for key, result in saturation.items():
            problems.extend(
                validate(result, SLO_RESULT_TEMPLATE, f"$.loadgen.saturation.{key}")
            )
    return problems
