"""Load-plan drivers: execute a schedule, record honest latency.

Three drivers over one result type:

* :func:`run_open_loop` — threaded workers execute the plan's arrival
  schedule against a sync target (in-process service, or a
  ``ServiceClient`` per worker over http/unix/tcp). Each query's latency
  is measured from its *planned* send time, not from when a worker got
  around to sending it — so when the server saturates, the backlog shows
  up as tail latency instead of the driver quietly slowing down
  (coordinated omission). Workers are named, non-daemon, and joined.
* :func:`run_open_loop_aio` — the same open-loop semantics on the
  asyncio front-end: ``connections`` persistent pipelined connections,
  each with a bounded in-flight window, all paced by the plan's clock.
* :func:`run_closed_loop` — N client threads each walk their own
  request sequence with think-time sleeps; latency is per-response
  (classic closed-loop semantics — throughput self-limits, which is
  exactly why the open loop exists alongside it).

Every driver counts **failed** (transport/contract errors — clients run
with ``retries=0`` so nothing is silently resent) and **mismatched**
(answers that differ from the caller-supplied expected cells/positions,
bit-for-bit) — a load test that does not check answers is a heater, not
a benchmark.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.loadgen.plan import LoadPlan
from repro.util.stats import LatencyHistogram, merge_histograms

__all__ = [
    "DriverResult",
    "expected_answers",
    "run_closed_loop",
    "run_open_loop",
    "run_open_loop_aio",
]

#: One expected answer: (cell, (x, y)) — positions are exact float64
#: round-trips over every transport, so equality is bitwise.
Answer = Tuple[int, Tuple[float, float]]


@dataclass
class DriverResult:
    """Outcome of one driven load plan."""

    arrival: str
    transport: str
    offered_qps: float
    requests: int
    completed: int
    failed: int
    mismatched: int
    wall_s: float
    histogram: LatencyHistogram = field(repr=False)

    @property
    def achieved_qps(self) -> float:
        if self.wall_s <= 0:
            return float("inf")
        return self.completed / self.wall_s

    def summary(self) -> Dict[str, object]:
        """Plain-data row (the shared bench schema plus loadgen fields)."""
        return {
            "arrival": self.arrival,
            "transport": self.transport,
            "offered_qps": float(self.offered_qps),
            "achieved_qps": float(self.achieved_qps),
            "requests": int(self.requests),
            "completed": int(self.completed),
            "failed_queries": int(self.failed),
            "mismatched_queries": int(self.mismatched),
            "wall_s": float(self.wall_s),
            "latency": self.histogram.summary(),
        }


def _answer_of(result: object) -> Answer:
    """Normalize an in-process or wire answer to (cell, (x, y))."""
    position = result.position  # type: ignore[attr-defined]
    if hasattr(position, "x"):
        return (
            int(result.cell),  # type: ignore[attr-defined]
            (float(position.x), float(position.y)),
        )
    return (
        int(result.cell),  # type: ignore[attr-defined]
        (float(position[0]), float(position[1])),
    )


def expected_answers(
    service: object,
    workloads: Mapping[str, np.ndarray],
    day: float = 0.0,
) -> Dict[str, List[Answer]]:
    """Reference answers per (site, frame) from an in-process service.

    Positions survive JSON exactly (float64 round-trip), so the drivers
    compare wire answers against these bit-for-bit.
    """
    expected: Dict[str, List[Answer]] = {}
    for site, frames in workloads.items():
        expected[site] = [
            _answer_of(service.query(site, frame, day))  # type: ignore[attr-defined]
            for frame in frames
        ]
    return expected


def _frame_for(workloads: Mapping[str, np.ndarray], site: str, index: int):
    frames = workloads[site]
    return frames[index % len(frames)], index % len(frames)


def run_open_loop(
    plan: LoadPlan,
    connect: Callable[[], object],
    workloads: Mapping[str, np.ndarray],
    *,
    expected: Optional[Mapping[str, Sequence[Answer]]] = None,
    day: float = 0.0,
    workers: Optional[int] = None,
    transport: str = "custom",
) -> DriverResult:
    """Drive an open-loop plan with a pool of worker threads.

    ``connect()`` is called once per worker and must return an object
    with ``query(site, rss, day)`` (a ``ServiceClient`` factory, or a
    lambda returning the in-process service itself); a ``close()``
    method, if present, is called on the way out. Workers claim request
    indices from a shared cursor, sleep until each request's planned
    send time, fire, and record ``completion − planned_send`` — the
    latency an arrival-time observer would see, queue delay included.
    """
    if plan.arrival != "open":
        raise ValueError(f"run_open_loop needs an open plan, got {plan.arrival!r}")
    pool_size = int(workers) if workers is not None else plan.clients
    if pool_size < 1:
        raise ValueError(f"workers must be >= 1, got {pool_size}")
    total = plan.requests
    cursor_lock = threading.Lock()
    cursor = [0]
    histograms = [LatencyHistogram() for _ in range(pool_size)]
    failed = [0] * pool_size
    mismatched = [0] * pool_size
    completed = [0] * pool_size
    errors: List[BaseException] = []
    start_barrier = threading.Barrier(pool_size + 1)
    offsets = plan.send_offset_s
    site_index = plan.site_index
    start_time = [0.0]

    def worker(slot: int) -> None:
        # A worker that cannot even connect aborts the barrier so the
        # main thread (and its peers) never deadlock waiting for it.
        try:
            client = connect()
        except BaseException as error:  # noqa: BLE001 - surfaced to caller
            errors.append(error)
            start_barrier.abort()
            return
        try:
            start_barrier.wait()
            base = start_time[0]
            while True:
                with cursor_lock:
                    index = cursor[0]
                    if index >= total:
                        return
                    cursor[0] = index + 1
                site = plan.sites[int(site_index[index])]
                frame, frame_idx = _frame_for(workloads, site, index)
                scheduled = base + float(offsets[index])
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    result = client.query(site, frame, day)  # type: ignore[attr-defined]
                except Exception:
                    failed[slot] += 1
                    continue
                histograms[slot].record(time.perf_counter() - scheduled)
                completed[slot] += 1
                if expected is not None:
                    if _answer_of(result) != tuple(expected[site][frame_idx]):
                        mismatched[slot] += 1
        except threading.BrokenBarrierError:
            return
        except BaseException as error:  # noqa: BLE001 - surfaced to caller
            errors.append(error)
        finally:
            close = getattr(client, "close", None)
            if callable(close):
                close()

    threads = []
    for slot in range(pool_size):
        thread = threading.Thread(
            target=worker, args=(slot,), name=f"loadgen-worker-{slot}"
        )
        threads.append(thread)
        thread.start()
    start_time[0] = time.perf_counter()
    try:
        start_barrier.wait()
    except threading.BrokenBarrierError:
        pass
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start_time[0]
    if errors:
        raise errors[0]
    histogram = merge_histograms(histograms)
    assert histogram is not None
    return DriverResult(
        arrival="open",
        transport=transport,
        offered_qps=plan.rate_qps,
        requests=total,
        completed=sum(completed),
        failed=sum(failed),
        mismatched=sum(mismatched),
        wall_s=wall_s,
        histogram=histogram,
    )


def run_open_loop_aio(
    plan: LoadPlan,
    address: str,
    workloads: Mapping[str, np.ndarray],
    *,
    expected: Optional[Mapping[str, Sequence[Answer]]] = None,
    day: float = 0.0,
    connections: int = 1,
    depth: int = 16,
    autobatch: int = 32,
) -> DriverResult:
    """Open-loop driver for the asyncio front-end (``tcp://`` NDJSON).

    ``connections`` persistent pipelined clients each keep up to
    ``depth`` requests in flight; arrivals still follow the plan's
    clock, and latency is still completion minus planned send time. The
    in-flight window bounds memory, not the schedule — when the server
    falls behind, arrivals queue and the backlog lands in the tail,
    exactly as in the threaded driver.
    """
    from repro.serve.aio import AsyncServiceClient

    if plan.arrival != "open":
        raise ValueError(f"run_open_loop_aio needs an open plan, got {plan.arrival!r}")
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    total = plan.requests
    rows: Dict[str, List[List[float]]] = {
        site: [row.tolist() for row in np.asarray(frames, dtype=float)]
        for site, frames in workloads.items()
    }
    histogram = LatencyHistogram()
    counters = {"completed": 0, "failed": 0, "mismatched": 0}

    async def drive() -> float:
        cursor = [0]  # single-threaded loop: plain int is race-free

        async def one_connection() -> None:
            async with AsyncServiceClient(address, autobatch=autobatch) as client:
                window = asyncio.Semaphore(depth)
                pending: List[asyncio.Task] = []

                async def one_request(index: int, scheduled: float) -> None:
                    site = plan.sites[int(plan.site_index[index])]
                    site_rows = rows[site]
                    frame_idx = index % len(site_rows)
                    async with window:
                        now = asyncio.get_running_loop().time()
                        if scheduled > now:
                            await asyncio.sleep(scheduled - now)
                        try:
                            result = await client.query(
                                site, site_rows[frame_idx], day
                            )
                        except Exception:
                            counters["failed"] += 1
                            return
                        done = asyncio.get_running_loop().time()
                        histogram.record(done - scheduled)
                        counters["completed"] += 1
                        if expected is not None:
                            answer = (
                                int(result.cell),
                                (
                                    float(result.position[0]),
                                    float(result.position[1]),
                                ),
                            )
                            if answer != tuple(expected[site][frame_idx]):
                                counters["mismatched"] += 1

                base = asyncio.get_running_loop().time()
                while True:
                    index = cursor[0]
                    if index >= total:
                        break
                    cursor[0] = index + 1
                    scheduled = base + float(plan.send_offset_s[index])
                    pending.append(
                        asyncio.ensure_future(one_request(index, scheduled))
                    )
                    # Yield so peer connections interleave claims.
                    await asyncio.sleep(0)
                if pending:
                    await asyncio.gather(*pending)

        start = asyncio.get_running_loop().time()
        await asyncio.gather(*(one_connection() for _ in range(connections)))
        return asyncio.get_running_loop().time() - start

    wall_s = asyncio.run(drive())
    return DriverResult(
        arrival="open",
        transport="aio",
        offered_qps=plan.rate_qps,
        requests=total,
        completed=counters["completed"],
        failed=counters["failed"],
        mismatched=counters["mismatched"],
        wall_s=wall_s,
        histogram=histogram,
    )


def run_closed_loop(
    plan: LoadPlan,
    connect: Callable[[], object],
    workloads: Mapping[str, np.ndarray],
    *,
    expected: Optional[Mapping[str, Sequence[Answer]]] = None,
    day: float = 0.0,
    transport: str = "custom",
) -> DriverResult:
    """Drive a closed-loop plan: one thread per client, think-time pacing.

    Latency here is pure response time (request out → answer in); the
    achieved throughput self-limits to
    ``clients / (response_time + think_time)`` — report it alongside an
    open-loop run, never instead of one.
    """
    if plan.arrival != "closed":
        raise ValueError(
            f"run_closed_loop needs a closed plan, got {plan.arrival!r}"
        )
    clients = plan.clients
    per_client = plan.requests // clients
    histograms = [LatencyHistogram() for _ in range(clients)]
    failed = [0] * clients
    mismatched = [0] * clients
    completed = [0] * clients
    errors: List[BaseException] = []
    start_barrier = threading.Barrier(clients + 1)

    def worker(slot: int) -> None:
        try:
            client = connect()
        except BaseException as error:  # noqa: BLE001 - surfaced to caller
            errors.append(error)
            start_barrier.abort()
            return
        try:
            start_barrier.wait()
            base = slot * per_client
            for step in range(per_client):
                index = base + step
                site = plan.sites[int(plan.site_index[index])]
                frame, frame_idx = _frame_for(workloads, site, index)
                begin = time.perf_counter()
                try:
                    result = client.query(site, frame, day)  # type: ignore[attr-defined]
                except Exception:
                    failed[slot] += 1
                    continue
                histograms[slot].record(time.perf_counter() - begin)
                completed[slot] += 1
                if expected is not None:
                    if _answer_of(result) != tuple(expected[site][frame_idx]):
                        mismatched[slot] += 1
                think = float(plan.think_delay_s[index])
                if think > 0:
                    time.sleep(think)
        except threading.BrokenBarrierError:
            return
        except BaseException as error:  # noqa: BLE001 - surfaced to caller
            errors.append(error)
        finally:
            close = getattr(client, "close", None)
            if callable(close):
                close()

    threads = []
    for slot in range(clients):
        thread = threading.Thread(
            target=worker, args=(slot,), name=f"loadgen-worker-{slot}"
        )
        threads.append(thread)
        thread.start()
    start = time.perf_counter()
    try:
        start_barrier.wait()
    except threading.BrokenBarrierError:
        pass
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    if errors:
        raise errors[0]
    histogram = merge_histograms(histograms)
    assert histogram is not None
    return DriverResult(
        arrival="closed",
        transport=transport,
        offered_qps=0.0,
        requests=per_client * clients,
        completed=sum(completed),
        failed=sum(failed),
        mismatched=sum(mismatched),
        wall_s=wall_s,
        histogram=histogram,
    )
