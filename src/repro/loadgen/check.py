"""The ``loadgen-smoke`` gate: ``python -m repro.loadgen.check``.

A seconds-scale end-to-end exercise of the load-generation subsystem,
run by CI (``make loadgen-smoke``) on every change:

* a short open-loop SLO saturation search over the http front-end (the
  PR-5 wire path), with every answer checked bit-for-bit against the
  in-process service;
* a closed-loop comparison run;
* a 200-site registration soak (one shared ``square-3m`` spec — the
  fingerprint dedupe must build exactly ONE pipeline);
* the plan-determinism gate (same seed → bit-identical schedule) and
  the report-schema validation from :mod:`repro.loadgen.schema`.

The gates are the ``loadgen`` bench section's own smoke gates — this
check IS that section at tiny scale, through the registry API, so the
CI gate and the committed benchmark can never drift apart. The full
record always lands in ``--out`` (default ``LOADGEN_SMOKE.json``) so a
failing CI run uploads the evidence.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.eval.bench import get_section
from repro.eval.bench.loadgen import bench_loadgen

__all__ = ["main", "run_loadgen_smoke"]


def run_loadgen_smoke(
    *,
    seed: int = 2016,
    soak_sites: int = 200,
    requests: int = 60,
    start_qps: float = 50.0,
    max_qps: float = 2000.0,
) -> dict:
    """The smoke-scale loadgen record (the bench section, tiny knobs)."""
    return bench_loadgen(
        sites=("square-3m",),
        seed=seed,
        transports=("http",),
        shard_counts=(1,),
        slo_ms=50.0,
        requests=requests,
        start_qps=start_qps,
        max_qps=max_qps,
        frames=8,
        samples_per_cell=2,
        soak_sites=soak_sites,
        perturb=False,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--soak-sites", type=int, default=200,
        help="registered-site count for the soak block",
    )
    parser.add_argument(
        "--requests", type=int, default=60,
        help="requests per saturation probe",
    )
    parser.add_argument(
        "--out", default="LOADGEN_SMOKE.json",
        help="where the full JSON record is written (always, pass or fail)",
    )
    args = parser.parse_args(argv)

    record = run_loadgen_smoke(
        seed=args.seed, soak_sites=args.soak_sites, requests=args.requests
    )
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n")

    failures: List[str] = get_section("loadgen").smoke_gates(record)
    for key, result in record["saturation"].items():
        print(
            f"loadgen-smoke: {key} max sustained "
            f"{result['max_sustained_qps']:,.0f} q/s "
            f"({len(result['probes'])} probe(s))"
        )
    soak = record["soak"]
    if soak:
        print(
            f"loadgen-smoke: soak {soak['sites']} sites, "
            f"{soak['pipelines_built']} pipeline(s), "
            f"{soak['query_phase']['completed']} queries, "
            f"{soak['query_phase']['failed_queries']} failed"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(f"loadgen-smoke: report in {args.out}", file=sys.stderr)
        return 1
    print(f"loadgen-smoke: PASS (report in {args.out})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
