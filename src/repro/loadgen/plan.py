"""Seeded load plans: *what* to send and *when*, fixed before any I/O.

A :class:`LoadPlan` is the full request schedule of one load-generation
run — per-request send offsets, Zipf-skewed site choices, and (for the
closed loop) per-client think delays — materialized up front as numpy
arrays from ``util/rng`` counter streams. Separating the plan from the
driver is what makes the benchmark honest and reproducible at once:

* **Reproducible** — the plan is a pure function of
  ``(seed, knobs)``; the same seed yields a bit-identical schedule
  (``fingerprint()`` hashes the raw array bytes, and the smoke gate
  asserts two builds agree) no matter how the run itself is scheduled
  by the OS.
* **Honest** — an open-loop driver measures each query from its
  *planned* send time, so a saturated server shows up as queue delay in
  the recorded tail instead of silently throttling the generator (the
  coordinated-omission trap of closed-loop-only benchmarks).

No wall clocks here: plans are timeless data. The driver owns the clock.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.util.rng import counter_stream, task_key, zipf_sample

__all__ = ["LoadPlan", "closed_loop_plan", "open_loop_plan"]

_ARRIVALS = ("open", "closed")
_PROCESSES = ("poisson", "uniform")


@dataclass(frozen=True)
class LoadPlan:
    """One run's complete request schedule.

    Attributes:
        arrival: ``"open"`` (rate-driven) or ``"closed"`` (client-driven).
        process: Arrival process — ``"poisson"`` or ``"uniform"`` for the
            open loop; the closed loop records ``"closed"``.
        seed: The root seed every stream was derived from.
        sites: Site names the plan draws over (rank 0 = most popular).
        zipf_s: Popularity skew exponent (0 = uniform).
        rate_qps: Offered rate (open loop; 0.0 for closed plans).
        clients: Concurrent client count (closed loop; worker hint for
            open plans).
        send_offset_s: Per-request planned send time, seconds from run
            start (open loop; zeros for closed plans, where the schedule
            is think-time driven).
        site_index: Per-request index into ``sites``.
        client_index: Per-request issuing client (round-robin for open
            plans — a worker *hint*, not a constraint).
        think_delay_s: Per-request post-response think delay (closed
            loop; zeros for open plans).
    """

    arrival: str
    process: str
    seed: int
    sites: Tuple[str, ...]
    zipf_s: float
    rate_qps: float
    clients: int
    send_offset_s: np.ndarray = field(repr=False)
    site_index: np.ndarray = field(repr=False)
    client_index: np.ndarray = field(repr=False)
    think_delay_s: np.ndarray = field(repr=False)

    @property
    def requests(self) -> int:
        return int(self.site_index.size)

    @property
    def duration_s(self) -> float:
        """Planned span of the open-loop schedule (0 for closed plans)."""
        if self.send_offset_s.size == 0:
            return 0.0
        return float(self.send_offset_s[-1])

    def site_name(self, request: int) -> str:
        return self.sites[int(self.site_index[request])]

    def fingerprint(self) -> str:
        """SHA-256 over the raw schedule bytes and identifying metadata.

        Two plans with the same fingerprint are bit-identical: same
        arrival times, same site sequence, same client assignment, same
        think delays. The smoke gate builds the plan twice and compares.
        """
        digest = hashlib.sha256()
        digest.update(
            "|".join(
                [
                    self.arrival,
                    self.process,
                    str(self.seed),
                    ",".join(self.sites),
                    repr(self.zipf_s),
                    repr(self.rate_qps),
                    str(self.clients),
                ]
            ).encode()
        )
        for array in (
            self.send_offset_s,
            self.site_index,
            self.client_index,
            self.think_delay_s,
        ):
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()

    def describe(self) -> Dict[str, object]:
        """Plain-data summary for reports."""
        return {
            "arrival": self.arrival,
            "process": self.process,
            "seed": int(self.seed),
            "sites": len(self.sites),
            "zipf_s": float(self.zipf_s),
            "rate_qps": float(self.rate_qps),
            "clients": int(self.clients),
            "requests": self.requests,
            "duration_s": self.duration_s,
            "fingerprint": self.fingerprint(),
        }


def open_loop_plan(
    *,
    sites: Sequence[str],
    seed: int,
    rate_qps: float,
    requests: int,
    process: str = "poisson",
    zipf_s: float = 0.0,
    clients: int = 4,
) -> LoadPlan:
    """Schedule ``requests`` arrivals at offered rate ``rate_qps``.

    ``"poisson"`` draws exponential inter-arrival gaps (memoryless
    arrivals, the standard open-loop traffic model); ``"uniform"`` spaces
    requests exactly ``1/rate`` apart (a pure pacing probe). Both use
    counter streams keyed by ``task_key(seed, "loadgen", ...)`` so the
    schedule is independent of anything else drawing randomness.
    """
    if not sites:
        raise ValueError("need at least one site")
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be > 0, got {rate_qps}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if process not in _PROCESSES:
        raise ValueError(f"process must be one of {_PROCESSES}, got {process!r}")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if process == "poisson":
        gaps = counter_stream(
            task_key(seed, "loadgen", "arrivals", process)
        ).exponential(1.0 / rate_qps, size=requests)
        offsets = np.cumsum(gaps)
    else:
        offsets = (np.arange(requests, dtype=np.float64) + 1.0) / rate_qps
    site_index = zipf_sample(
        counter_stream(task_key(seed, "loadgen", "sites")),
        len(sites),
        zipf_s,
        requests,
    )
    return LoadPlan(
        arrival="open",
        process=process,
        seed=int(seed),
        sites=tuple(str(site) for site in sites),
        zipf_s=float(zipf_s),
        rate_qps=float(rate_qps),
        clients=int(clients),
        send_offset_s=offsets.astype(np.float64),
        site_index=site_index,
        client_index=np.arange(requests, dtype=np.int64) % int(clients),
        think_delay_s=np.zeros(requests, dtype=np.float64),
    )


def closed_loop_plan(
    *,
    sites: Sequence[str],
    seed: int,
    clients: int,
    requests_per_client: int,
    think_s: float = 0.0,
    zipf_s: float = 0.0,
) -> LoadPlan:
    """Schedule ``clients`` concurrent clients, each issuing
    ``requests_per_client`` queries back to back.

    Each client's site sequence and think delays come from its own
    counter stream (keyed by the client index), so adding clients never
    perturbs existing ones. ``think_s > 0`` draws exponential think
    delays with that mean after each response — the classic closed-loop
    user model; 0 means tight-loop clients.
    """
    if not sites:
        raise ValueError("need at least one site")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if requests_per_client < 1:
        raise ValueError(
            f"requests_per_client must be >= 1, got {requests_per_client}"
        )
    if think_s < 0:
        raise ValueError(f"think_s must be >= 0, got {think_s}")
    site_chunks = []
    think_chunks = []
    client_chunks = []
    for client in range(clients):
        site_chunks.append(
            zipf_sample(
                counter_stream(task_key(seed, "loadgen", "client-sites", client)),
                len(sites),
                zipf_s,
                requests_per_client,
            )
        )
        if think_s > 0:
            think_chunks.append(
                counter_stream(
                    task_key(seed, "loadgen", "client-think", client)
                ).exponential(think_s, size=requests_per_client)
            )
        else:
            think_chunks.append(np.zeros(requests_per_client, dtype=np.float64))
        client_chunks.append(
            np.full(requests_per_client, client, dtype=np.int64)
        )
    total = clients * requests_per_client
    return LoadPlan(
        arrival="closed",
        process="closed",
        seed=int(seed),
        sites=tuple(str(site) for site in sites),
        zipf_s=float(zipf_s),
        rate_qps=0.0,
        clients=int(clients),
        send_offset_s=np.zeros(total, dtype=np.float64),
        site_index=np.concatenate(site_chunks),
        client_index=np.concatenate(client_chunks),
        think_delay_s=np.concatenate(think_chunks),
    )
