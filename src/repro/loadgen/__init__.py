"""Deterministic load generation and SLO benchmarking.

The subsystem behind ``tafloc-repro loadgen`` and the ``loadgen`` bench
section: seeded open-/closed-loop load plans (:mod:`repro.loadgen.plan`),
drivers that execute a plan against the in-process service or any wire
front-end while recording honest per-query latency
(:mod:`repro.loadgen.driver`), the SLO saturation search
(:mod:`repro.loadgen.slo`), and the many-site registration soak
(:mod:`repro.loadgen.soak`). ``python -m repro.loadgen.check`` is the CI
smoke gate.
"""

from repro.loadgen.driver import (
    DriverResult,
    run_closed_loop,
    run_open_loop,
    run_open_loop_aio,
)
from repro.loadgen.plan import (
    LoadPlan,
    closed_loop_plan,
    open_loop_plan,
)
from repro.loadgen.slo import SloSearchResult, find_max_sustained_qps
from repro.loadgen.soak import run_site_soak

__all__ = [
    "DriverResult",
    "LoadPlan",
    "SloSearchResult",
    "closed_loop_plan",
    "find_max_sustained_qps",
    "open_loop_plan",
    "run_closed_loop",
    "run_open_loop",
    "run_open_loop_aio",
    "run_site_soak",
]
