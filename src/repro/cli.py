"""Command-line interface: reproduce experiments without writing code.

Usage (after ``pip install -e .``)::

    tafloc-repro quickstart            # commission/update/localize demo
    tafloc-repro drift                 # the in-text drift measurement
    tafloc-repro fig3 --days 3 45 90   # reconstruction error vs gap
    tafloc-repro fig4                  # update cost vs area size
    tafloc-repro fig5 --day 90         # localization comparison
    tafloc-repro floorplan             # render the deployment geometry
    tafloc-repro scenarios             # list the scenario registry
    tafloc-repro bench                 # batch-vs-loop performance benchmark
    tafloc-repro serve ...             # multi-site serving demo + throughput
    tafloc-repro query ...             # route one query batch through serving
    tafloc-repro loadgen ...           # generated load + SLO saturation search

``loadgen`` drives a front-end with deterministic generated load — seeded
open-loop (Poisson/uniform, coordinated-omission-free) or closed-loop
arrivals, Zipf site-popularity skew over ``--sites N`` registered sites,
per-query latency percentiles with bit-for-bit answer checking — and,
with ``--slo-ms``, searches for the max sustained q/s whose tail
percentile stays under the SLO::

    tafloc-repro loadgen --transport http --rate 500 --requests 400
    tafloc-repro loadgen --transport aio --slo-ms 50 --sites 16 --zipf-s 1.1
    tafloc-repro loadgen --arrival closed --clients 8 --think-s 0.001

Serving (the multi-site layer in :mod:`repro.serve`): ``serve`` stands up a
:class:`~repro.serve.service.LocalizationService` over several sites in one
process, optionally refreshes their fingerprints, and reports warm
queries/sec per site; ``query`` routes a live query batch for the selected
scenario through the same layer and prints per-frame estimates against
ground truth. Examples::

    tafloc-repro serve --sites paper warehouse corridor --frames 400
    tafloc-repro serve --sites paper --update-days 30 60 --day 60
    tafloc-repro query --day 45 --frames 5
    tafloc-repro --scenario warehouse query --cells 3 17 42 --day 30

``serve --listen`` turns the demo into a real network service: an HTTP
(and/or unix-socket) front-end speaking the JSON protocol of
:mod:`repro.serve.protocol`, optionally sharded across worker processes
(``--shards``) and kept fresh by the staleness-driven update scheduler
(``--refresh-policy`` + ``--days-per-second`` simulation clock); ``query
--connect`` routes the same query batch through a running server instead
of an in-process service (answers are bit-identical either way)::

    tafloc-repro serve --sites paper warehouse --listen 127.0.0.1:8970
    tafloc-repro serve --sites paper warehouse corridor --shards 2 \
        --listen 127.0.0.1:8970 --refresh-policy interval \
        --refresh-interval-days 30 --days-per-second 10
    tafloc-repro query --connect http://127.0.0.1:8970 --frames 5

or ``python -m repro.cli <command>``. Everything is seeded (``--seed``),
so runs are reproducible, and every experiment runs on any environment:
``--scenario NAME`` selects a registered scenario (``paper``, ``warehouse``,
``corridor``, ``atrium``, ``dense-office``, ``square-<edge>m``, …; see
``tafloc-repro scenarios``), ``--scenario-file spec.json`` loads a
user-supplied :class:`~repro.sim.specs.ScenarioSpec` JSON file, and
``--jobs N`` parallelizes the experiment engine (bit-identical results for
any job count). Example::

    tafloc-repro --scenario warehouse fig3 --days 5 45
    tafloc-repro --scenario-file my_site.json --jobs 4 fig5
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.core.pipeline import TafLoc
from repro.eval.benchmark import DEFAULT_SIZES, format_bench_report, run_perf_bench
from repro.eval.costmodel import CostModel, sweep_update_cost
from repro.eval.engine import ExperimentEngine, cached_scenario
from repro.eval.experiments import (
    run_fig3_reconstruction_error,
    run_fig5_localization,
    run_intext_drift,
)
from repro.eval.reporting import format_cdf_table, format_summary, format_table
from repro.loadgen import (
    closed_loop_plan,
    find_max_sustained_qps,
    open_loop_plan,
    run_closed_loop,
    run_open_loop,
    run_open_loop_aio,
)
from repro.loadgen.driver import expected_answers
from repro.serve import (
    AioFrontend,
    HttpFrontend,
    LocalizationService,
    SchedulerConfig,
    ServiceClient,
    ShardedService,
    SimClock,
    UnixFrontend,
    UpdateScheduler,
)
from repro.sim.collector import RssCollector
from repro.sim.specs import (
    ScenarioSpec,
    build_deployment,
    build_scenario,
    get_scenario_spec,
    list_scenarios,
)
from repro.util.rng import task_key


def _spec(args: argparse.Namespace) -> ScenarioSpec:
    """Resolve the global --scenario / --scenario-file selection."""
    if args.scenario_file:
        return ScenarioSpec.from_file(args.scenario_file)
    return get_scenario_spec(args.scenario)


def _sub_seed(seed: int, *labels) -> int:
    """Derive a named collector sub-seed from the master ``--seed``.

    Routed through :func:`repro.util.rng.task_key` so streams are keyed by
    (seed, label) rather than by ``seed + offset`` — with the offset scheme,
    sweeping adjacent ``--seed`` values made one run's trace collector
    collide with the next run's system collector.
    """
    return task_key(seed, "cli", *labels)


def _cmd_quickstart(args: argparse.Namespace) -> int:
    scenario = build_scenario(_spec(args), seed=args.seed)
    system = TafLoc(
        RssCollector(scenario, seed=_sub_seed(args.seed, "quickstart-system"))
    )
    system.commission(day=0.0)
    report = system.update(day=45.0)
    test_cell = scenario.deployment.cell_count // 2
    trace = RssCollector(
        scenario, seed=_sub_seed(args.seed, "quickstart-trace")
    ).live_trace(45.0, [test_cell])
    result = system.localize(trace.rss[0], day=45.0)
    true_x, true_y = trace.true_positions[0]
    print(
        format_summary(
            "TafLoc quickstart (day-45 update + localization)",
            {
                "update cost [h]": report.seconds_spent / 3600.0,
                "full survey cost [h]": report.full_survey_seconds / 3600.0,
                "savings factor": report.savings_factor,
                "estimated position [m]": f"({result.position.x:.2f}, {result.position.y:.2f})",
                "true position [m]": f"({true_x:.2f}, {true_y:.2f})",
                "error [m]": float(
                    np.hypot(result.position.x - true_x, result.position.y - true_y)
                ),
            },
        )
    )
    return 0


def _engine(args: argparse.Namespace) -> ExperimentEngine:
    return ExperimentEngine(jobs=args.jobs)


def _cmd_drift(args: argparse.Namespace) -> int:
    results = run_intext_drift(
        days=tuple(args.days), seeds=tuple(range(args.rooms)),
        scenario_spec=_spec(args), engine=_engine(args),
    )
    anchors = {5.0: 2.5, 45.0: 6.0}
    rows = [
        [int(day), results[day], anchors.get(day, "-")]
        for day in sorted(results)
    ]
    print(
        "Mean |empty-room RSS change| vs time gap\n"
        + format_table(["days", "measured [dB]", "paper [dB]"], rows, precision=2)
    )
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    results = run_fig3_reconstruction_error(
        days=tuple(float(d) for d in args.days), seed=args.seed,
        scenario_spec=_spec(args), engine=_engine(args),
    )
    paper = {3.0: 2.7, 15.0: 3.3, 45.0: 3.6, 90.0: 4.1}
    rows = [
        [
            int(r.day),
            r.mean_error,
            paper.get(r.day, "-"),
            r.stale_mean_error,
        ]
        for r in results
    ]
    print(
        "[Fig. 3] Reconstruction error vs time gap\n"
        + format_table(
            ["days", "mean err [dB]", "paper [dB]", "stale [dB]"],
            rows,
            precision=2,
        )
    )
    if args.cdf:
        grid = np.arange(0.0, 15.1, 1.5)
        print(
            "\nCDF:\n"
            + format_cdf_table(
                {f"{int(r.day)} d": r.errors for r in results},
                grid,
                value_label="err [dB]",
            )
        )
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    # Fig. 4 is the labor cost model (geometry only); the scenario supplies
    # its grid resolution so the sweep matches the selected environment.
    model = CostModel(cell_size_m=_spec(args).geometry.cell_size_m)
    rows_data = sweep_update_cost(
        tuple(float(e) for e in args.edges), model=model
    )
    rows = [
        [
            int(row.edge_length_m),
            row.cell_count,
            row.reference_count,
            row.existing_hours,
            row.tafloc_hours,
            row.savings_factor,
        ]
        for row in rows_data
    ]
    print(
        "[Fig. 4] Update time cost vs area edge length\n"
        + format_table(
            ["edge [m]", "cells", "refs", "existing [h]", "TafLoc [h]", "savings x"],
            rows,
            precision=2,
        )
    )
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    result = run_fig5_localization(
        day=args.day, seed=args.seed, scenario_spec=_spec(args),
        engine=_engine(args),
    )
    rows = [
        [name, float(np.median(errs)), float(np.percentile(errs, 80))]
        for name, errs in result.errors.items()
    ]
    print(
        f"[Fig. 5] Localization error at day {args.day:.0f}\n"
        + format_table(["system", "median [m]", "80th [m]"], rows, precision=2)
    )
    if args.cdf:
        grid = np.arange(0.0, 6.1, 0.5)
        print(
            "\nCDF:\n"
            + format_cdf_table(result.errors, grid, value_label="err [m]")
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    report = run_perf_bench(
        sizes=tuple(args.sizes),
        frames=args.frames,
        repeat=args.repeat,
        seed=args.seed,
        out_path=args.out,
        engine_jobs=args.jobs,
        # Resolve through _spec so --scenario-file reaches the engine
        # section too (the per-size rows are named by --sizes).
        engine_scenario=_spec(args),
        serving_sites=tuple(args.sizes),
    )
    print(format_bench_report(report))
    if args.out:
        print(f"\nwrote {args.out}")
    return 0


def _serve_specs(args: argparse.Namespace) -> Dict[str, ScenarioSpec]:
    """Site name -> spec for the ``serve`` command.

    ``--sites`` names resolve through the registry; ``--scenario-file``
    additionally serves the user-supplied environment under its spec name.
    Without ``--sites``, the global ``--scenario`` selection is served (so
    ``--scenario warehouse serve`` does what it says).
    """
    specs: Dict[str, ScenarioSpec] = {}
    if args.scenario_file:
        spec = ScenarioSpec.from_file(args.scenario_file)
        specs[spec.name] = spec
    for name in args.sites or ([] if specs else [args.scenario]):
        specs[name] = get_scenario_spec(name)
    return specs


def _serve_listen(args: argparse.Namespace, specs: Dict[str, ScenarioSpec]) -> int:
    """The ``serve --listen`` path: wire front-end(s) over the site fleet."""
    replicas = getattr(args, "replicas", 1)
    snapshot_dir = getattr(args, "snapshot_dir", None)
    snapshot_keep = getattr(args, "snapshot_keep", None)
    read_mode = getattr(args, "read_mode", "failover")
    degraded = bool(getattr(args, "degraded_mode", False))
    scrub_interval = getattr(args, "scrub_interval_seconds", 0.0)
    if args.shards:
        shard_kwargs = {}
        if snapshot_keep is not None:
            shard_kwargs["snapshot_keep"] = snapshot_keep
        backend = ShardedService(
            specs,
            shards=args.shards,
            replicas=replicas,
            snapshot_dir=snapshot_dir,
            read_mode=read_mode,
            degraded_mode=degraded,
            seed=args.seed,
            **shard_kwargs,
        )
    else:
        if replicas > 1:
            raise SystemExit("--replicas needs --shards >= replicas")
        for flag, value in (
            ("--read-mode quorum", read_mode != "failover"),
            ("--degraded-mode", degraded),
            ("--scrub-interval-seconds", scrub_interval > 0),
        ):
            if value:
                raise SystemExit(f"{flag} needs --shards >= 1")
        kwargs = {}
        if snapshot_dir is not None:
            kwargs["snapshot_dir"] = snapshot_dir
            kwargs["share_pipelines"] = False
            if snapshot_keep is not None:
                kwargs["snapshot_keep"] = snapshot_keep
        backend = LocalizationService.from_specs(
            specs, seed=args.seed, **kwargs
        )
    start = time.perf_counter()
    backend.warm()
    print(
        f"warmed {len(specs)} site(s) in {time.perf_counter() - start:.2f}s"
        + (
            f" across {args.shards} shard worker(s)"
            + (f", {replicas} replica(s) per site" if replicas > 1 else "")
            if args.shards
            else ""
        )
        + (f", snapshots in {snapshot_dir}" if snapshot_dir else "")
    )
    if args.shards and scrub_interval > 0:
        backend.start_scrub(interval_seconds=scrub_interval)
        print(
            f"anti-entropy scrub every {scrub_interval:g}s, "
            f"read mode {read_mode}"
            + (", degraded-mode serving on" if degraded else "")
        )
    for day in args.update_days:
        for site in specs:
            backend.update(site, float(day))
    frontends = []
    if getattr(args, "transport", "thread") == "aio":
        # One event loop serves both endpoints: --listen's host:port as
        # tcp:// (ephemeral port when only --unix was given) plus the
        # unix socket. Pipelined NDJSON; see repro.serve.aio.
        host, port = "127.0.0.1", 0
        if args.listen:
            host_text, _, port_text = args.listen.rpartition(":")
            host, port = host_text or "127.0.0.1", int(port_text)
        frontends.append(
            AioFrontend(backend, host, port, unix_path=args.unix_socket)
        )
    else:
        if args.listen:
            host, _, port = args.listen.rpartition(":")
            frontends.append(
                HttpFrontend(backend, host or "127.0.0.1", int(port))
            )
        if args.unix_socket:
            frontends.append(UnixFrontend(backend, args.unix_socket))
    scheduler = None
    if args.refresh_policy != "off":
        scheduler = UpdateScheduler(
            backend,
            SchedulerConfig(
                policy=args.refresh_policy,
                interval_days=args.refresh_interval_days,
                budget=args.refresh_budget,
                drift_threshold_m=args.drift_threshold_m,
                snapshot_cadence_days=args.snapshot_cadence_days,
            ),
        ).start(
            SimClock(args.day, args.days_per_second),
            period_seconds=args.refresh_period_seconds,
        )
        threshold = (
            f"{args.drift_threshold_m:g} m drift"
            if args.refresh_policy == "drift"
            else f"{args.refresh_interval_days:g} d"
        )
        print(
            f"refresh scheduler: {args.refresh_policy}, threshold "
            f"{threshold}, budget "
            f"{args.refresh_budget or 'unlimited'}, clock "
            f"{args.days_per_second:g} d/s from day {args.day:g}"
        )
    try:
        for frontend in frontends:
            frontend.start()
            # Flushed eagerly: supervisors (and the CLI test) read the
            # address from a pipe while the server is still running.
            print(f"listening at {frontend.address}", flush=True)
            if getattr(frontend, "unix_address", None):
                print(f"listening at {frontend.unix_address}", flush=True)
        print("serving (Ctrl-C to stop)", flush=True)
        if args.max_seconds is not None:
            time.sleep(args.max_seconds)
        else:  # pragma: no cover - interactive path
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        if scheduler is not None:
            scheduler.stop()
        for frontend in frontends:
            frontend.close()
        if args.shards:
            backend.close()
    if scheduler is not None:
        print(
            f"scheduler ran {scheduler.stats.ticks} tick(s): "
            f"{scheduler.stats.updates} update(s), "
            f"{scheduler.stats.commissions} commission(s)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    specs = _serve_specs(args)
    if args.listen or args.unix_socket:
        return _serve_listen(args, specs)
    kwargs = {}
    if getattr(args, "snapshot_dir", None) is not None:
        kwargs["snapshot_dir"] = args.snapshot_dir
        kwargs["share_pipelines"] = False
        if getattr(args, "snapshot_keep", None) is not None:
            kwargs["snapshot_keep"] = args.snapshot_keep
    service = LocalizationService.from_specs(specs, seed=args.seed, **kwargs)
    rows = []
    for site in service.sites():
        start = time.perf_counter()
        service.warm([site])
        commission_s = time.perf_counter() - start
        for day in args.update_days:
            service.update(site, float(day))
        system = service.pipeline(site)
        scenario = system.collector.scenario
        workload = RssCollector(
            scenario, seed=_sub_seed(args.seed, "serve-workload", site)
        )
        cells = np.random.default_rng(
            _sub_seed(args.seed, "serve-cells", site)
        ).integers(0, scenario.deployment.cell_count, size=args.frames)
        trace = workload.live_trace(args.day, cells)
        service.query_batch(site, trace.rss, args.day)  # matcher warm-up
        start = time.perf_counter()
        batch = service.query_batch(site, trace.rss, args.day)
        batch_s = time.perf_counter() - start
        singles = min(args.frames, 100)
        start = time.perf_counter()
        for frame in trace.rss[:singles]:
            service.query(site, frame, args.day)
        single_s = time.perf_counter() - start
        deltas = batch.positions - trace.true_positions
        rows.append(
            [
                site,
                specs[site].name,
                system.deployment.link_count,
                system.deployment.cell_count,
                system.database.epoch_count,
                commission_s,
                args.frames / batch_s if batch_s > 0 else float("inf"),
                singles / single_s if single_s > 0 else float("inf"),
                float(np.median(np.hypot(deltas[:, 0], deltas[:, 1]))),
            ]
        )
    print(
        f"Multi-site serving ({len(rows)} site(s), one process, "
        f"{args.frames} warm frames/site at day {args.day:g})\n"
        + format_table(
            [
                "site", "scenario", "links", "cells", "epochs",
                "commission [s]", "batch q/s", "single q/s", "median err [m]",
            ],
            rows,
            precision=2,
        )
    )
    built = service.manager.stats.pipelines_built
    print(
        f"\npipelines built: {built} (distinct environments; "
        f"{service.stats.frames} frames served)"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    spec = _spec(args)
    scenario = cached_scenario(spec, build_scenario)
    if args.cells:
        cells = [int(cell) for cell in args.cells]
    else:
        cells = np.random.default_rng(
            _sub_seed(args.seed, "query-cells")
        ).integers(0, scenario.deployment.cell_count, size=args.frames).tolist()
    trace = RssCollector(
        scenario, seed=_sub_seed(args.seed, "query-trace")
    ).live_trace(args.day, cells)
    if args.connect:
        # Route through a running wire front-end (`serve --listen`); the
        # server must be serving a site named after the selected scenario.
        with ServiceClient(args.connect) as client:
            for day in args.update_days:
                client.update(spec.name, float(day))
            result = client.query_trace(spec.name, trace)
    else:
        service = LocalizationService.from_specs(
            {spec.name: spec}, seed=args.seed
        )
        # Warm before updating: update() refuses cold sites by contract.
        service.warm()
        for day in args.update_days:
            service.update(spec.name, float(day))
        result = service.query_trace(spec.name, trace)
    deltas = result.positions - trace.true_positions
    errors = np.hypot(deltas[:, 0], deltas[:, 1])
    rows = [
        [
            index,
            int(trace.true_cells[index]),
            int(result.cells[index]),
            f"({result.positions[index, 0]:.2f}, {result.positions[index, 1]:.2f})",
            f"({trace.true_positions[index, 0]:.2f}, {trace.true_positions[index, 1]:.2f})",
            float(errors[index]),
        ]
        for index in range(result.frame_count)
    ]
    print(
        f"Serving query: site {spec.name!r}, day {args.day:g}, "
        f"{result.frame_count} frame(s)\n"
        + format_table(
            ["frame", "true cell", "est cell", "est pos [m]", "true pos [m]",
             "err [m]"],
            rows,
            precision=2,
        )
    )
    print(f"\nmedian error: {float(np.median(errors)):.2f} m")
    return 0


class _InprocTarget:
    """Query-only view of a backend for the load drivers.

    The drivers call ``close()`` on whatever ``connect()`` returned; when
    the target is the shared in-process backend itself, that must not
    tear the backend down mid-run.
    """

    def __init__(self, backend) -> None:
        self._backend = backend

    def query(self, site, rss, day):
        return self._backend.query(site, rss, day)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    spec = _spec(args)
    site_names = [f"site-{index:04d}" for index in range(args.sites)]
    specs = {name: spec for name in site_names}
    reference = LocalizationService.from_specs(specs, seed=args.seed)
    start = time.perf_counter()
    reference.warm()
    warm_s = time.perf_counter() - start
    scenario = cached_scenario(spec, build_scenario)
    cells = np.random.default_rng(
        _sub_seed(args.seed, "loadgen-cells")
    ).integers(0, scenario.deployment.cell_count, size=args.frames)
    trace = RssCollector(
        scenario, seed=_sub_seed(args.seed, "loadgen-trace")
    ).live_trace(0.0, cells)
    workloads = {site: trace.rss for site in site_names}
    # All sites share one spec → one deduped pipeline → identical answers;
    # compute the reference once and fan it out.
    first = expected_answers(
        reference, {site_names[0]: trace.rss}, 0.0
    )[site_names[0]]
    expected = {site: first for site in site_names}
    print(
        f"loadgen: {args.sites} site(s) sharing scenario {spec.name!r} "
        f"({reference.manager.stats.pipelines_built} pipeline(s), "
        f"warm {warm_s:.2f}s), transport {args.transport}, "
        f"arrival {args.arrival}, zipf_s={args.zipf_s:g}"
    )

    if args.shards:
        backend = ShardedService(specs, shards=args.shards, seed=args.seed)
        backend.warm()
    else:
        backend = reference

    def open_plan(rate: float):
        return open_loop_plan(
            sites=site_names,
            seed=args.seed,
            rate_qps=rate,
            requests=args.requests,
            process=args.process,
            zipf_s=args.zipf_s,
            clients=args.clients,
        )

    def report(summary: Dict[str, object]) -> None:
        latency = summary["latency"]
        print(
            f"  {summary['arrival']}/{summary['transport']}: offered "
            f"{summary['offered_qps']:,.0f} q/s, achieved "
            f"{summary['achieved_qps']:,.0f} q/s | p50/p95/p99 "
            f"{latency.get('p50_ms', float('nan')):.2f}/"
            f"{latency.get('p95_ms', float('nan')):.2f}/"
            f"{latency.get('p99_ms', float('nan')):.2f} ms | failed "
            f"{summary['failed_queries']}, mismatched "
            f"{summary['mismatched_queries']}"
        )

    try:
        with tempfile.TemporaryDirectory() as tmp:
            frontend = None
            if args.transport == "http":
                frontend = HttpFrontend(backend).start()
            elif args.transport == "unix":
                frontend = UnixFrontend(
                    backend, str(Path(tmp) / "loadgen.sock")
                ).start()
            elif args.transport == "aio":
                frontend = AioFrontend(backend).start()
            try:
                address = frontend.address if frontend is not None else None

                def run_open(rate: float) -> Dict[str, object]:
                    plan = open_plan(rate)
                    if args.transport == "aio":
                        result = run_open_loop_aio(
                            plan, address, workloads, expected=expected,
                            connections=2,
                        )
                    elif args.transport == "inproc":
                        result = run_open_loop(
                            plan, lambda: _InprocTarget(backend), workloads,
                            expected=expected, transport="inproc",
                        )
                    else:
                        result = run_open_loop(
                            plan,
                            lambda: ServiceClient(address, retries=0),
                            workloads, expected=expected,
                            transport=args.transport,
                        )
                    return result.summary()

                if args.arrival == "closed":
                    plan = closed_loop_plan(
                        sites=site_names,
                        seed=args.seed,
                        clients=args.clients,
                        requests_per_client=max(
                            1, args.requests // args.clients
                        ),
                        think_s=args.think_s,
                        zipf_s=args.zipf_s,
                    )
                    print(f"  plan fingerprint {plan.fingerprint()[:16]}…")
                    if args.transport == "inproc":
                        connect = lambda: _InprocTarget(backend)  # noqa: E731
                    else:
                        # The sync client speaks http://, unix:// and (for
                        # the aio front-end) tcp:// alike.
                        connect = lambda: ServiceClient(  # noqa: E731
                            address, retries=0
                        )
                    report(
                        run_closed_loop(
                            plan, connect, workloads, expected=expected,
                            transport=args.transport,
                        ).summary()
                    )
                elif args.slo_ms > 0:
                    print(
                        f"  SLO search: {args.percentile} <= "
                        f"{args.slo_ms:g} ms from {args.rate:g} q/s"
                    )
                    search = find_max_sustained_qps(
                        run_open,
                        slo_ms=args.slo_ms,
                        percentile=args.percentile,
                        start_qps=args.rate,
                        max_qps=args.max_qps,
                    )
                    for probe in search.probes:
                        report(probe)
                    print(
                        f"  max sustained under SLO: "
                        f"{search.max_sustained_qps:,.0f} q/s "
                        f"({len(search.probes)} probe(s))"
                    )
                else:
                    plan = open_plan(args.rate)
                    print(f"  plan fingerprint {plan.fingerprint()[:16]}…")
                    report(run_open(args.rate))
            finally:
                if frontend is not None:
                    frontend.close()
    finally:
        if backend is not reference:
            backend.close()
    return 0


def _cmd_floorplan(args: argparse.Namespace) -> int:
    spec = _spec(args)
    deployment = build_deployment(spec.geometry)
    print(
        format_summary(
            f"[Fig. 2] Deployment: {spec.name}",
            {
                "links": deployment.link_count,
                "cells": deployment.cell_count,
                "cell size [m]": deployment.grid.cell_size,
            },
        )
    )
    print(deployment.ascii_floor_plan())
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    rows = []
    for name, spec in list_scenarios().items():
        deployment = build_deployment(spec.geometry)
        extras = []
        if spec.interference is not None:
            extras.append("interference")
        if spec.events:
            extras.append(f"{len(spec.events)} event(s)")
        rows.append(
            [
                name,
                deployment.link_count,
                deployment.cell_count,
                f"{spec.geometry.width_m:g}x{spec.geometry.depth_m:g}",
                spec.drift.model,
                ", ".join(extras) or "-",
            ]
        )
    print(
        "Registered scenarios (use --scenario NAME, or --scenario-file "
        "spec.json for your own):\n"
        + format_table(
            ["name", "links", "cells", "area [m]", "drift", "extras"], rows
        )
    )
    if args.describe:
        print()
        for name, spec in list_scenarios().items():
            print(f"{name}: {spec.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tafloc-repro",
        description="Reproduce the TafLoc (SIGCOMM'16) experiments.",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the experiment engine (results are "
        "bit-identical for any value)",
    )
    scenario_group = parser.add_mutually_exclusive_group()
    scenario_group.add_argument(
        "--scenario", default="paper",
        help="registered scenario name (see `tafloc-repro scenarios`) or "
        "'square-<edge>m'",
    )
    scenario_group.add_argument(
        "--scenario-file", default=None,
        help="path to a ScenarioSpec JSON file (a user-supplied environment)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickstart", help="commission/update/localize demo")

    drift = sub.add_parser("drift", help="in-text drift measurement")
    drift.add_argument(
        "--days", type=float, nargs="+", default=[3, 5, 15, 45, 90]
    )
    drift.add_argument("--rooms", type=int, default=6, help="ensemble size")

    fig3 = sub.add_parser("fig3", help="reconstruction error vs gap")
    fig3.add_argument("--days", type=float, nargs="+", default=[3, 5, 15, 45, 90])
    fig3.add_argument("--cdf", action="store_true", help="print the CDF table")

    fig4 = sub.add_parser("fig4", help="update cost vs area size")
    fig4.add_argument(
        "--edges", type=float, nargs="+", default=[6, 12, 18, 24, 30, 36]
    )

    fig5 = sub.add_parser("fig5", help="localization comparison")
    fig5.add_argument("--day", type=float, default=90.0)
    fig5.add_argument("--cdf", action="store_true", help="print the CDF table")

    sub.add_parser("floorplan", help="render the selected deployment")

    scenarios = sub.add_parser("scenarios", help="list the scenario registry")
    scenarios.add_argument(
        "--describe", action="store_true", help="print full descriptions"
    )

    analyze = sub.add_parser(
        "analyze",
        help="repro-lint: AST invariant checks (determinism, locks, wire)",
    )
    analyze.add_argument("--root", default=None, help="tree to analyze")
    analyze.add_argument("--baseline", default=None, help="baseline JSON")
    analyze.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    analyze.add_argument("--out", default=None, help="write JSON report here")
    analyze.add_argument(
        "--rule", action="append", dest="rules", metavar="RL-XXX"
    )
    analyze.add_argument("--list-rules", action="store_true")

    bench = sub.add_parser("bench", help="batch-vs-loop performance benchmark")
    bench.add_argument(
        "--sizes", nargs="+", default=list(DEFAULT_SIZES),
        help="scenario names ('paper', 'warehouse', ...) or 'square-<edge>m'",
    )
    bench.add_argument("--frames", type=int, default=500)
    bench.add_argument("--repeat", type=int, default=3)
    bench.add_argument("--out", default=None, help="optional JSON output path")

    serve = sub.add_parser(
        "serve", help="multi-site serving demo: commission, route, measure"
    )
    serve.add_argument(
        "--sites", nargs="+", default=None,
        help="site scenario names (default: paper, or the --scenario-file "
        "spec when given)",
    )
    serve.add_argument(
        "--frames", type=int, default=200,
        help="warm workload frames per site",
    )
    serve.add_argument(
        "--update-days", type=float, nargs="*", default=[],
        help="run a fingerprint refresh at each day before serving",
    )
    serve.add_argument(
        "--day", type=float, default=0.0, help="query day for the workload"
    )
    serve.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="serve the JSON protocol over HTTP instead of running the "
        "demo (port 0 picks a free port)",
    )
    serve.add_argument(
        "--unix", dest="unix_socket", default=None, metavar="PATH",
        help="also (or instead) serve over a unix domain socket",
    )
    serve.add_argument(
        "--transport", choices=["thread", "aio"], default="thread",
        help="wire front-end flavor: 'thread' = the threaded HTTP/unix "
        "servers (one handler thread per request); 'aio' = one asyncio "
        "event loop serving pipelined NDJSON (many in-flight requests "
        "per connection, matched by request id, streamed query_trace) "
        "on --listen's host:port as tcp:// plus --unix when given. "
        "Answers are bit-identical either way; clients connect with "
        "tcp://host:port (sync or AsyncServiceClient)",
    )
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="partition sites across N worker processes (0 = in-process; "
        "answers are bit-identical for any value). A running sharded "
        "server resizes live via the wire 'resize' method: POST /resize "
        "{\"shards\": M} moves only the jump-hash-displaced sites, warms "
        "them (from snapshots when --snapshot-dir is set) before the "
        "routing table flips, and keeps answering throughout",
    )
    serve.add_argument(
        "--replicas", type=int, default=1, metavar="R",
        help="serve every site from R distinct shard workers (needs "
        "--shards >= R): queries fail over transparently when a worker "
        "dies or hangs, updates fan out to all R copies; with R >= 2 a "
        "kill -9 under load loses zero queries",
    )
    serve.add_argument(
        "--snapshot-dir", default=None, metavar="DIR",
        help="persist commissioned site state (fingerprint epochs + "
        "collector RNG states, checksummed) under DIR; crashed workers "
        "respawn warm from these snapshots in milliseconds instead of "
        "re-surveying, bit-identically",
    )
    serve.add_argument(
        "--snapshot-keep", type=int, default=None, metavar="K",
        help="retain the newest K snapshot versions per site (with "
        "--snapshot-dir); older versions are pruned by the snapshot "
        "lifecycle, keeping the directory bounded under daily refresh",
    )
    serve.add_argument(
        "--read-mode", default="failover",
        choices=["failover", "quorum"],
        help="with --shards and --replicas >= 2: 'quorum' cross-checks "
        "every read against all live replicas bit-for-bit, alarms on "
        "divergence, and quarantines + read-repairs the diverged copy "
        "before answering (the answer always comes from a verified "
        "replica); 'failover' asks one replica and only fails over on "
        "transport errors",
    )
    serve.add_argument(
        "--degraded-mode", action="store_true",
        help="when every replica of a site is down, answer from the "
        "last verified snapshot with an explicit stale marker instead "
        "of returning 503 (needs --snapshot-dir)",
    )
    serve.add_argument(
        "--scrub-interval-seconds", type=float, default=0.0, metavar="S",
        help="run the background anti-entropy scrub every S seconds "
        "(0 = off; with --shards): probes every site's replicas with "
        "identical held-out queries, alarms on any bit divergence, and "
        "quarantines + repairs the liar from its snapshot",
    )
    serve.add_argument(
        "--refresh-policy", default="off",
        choices=["off", "interval", "round-robin", "priority", "drift"],
        help="background fingerprint refresh policy (with --listen); "
        "'drift' refreshes on *measured* model degradation (held-out "
        "probe error vs the live database) instead of epoch age",
    )
    serve.add_argument(
        "--drift-threshold-m", type=float, default=0.75, metavar="M",
        help="with --refresh-policy drift: refresh a site once its "
        "measured degradation reaches M meters",
    )
    serve.add_argument(
        "--snapshot-cadence-days", type=float, default=None, metavar="D",
        help="run the snapshot lifecycle (save + scrub + compact) every "
        "D simulation days from the refresh scheduler",
    )
    serve.add_argument(
        "--refresh-interval-days", type=float, default=30.0,
        help="staleness threshold before a site is eligible for refresh",
    )
    serve.add_argument(
        "--refresh-budget", type=int, default=None,
        help="max refresh actions per scheduler tick",
    )
    serve.add_argument(
        "--refresh-period-seconds", type=float, default=1.0,
        help="wall seconds between scheduler ticks",
    )
    serve.add_argument(
        "--days-per-second", type=float, default=1.0,
        help="simulation-day clock rate driving the refresh scheduler",
    )
    serve.add_argument(
        "--max-seconds", type=float, default=None,
        help="stop serving after this many seconds (smoke tests/demos)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a front-end with generated load: open/closed-loop "
        "arrivals, Zipf site skew, latency percentiles, SLO search",
    )
    loadgen.add_argument(
        "--arrival", choices=["open", "closed"], default="open",
        help="'open' schedules arrivals independent of completions "
        "(coordinated-omission-free: latency is measured from the "
        "PLANNED send time); 'closed' runs N clients in "
        "request-think-request loops",
    )
    loadgen.add_argument(
        "--process", choices=["poisson", "uniform"], default="poisson",
        help="open-loop inter-arrival process (seeded, bit-reproducible)",
    )
    loadgen.add_argument(
        "--rate", type=float, default=200.0,
        help="open-loop offered rate in q/s (with --slo-ms: the search's "
        "starting rate)",
    )
    loadgen.add_argument(
        "--requests", type=int, default=200,
        help="total requests per run (closed loop: split across clients)",
    )
    loadgen.add_argument(
        "--clients", type=int, default=4,
        help="worker threads (open) / closed-loop clients",
    )
    loadgen.add_argument(
        "--think-s", type=float, default=0.0,
        help="closed-loop think time between a reply and the next request",
    )
    loadgen.add_argument(
        "--zipf-s", type=float, default=1.1,
        help="Zipf exponent for site popularity (0 = uniform)",
    )
    loadgen.add_argument(
        "--slo-ms", type=float, default=0.0,
        help="latency SLO bound in ms; > 0 runs the saturation search "
        "for the max sustained rate whose --percentile stays under it",
    )
    loadgen.add_argument(
        "--percentile", default="p99_ms",
        choices=["p50_ms", "p95_ms", "p99_ms", "p999_ms"],
        help="which latency percentile the SLO bounds",
    )
    loadgen.add_argument(
        "--max-qps", type=float, default=50_000.0,
        help="saturation-search rate ceiling",
    )
    loadgen.add_argument(
        "--sites", type=int, default=4,
        help="registered sites sharing the --scenario environment "
        "(pipelines dedupe by fingerprint; queries spread by --zipf-s)",
    )
    loadgen.add_argument(
        "--transport", default="http",
        choices=["inproc", "http", "unix", "aio"],
        help="target: in-process service, threaded HTTP/unix front-end, "
        "or the pipelined asyncio NDJSON front-end",
    )
    loadgen.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="back the front-end with N shard worker processes "
        "(0 = in-process backend)",
    )
    loadgen.add_argument(
        "--frames", type=int, default=16,
        help="distinct query frames in the shared workload trace",
    )

    query = sub.add_parser(
        "query", help="route a live query batch through the serving layer"
    )
    query.add_argument("--day", type=float, default=0.0, help="query day")
    query.add_argument(
        "--frames", type=int, default=3,
        help="random ground-truth frames to query (ignored with --cells)",
    )
    query.add_argument(
        "--cells", type=int, nargs="+", default=None,
        help="explicit ground-truth cells for the query frames",
    )
    query.add_argument(
        "--update-days", type=float, nargs="*", default=[],
        help="run a fingerprint refresh at each day before querying",
    )
    query.add_argument(
        "--connect", default=None, metavar="URL",
        help="route the batch through a running `serve --listen` server "
        "(http://host:port, tcp://host:port for --transport aio, or "
        "unix:///path) instead of in-process",
    )
    return parser


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.__main__ import main as analysis_main

    forwarded: List[str] = ["--format", args.format]
    if args.root is not None:
        forwarded += ["--root", args.root]
    if args.baseline is not None:
        forwarded += ["--baseline", args.baseline]
    if args.out is not None:
        forwarded += ["--out", args.out]
    for rule in args.rules or ():
        forwarded += ["--rule", rule]
    if args.list_rules:
        forwarded += ["--list-rules"]
    return analysis_main(forwarded)


_COMMANDS = {
    "quickstart": _cmd_quickstart,
    "drift": _cmd_drift,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "floorplan": _cmd_floorplan,
    "scenarios": _cmd_scenarios,
    "analyze": _cmd_analyze,
    "bench": _cmd_bench,
    "loadgen": _cmd_loadgen,
    "serve": _cmd_serve,
    "query": _cmd_query,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
