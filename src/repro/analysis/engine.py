"""repro-lint engine: parse the tree once, run every rule, apply policy.

The pipeline is deliberately boring::

    load_project(root)  ->  Project (one ast.Module per file, parent links,
                            suppression-comment map)
    Engine().run(...)   ->  Report (violations minus suppressions minus
                            baseline, plus the bookkeeping of both)

Rules never read files themselves: they receive the whole
:class:`Project` so cross-file invariants (wire-surface parity, the
protocol error contract) are as easy to express as single-file ones.

**Suppressions.** A source line may carry
``# repro-lint: disable=RL-C01 <reason>`` (comma-separate several ids).
The comment silences matching findings reported *on its own line*, or —
when the comment stands alone — on the next code line below it. A
suppression **must** carry a reason; a bare ``disable=`` is itself
reported as :data:`SUPPRESSION_RULE_ID` so undocumented escapes cannot
accumulate.

**Baseline.** Grandfathered findings live in a checked-in JSON file
(:mod:`repro.analysis.baseline`), matched by line-independent
fingerprint. Baselined findings do not fail the run; baseline entries
that no longer fire are surfaced as *stale* so the file shrinks over
time instead of fossilizing.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Fingerprint

#: Pseudo-rule id for malformed / reason-less suppression comments.
SUPPRESSION_RULE_ID = "RL-S00"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9\-,\s]*?)"
    r"(?:\s+(?P<reason>\S.*))?$"
)


@dataclass
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    #: True when the comment is alone on its line (applies to the next
    #: code line as well as its own).
    standalone: bool

    def covers(self, rule: str) -> bool:
        return rule in self.rules


@dataclass
class SourceFile:
    """One parsed module plus everything rules need to inspect it."""

    rel: str
    path: Path
    text: str
    tree: ast.Module
    suppressions: List[Suppression] = field(default_factory=list)
    #: Findings produced while *loading* (bad suppression comments).
    load_findings: List[Finding] = field(default_factory=list)

    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()


@dataclass
class Project:
    """Every parsed source file under one package root, keyed by relpath."""

    root: Path
    files: Dict[str, SourceFile] = field(default_factory=dict)

    def get(self, rel: str) -> Optional[SourceFile]:
        return self.files.get(rel)

    def walk(self, prefix: str = "") -> Iterator[SourceFile]:
        for rel in sorted(self.files):
            if rel.startswith(prefix):
                yield self.files[rel]


@dataclass
class Report:
    """Outcome of one engine run over one project."""

    findings: List[Finding]
    suppressed: List[Finding]
    baselined: List[Finding]
    stale_baseline: List[Fingerprint]
    files_checked: int
    rules_run: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
            "baselined": [f.to_json() for f in self.baselined],
            "stale_baseline": [fp.to_json() for fp in self.stale_baseline],
        }


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def _parse_suppressions(
    rel: str, text: str
) -> Tuple[List[Suppression], List[Finding]]:
    suppressions: List[Suppression] = []
    findings: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions, findings
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        # Only the directive marker counts; prose that merely mentions
        # repro-lint (docs, rationale comments) is not a directive.
        if re.search(r"repro-lint\s*:", token.string) is None:
            continue
        match = _SUPPRESS_RE.search(token.string)
        line = token.start[0]
        col = token.start[1]
        if match is None:
            findings.append(
                Finding(
                    path=rel,
                    line=line,
                    col=col,
                    rule=SUPPRESSION_RULE_ID,
                    message=(
                        "malformed repro-lint comment (expected "
                        "'# repro-lint: disable=RL-XXX <reason>'): "
                        f"{token.string.strip()!r}"
                    ),
                    key=f"malformed:L{line}",
                )
            )
            continue
        rules = tuple(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not rules or not reason:
            findings.append(
                Finding(
                    path=rel,
                    line=line,
                    col=col,
                    rule=SUPPRESSION_RULE_ID,
                    message=(
                        "suppression must name rule id(s) and carry a "
                        "reason: '# repro-lint: disable=RL-XXX <reason>'"
                    ),
                    key=f"bare:L{line}",
                )
            )
            continue
        standalone = token.line.strip().startswith("#")
        suppressions.append(
            Suppression(
                line=line, rules=rules, reason=reason, standalone=standalone
            )
        )
    return suppressions, findings


def _link_parents(tree: ast.Module) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, "_rl_parent", node)


def load_source(rel: str, path: Path, text: str) -> SourceFile:
    """Parse one module into a :class:`SourceFile` (raises on syntax errors)."""
    tree = ast.parse(text, filename=str(path))
    _link_parents(tree)
    suppressions, load_findings = _parse_suppressions(rel, text)
    return SourceFile(
        rel=rel,
        path=path,
        text=text,
        tree=tree,
        suppressions=suppressions,
        load_findings=load_findings,
    )


def load_project(root: Path) -> Project:
    """Parse every ``*.py`` under ``root`` (the package directory)."""
    root = Path(root).resolve()
    project = Project(root=root)
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8")
        project.files[rel] = load_source(rel, path, text)
    return project


# ----------------------------------------------------------------------
# AST helpers shared by rules
# ----------------------------------------------------------------------
def parent(node: ast.AST) -> Optional[ast.AST]:
    """The syntactic parent installed by :func:`load_source`."""
    return getattr(node, "_rl_parent", None)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    """Nearest enclosing ``def`` / ``async def``, if any."""
    cursor = parent(node)
    while cursor is not None:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cursor
        cursor = parent(cursor)
    return None


def qualname(node: ast.AST) -> str:
    """Dotted path of enclosing class/function scopes (for baseline keys)."""
    names: List[str] = []
    cursor: Optional[ast.AST] = node
    while cursor is not None:
        if isinstance(
            cursor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.append(cursor.name)
        cursor = parent(cursor)
    return ".".join(reversed(names)) or "<module>"


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    cursor: ast.AST = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
class Rule:
    """Base class every RL-* rule subclasses.

    Subclasses set :attr:`id` / :attr:`title` and implement
    :meth:`check`, yielding :class:`Finding` records. The class docstring
    is the rule's *rationale* — `--list-rules` prints it, so keep it an
    explanation of why the invariant matters, not a restatement of the
    title.
    """

    id: str = ""
    title: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def rationale(self) -> str:
        import inspect

        return inspect.cleandoc(self.__doc__ or "")


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
def _suppressed_by(
    finding: Finding, suppressions: Sequence[Suppression]
) -> bool:
    for suppression in suppressions:
        if not suppression.covers(finding.rule):
            continue
        if finding.line == suppression.line:
            return True
        if suppression.standalone and finding.line == suppression.line + 1:
            return True
    return False


class Engine:
    """Run a rule set over a project and fold in suppressions + baseline."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            from repro.analysis.rules import all_rules

            rules = all_rules()
        self.rules: Tuple[Rule, ...] = tuple(rules)
        seen: Set[str] = set()
        for rule in self.rules:
            if not rule.id or not rule.title:
                raise ValueError(
                    f"rule {type(rule).__name__} must declare id and title"
                )
            if rule.id in seen:
                raise ValueError(f"duplicate rule id {rule.id}")
            seen.add(rule.id)

    def run(
        self,
        project: Project,
        baseline: Optional[Baseline] = None,
        only: Optional[Iterable[str]] = None,
    ) -> Report:
        wanted = {r.upper() for r in only} if only is not None else None
        raw: List[Finding] = []
        rules_run: List[str] = []
        for source in project.walk():
            raw.extend(source.load_findings)
        for rule in self.rules:
            if wanted is not None and rule.id not in wanted:
                continue
            rules_run.append(rule.id)
            raw.extend(rule.check(project))
        raw.sort()

        live: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in raw:
            source = project.get(finding.path)
            if source is not None and _suppressed_by(
                finding, source.suppressions
            ):
                suppressed.append(finding)
            else:
                live.append(finding)

        baselined: List[Finding] = []
        stale: List[Fingerprint] = []
        if baseline is not None:
            matched: Set[Fingerprint] = set()
            remaining: List[Finding] = []
            for finding in live:
                fingerprint = finding.fingerprint()
                if baseline.covers(fingerprint):
                    matched.add(fingerprint)
                    baselined.append(finding)
                else:
                    remaining.append(finding)
            live = remaining
            stale = [
                entry.fingerprint()
                for entry in baseline.entries
                if entry.fingerprint() not in matched
            ]

        return Report(
            findings=live,
            suppressed=suppressed,
            baselined=baselined,
            stale_baseline=stale,
            files_checked=len(project.files),
            rules_run=tuple(rules_run),
        )
