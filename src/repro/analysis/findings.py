"""Finding records: what a repro-lint rule reports and how it is keyed.

A :class:`Finding` is one violation of one invariant rule at one source
location. Findings carry two identities:

* the *location* (``path:line:col``) — what a human jumps to; and
* the *fingerprint* (``rule`` + ``path`` + ``key``) — what the baseline
  and suppression machinery match on. ``key`` is a **semantic** handle
  chosen by the rule (an enclosing function qualname, a lock-order edge
  like ``ShardedService:_resize_lock->lock``, a wire method name), so a
  grandfathered finding stays grandfathered when unrelated edits shift
  its line number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Semantic baseline key; defaults to the line anchor when a rule has
    #: nothing more stable to offer.
    key: str = field(default="", compare=False)

    def fingerprint(self) -> "Fingerprint":
        return Fingerprint(self.rule, self.path, self.key or f"L{self.line}")

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "key": self.key or f"L{self.line}",
            "message": self.message,
        }


@dataclass(frozen=True, order=True)
class Fingerprint:
    """Line-independent identity of a finding (baseline match unit)."""

    rule: str
    path: str
    key: str

    def to_json(self) -> Dict[str, str]:
        return {"rule": self.rule, "path": self.path, "key": self.key}
