"""CLI for repro-lint: ``python -m repro.analysis`` / ``tafloc-repro analyze``.

Exit status is the CI contract: 0 when every finding is suppressed or
baselined, 1 when any live finding remains, 2 on usage/configuration
errors. ``--out`` always writes the full JSON report (findings,
suppressed, baselined, stale baseline entries) so CI can upload it as an
artifact on failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, List, Optional, Sequence

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.engine import Engine, Report, load_project
from repro.analysis.rules import all_rules


def _default_root() -> Path:
    """The installed ``repro`` package directory (works from any cwd)."""
    import repro

    return Path(repro.__file__).resolve().parent


def _default_baseline(root: Path) -> Optional[Path]:
    """``analysis-baseline.json`` beside the source tree, if present.

    For the in-repo layout (``src/repro``) that is the repository root;
    for an installed package there is usually no baseline, which is
    equivalent to an empty one.
    """
    for candidate in (
        root.parent.parent / "analysis-baseline.json",
        root / "analysis-baseline.json",
    ):
        if candidate.is_file():
            return candidate
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker: determinism, lock discipline, "
            "and wire-contract conformance for the repro tree"
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "baseline JSON of grandfathered findings "
            "(default: analysis-baseline.json beside the tree; 'none' "
            "disables)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the full JSON report to this file",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RL-XXX",
        help="run only the named rule(s) (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id, title, and rationale, then exit",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="REASON",
        default=None,
        help=(
            "write all current findings to the baseline file with REASON "
            "and exit 0 (for bootstrapping; prefer fixing code)"
        ),
    )
    return parser


def _print_text(report: Report, stream: Any) -> None:
    for finding in report.findings:
        print(
            f"{finding.location()}: {finding.rule}: {finding.message}",
            file=stream,
        )
    if report.baselined:
        print(
            f"note: {len(report.baselined)} baselined finding(s) "
            "(see analysis-baseline.json)",
            file=stream,
        )
    if report.stale_baseline:
        for fingerprint in report.stale_baseline:
            print(
                "note: stale baseline entry (no longer fires): "
                f"{fingerprint.rule} {fingerprint.path} {fingerprint.key}",
                file=stream,
            )
    verdict = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    print(
        f"repro-lint: {report.files_checked} file(s), "
        f"{len(report.rules_run)} rule(s): {verdict}",
        file=stream,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
            rationale = rule.rationale()
            if rationale:
                for line in rationale.splitlines():
                    print(f"    {line.rstrip()}")
            print()
        return 0

    root = (args.root or _default_root()).resolve()
    if not root.is_dir():
        print(f"repro-lint: no such directory: {root}", file=sys.stderr)
        return 2

    try:
        project = load_project(root)
    except SyntaxError as error:
        print(f"repro-lint: cannot parse tree: {error}", file=sys.stderr)
        return 2

    engine = Engine()
    known = {rule.id for rule in engine.rules}
    only: Optional[List[str]] = None
    if args.rules:
        only = [rule.upper() for rule in args.rules]
        unknown = sorted(set(only) - known)
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2

    baseline_path: Optional[Path]
    if args.baseline is not None and str(args.baseline) == "none":
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = args.baseline
        if not baseline_path.is_file():
            print(
                f"repro-lint: no such baseline: {baseline_path}",
                file=sys.stderr,
            )
            return 2
    else:
        baseline_path = _default_baseline(root)

    if args.write_baseline is not None:
        report = engine.run(project, baseline=None, only=only)
        target = baseline_path or (
            root.parent.parent / "analysis-baseline.json"
        )
        Baseline.from_findings(
            report.findings, reason=args.write_baseline
        ).save(target)
        print(
            f"repro-lint: wrote {len(report.findings)} finding(s) to "
            f"{target} — replace the shared reason with per-entry "
            "justifications before committing"
        )
        return 0

    baseline = Baseline.empty()
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2

    report = engine.run(project, baseline=baseline, only=only)

    if args.out is not None:
        args.out.write_text(
            json.dumps(report.to_json(), indent=2) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        _print_text(report, sys.stdout)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
