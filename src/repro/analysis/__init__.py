"""repro-lint: AST-based invariant checking for this reproduction.

The test suite proves the system's guarantees *end to end* (bit-identity
gates, resilience smoke); this package proves the *conventions that make
those guarantees hold* at analysis time, before any test runs:

* **Determinism** (RL-D01..D03) — all randomness flows through seeded
  ``util/rng.py`` plumbing, deterministic modules never read wall
  clocks, nothing numerically accumulates over set iteration order.
* **Concurrency** (RL-C01..C03) — nested lock acquisitions follow each
  class's declared ``_LOCK_ORDER``, nothing blocks the asyncio event
  loop, every thread is named and daemonized-or-joined.
* **Wire contract** (RL-W01..W02) — ``protocol.METHODS``, the handler
  table, handler error contracts, and both client classes move in
  lockstep.

Entry points: ``python -m repro.analysis``, ``tafloc-repro analyze``,
``make analyze``. See :mod:`repro.analysis.engine` for suppression
comments and :mod:`repro.analysis.baseline` for the grandfathering
workflow.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineError
from repro.analysis.engine import (
    Engine,
    Project,
    Report,
    Rule,
    SourceFile,
    load_project,
    load_source,
)
from repro.analysis.findings import Finding, Fingerprint
from repro.analysis.rules import all_rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Engine",
    "Finding",
    "Fingerprint",
    "Project",
    "Report",
    "Rule",
    "SourceFile",
    "all_rules",
    "load_project",
    "load_source",
]
