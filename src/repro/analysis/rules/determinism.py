"""Determinism rules (RL-D*): keep the bit-identity contract analyzable.

Every identity gate in this repo (wire vs in-process, parallel vs
serial, replica vs replica) assumes that *all* randomness flows through
the seeded plumbing in ``util/rng.py`` and that deterministic modules
never read wall clocks. These rules make those assumptions mechanical:
an unseeded generator or a clock read in a deterministic path is caught
at analysis time, not as a flaky identity-gate failure at bench scale.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import (
    Project,
    Rule,
    SourceFile,
    dotted_name,
    parent,
    qualname,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import register

#: The one module allowed to construct generators however it likes.
RNG_MODULE = "util/rng.py"

#: Modules whose task functions must be wall-clock free. Timing belongs
#: in the benchmark / serving layers, never in the code whose outputs
#: the identity gates compare.
DETERMINISTIC_PREFIXES = ("sim/", "core/")
DETERMINISTIC_FILES = ("eval/engine.py",)

#: Legacy global-state numpy draws (np.random.<fn>), all forbidden.
_NUMPY_GLOBAL_FNS = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "seed",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
}

_WALL_CLOCK_DOTTED = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
}

#: ``<something>.now()`` / ``.today()`` / ``.utcnow()`` tails that mean a
#: wall-clock read no matter how datetime was imported.
_WALL_CLOCK_TAILS = (
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)


def _module_imports(tree: ast.Module) -> Set[str]:
    """Top-level module names imported as-is (``import random`` -> random)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return names


def _from_imports(tree: ast.Module, module: str) -> Set[str]:
    """Names imported ``from <module> import name`` (local binding names)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _is_unseeded_call(call: ast.Call) -> bool:
    """No positional seed and no seed-like kwarg => unseeded."""
    if call.args and not (
        isinstance(call.args[0], ast.Constant) and call.args[0].value is None
    ):
        return False
    if any(k.arg in ("seed", "key") for k in call.keywords):
        return False
    return True


@register
class UnseededRandomness(Rule):
    """RL-D01: all randomness must flow through ``util/rng.py``.

    An unseeded ``np.random.default_rng()``, any legacy global-state
    ``np.random.<fn>`` draw, or the stdlib ``random`` module's shared
    global generator produces values that depend on process history —
    the exact property the parallel engine's counter-addressed Philox
    streams exist to rule out. One stray call turns "bit-identical for
    any --jobs" into "usually identical", which is undetectable in unit
    tests and fatal at bench scale.
    """

    id = "RL-D01"
    title = "unseeded or global-state RNG outside util/rng.py"

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.walk():
            if source.rel == RNG_MODULE:
                continue
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Finding]:
        modules = _module_imports(source.tree)
        random_names = _from_imports(source.tree, "random")
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, node, random_names)
            elif isinstance(node, ast.Name) and "random" in modules:
                yield from self._check_bare_module(source, node)

    def _check_call(
        self, source: SourceFile, call: ast.Call, random_names: Set[str]
    ) -> Iterator[Finding]:
        name = dotted_name(call.func)
        if name is None:
            # ``from random import random`` style bare calls.
            if (
                isinstance(call.func, ast.Name)
                and call.func.id in random_names
            ):
                yield self._finding(
                    source,
                    call,
                    f"stdlib random.{call.func.id} uses the process-global "
                    "generator; use util.rng (seeded) instead",
                    call.func.id,
                )
            return
        parts = name.split(".")
        tail = parts[-1]
        if tail == "default_rng" and _is_unseeded_call(call):
            yield self._finding(
                source,
                call,
                "unseeded default_rng(): results depend on OS entropy; "
                "derive a seed via util.rng (task_key/derive_seed)",
                name,
            )
        elif (
            len(parts) >= 2
            and parts[-2] == "random"
            and parts[0] in ("np", "numpy")
            and tail in _NUMPY_GLOBAL_FNS
        ):
            yield self._finding(
                source,
                call,
                f"legacy global-state numpy draw np.random.{tail}(); "
                "use a Generator from util.rng",
                name,
            )
        elif parts[0] == "random" and len(parts) == 2:
            if tail == "Random" and not _is_unseeded_call(call):
                return  # random.Random(seed) is an isolated, seeded stream
            yield self._finding(
                source,
                call,
                f"stdlib random.{tail} draws from (or is) unseeded global "
                "state; seed it or route through util.rng",
                name,
            )

    def _check_bare_module(
        self, source: SourceFile, node: ast.Name
    ) -> Iterator[Finding]:
        if node.id != "random" or not isinstance(node.ctx, ast.Load):
            return
        enclosing = parent(node)
        # ``random.<attr>`` is handled as a call; flag the module object
        # itself being passed around as a generator.
        if isinstance(enclosing, ast.Attribute):
            return
        if isinstance(enclosing, (ast.Import, ast.ImportFrom)):
            return
        yield self._finding(
            source,
            node,
            "the bare 'random' module used as a generator shares global "
            "state across the whole process; use a private random.Random",
            "random-module",
        )

    def _finding(
        self, source: SourceFile, node: ast.AST, message: str, callee: str
    ) -> Finding:
        return Finding(
            path=source.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            key=f"{qualname(node)}:{callee}",
        )


@register
class WallClockInDeterministicModule(Rule):
    """RL-D02: no wall-clock reads in ``sim/``, ``core/``, ``eval/engine.py``.

    The outputs of these modules are compared bit-for-bit across
    processes, transports, and replicas. A ``time.time()`` or
    ``datetime.now()`` read anywhere in them either leaks into results
    (breaking identity) or silently couples behavior to scheduling
    (breaking replayability). Timing measurements belong in the
    benchmark and serving layers, which are excluded by construction.
    """

    id = "RL-D02"
    title = "wall-clock read in a deterministic module"

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.walk():
            if not self._in_scope(source.rel):
                continue
            time_names = _from_imports(source.tree, "time")
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                flagged: Optional[str] = None
                if name in _WALL_CLOCK_DOTTED:
                    flagged = name
                elif name is not None and any(
                    name == tail or name.endswith("." + tail)
                    for tail in _WALL_CLOCK_TAILS
                ):
                    flagged = name
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id in time_names
                ):
                    flagged = f"time.{node.func.id}"
                if flagged is None:
                    continue
                yield Finding(
                    path=source.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        f"{flagged}() in deterministic module: timing "
                        "belongs in benchmark/serve layers, clock values "
                        "must never feed deterministic outputs"
                    ),
                    key=f"{qualname(node)}:{flagged}",
                )

    @staticmethod
    def _in_scope(rel: str) -> bool:
        return rel.startswith(DETERMINISTIC_PREFIXES) or (
            rel in DETERMINISTIC_FILES
        )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


@register
class SetIterationAccumulation(Rule):
    """RL-D03: no numeric accumulation over ``set`` iteration order.

    Python set iteration order depends on insertion history and hash
    randomization of the values involved; floating-point addition is not
    associative, so ``sum`` (or ``+=`` in a loop) over a set can differ
    in the last mantissa bits between two runs that contain identical
    elements. That is precisely the failure mode the identity gates
    exist to catch — sort the elements (or iterate a list/tuple) before
    accumulating.
    """

    id = "RL-D03"
    title = "numeric accumulation over set iteration order"

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.walk():
            for node in ast.walk(source.tree):
                if isinstance(node, ast.For) and _is_set_expr(node.iter):
                    if self._accumulates(node.body):
                        yield self._finding(source, node, "for-loop")
                elif isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    if name != "sum" or not node.args:
                        continue
                    arg = node.args[0]
                    if _is_set_expr(arg):
                        yield self._finding(source, node, "sum")
                    elif isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp)
                    ) and any(
                        _is_set_expr(gen.iter) for gen in arg.generators
                    ):
                        yield self._finding(source, node, "sum-comp")

    @staticmethod
    def _accumulates(body: List[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub, ast.Mult)
                ):
                    return True
        return False

    def _finding(
        self, source: SourceFile, node: ast.AST, kind: str
    ) -> Finding:
        return Finding(
            path=source.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=(
                "numeric accumulation over set iteration order is "
                "non-deterministic (float addition is not associative); "
                "sort the elements first"
            ),
            key=f"{qualname(node)}:{kind}:L{getattr(node, 'lineno', 1)}",
        )
