"""Wire-contract rules (RL-W*): the protocol surface cannot drift.

The serving protocol's promise is that every transport and every client
expose the *same* method surface with the *same* error contract. That
promise spans three files (``serve/protocol.py``, ``serve/frontend.py``,
``serve/aio.py``) which nothing previously forced to move together.
RL-W01 pins the ``METHODS`` tuple to the handler table and each
handler's **docstring-declared** error contract; RL-W02 pins both client
classes to ``METHODS``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Project, Rule, SourceFile, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules import register

PROTOCOL_FILE = "serve/protocol.py"
METHODS_NAME = "METHODS"
HANDLERS_NAME = "_HANDLERS"

#: Client classes that must stay in parity with METHODS.
CLIENT_CLASSES = (
    ("serve/frontend.py", "ServiceClient"),
    ("serve/aio.py", "AsyncServiceClient"),
)

#: Class attribute listing wire methods a client intentionally omits.
CLIENT_EXEMPT_ATTR = "_WIRE_EXEMPT"

#: The documented error contract: exception type -> wire status.
CONTRACT_STATUS = {
    "ValueError": 400,
    "TypeError": 400,
    "KeyError": 404,
    "LookupError": 409,
    "IndexError": 409,
    "RuntimeError": 503,
    "ServiceUnavailable": 503,
}

_ERRORS_LINE_RE = re.compile(r"^\s*Errors:\s*(?P<codes>.*)$", re.MULTILINE)


def _string_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: List[str] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        values.append(element.value)
    return tuple(values)


def _module_assign(tree: ast.Module, name: str) -> Optional[ast.expr]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.value
    return None


def _handler_map(tree: ast.Module) -> Dict[str, Tuple[str, int]]:
    """``_HANDLERS`` as {method: (function name, line)}."""
    value = _module_assign(tree, HANDLERS_NAME)
    mapping: Dict[str, Tuple[str, int]] = {}
    if not isinstance(value, ast.Dict):
        return mapping
    for key, handler in zip(value.keys, value.values):
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(handler, ast.Name)
        ):
            mapping[key.value] = (handler.id, key.lineno)
    return mapping


def _declared_statuses(docstring: Optional[str]) -> Optional[Set[int]]:
    """Statuses on the docstring's ``Errors:`` line; None when undeclared.

    ``Errors: none`` declares an empty contract (no explicit raises).
    """
    if not docstring:
        return None
    match = _ERRORS_LINE_RE.search(docstring)
    if match is None:
        return None
    return {int(code) for code in re.findall(r"\b\d{3}\b", match.group("codes"))}


def _explicit_raises(
    func: ast.AST, module_functions: Dict[str, ast.AST]
) -> Iterator[Tuple[str, int]]:
    """(exception type name, line) raised by ``func`` or its direct helpers."""
    seen: Set[str] = set()
    stack: List[ast.AST] = [func]
    while stack:
        current = stack.pop()
        for node in ast.walk(current):
            if isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                name = dotted_name(exc)
                if name is not None:
                    yield name.split(".")[-1], node.lineno
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name in module_functions
                    and name not in seen
                    and current is func  # one level of helper expansion
                ):
                    seen.add(name)
                    stack.append(module_functions[name])


@register
class HandlerErrorContract(Rule):
    """RL-W01: METHODS <-> handlers, each with a declared error contract.

    A wire method whose handler raises an exception type outside the
    documented 400/404/409/503 table surfaces to clients as a 500 — a
    contract break no transport test catches until a client trips it.
    This rule requires METHODS and the handler table to match one for
    one, every handler docstring to declare its statuses on an
    ``Errors:`` line, and every *explicit* raise (including one level of
    helper calls) to map to a declared status. Backend-raised contract
    errors are covered by the shared dispatch table and need no
    per-handler declaration beyond the statuses listed.
    """

    id = "RL-W01"
    title = "wire handler missing, undocumented, or off-contract"

    def check(self, project: Project) -> Iterator[Finding]:
        source = project.get(PROTOCOL_FILE)
        if source is None:
            return
        methods = _string_tuple(
            _module_assign(source.tree, METHODS_NAME) or ast.Tuple(elts=[])
        )
        if methods is None:
            methods = ()
        handlers = _handler_map(source.tree)
        functions: Dict[str, ast.AST] = {
            node.name: node
            for node in source.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        for method in methods:
            if method not in handlers:
                yield Finding(
                    path=source.rel,
                    line=1,
                    col=0,
                    rule=self.id,
                    message=(
                        f"METHODS names {method!r} but {HANDLERS_NAME} has "
                        "no handler for it"
                    ),
                    key=f"missing-handler:{method}",
                )
        for method, (handler_name, line) in handlers.items():
            if method not in methods:
                yield Finding(
                    path=source.rel,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"{HANDLERS_NAME} maps {method!r} but METHODS does "
                        "not list it — unreachable handler"
                    ),
                    key=f"unlisted-method:{method}",
                )
                continue
            func = functions.get(handler_name)
            if func is None:
                yield Finding(
                    path=source.rel,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"handler {handler_name} for {method!r} is not a "
                        "module-level function"
                    ),
                    key=f"missing-function:{method}",
                )
                continue
            yield from self._check_handler(source, method, func, functions)

    def _check_handler(
        self,
        source: SourceFile,
        method: str,
        func: ast.AST,
        functions: Dict[str, ast.AST],
    ) -> Iterator[Finding]:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        declared = _declared_statuses(ast.get_docstring(func))
        if declared is None:
            yield Finding(
                path=source.rel,
                line=func.lineno,
                col=func.col_offset,
                rule=self.id,
                message=(
                    f"handler {func.name} for {method!r} must declare its "
                    "error contract in the docstring ('Errors: 400, 404' "
                    "or 'Errors: none')"
                ),
                key=f"undeclared:{method}",
            )
            return
        undocumented = declared - {400, 404, 409, 503}
        if undocumented:
            yield Finding(
                path=source.rel,
                line=func.lineno,
                col=func.col_offset,
                rule=self.id,
                message=(
                    f"handler {func.name} declares status(es) "
                    f"{sorted(undocumented)} outside the documented "
                    "400/404/409/503 contract"
                ),
                key=f"bad-status:{method}",
            )
        for exc_name, line in _explicit_raises(func, functions):
            status = CONTRACT_STATUS.get(exc_name)
            if status is None:
                yield Finding(
                    path=source.rel,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"handler {func.name} raises {exc_name}, which has "
                        "no documented wire status — clients would see a "
                        "500"
                    ),
                    key=f"off-contract:{method}:{exc_name}",
                )
            elif status not in declared:
                yield Finding(
                    path=source.rel,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"handler {func.name} raises {exc_name} "
                        f"(status {status}) but its docstring declares "
                        f"only {sorted(declared)}"
                    ),
                    key=f"undeclared-status:{method}:{status}",
                )


@register
class ClientSurfaceParity(Rule):
    """RL-W02: client classes expose every wire method, by the same name.

    ``ServiceClient`` and ``AsyncServiceClient`` are the in-process
    contract's remote faces: code written against the service object
    must run unchanged against either client. A wire method without a
    same-named client wrapper forces callers down the untyped
    ``call()`` escape hatch, which silently bypasses result decoding
    and the idempotency-aware retry table. Intentional omissions go in
    the class's ``_WIRE_EXEMPT`` tuple — visible, greppable, reviewed.
    """

    id = "RL-W02"
    title = "client method surface out of parity with METHODS"

    def check(self, project: Project) -> Iterator[Finding]:
        protocol = project.get(PROTOCOL_FILE)
        if protocol is None:
            return
        methods = _string_tuple(
            _module_assign(protocol.tree, METHODS_NAME) or ast.Tuple(elts=[])
        )
        if not methods:
            return
        for rel, class_name in CLIENT_CLASSES:
            source = project.get(rel)
            if source is None:
                continue
            cls = next(
                (
                    node
                    for node in ast.walk(source.tree)
                    if isinstance(node, ast.ClassDef)
                    and node.name == class_name
                ),
                None,
            )
            if cls is None:
                continue
            yield from self._check_client(source, cls, methods)

    def _check_client(
        self,
        source: SourceFile,
        cls: ast.ClassDef,
        methods: Sequence[str],
    ) -> Iterator[Finding]:
        defined = {
            node.name
            for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        exempt: Tuple[str, ...] = ()
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == CLIENT_EXEMPT_ATTR
                    ):
                        exempt = _string_tuple(stmt.value) or ()
        for method in methods:
            if method in defined or method in exempt:
                continue
            yield Finding(
                path=source.rel,
                line=cls.lineno,
                col=cls.col_offset,
                rule=self.id,
                message=(
                    f"{cls.name} has no {method}() wrapper for wire "
                    f"method {method!r} (add one or list it in "
                    f"{CLIENT_EXEMPT_ATTR} with a comment)"
                ),
                key=f"{cls.name}:{method}",
            )
        for method in exempt:
            if method in defined:
                yield Finding(
                    path=source.rel,
                    line=cls.lineno,
                    col=cls.col_offset,
                    rule=self.id,
                    message=(
                        f"{cls.name}.{CLIENT_EXEMPT_ATTR} lists "
                        f"{method!r} but the method exists — stale exempt "
                        "entry"
                    ),
                    key=f"{cls.name}:stale-exempt:{method}",
                )
