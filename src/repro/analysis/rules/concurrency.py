"""Concurrency rules (RL-C*): lock discipline and event-loop hygiene.

``serve/`` is the one layer of this codebase with real threads, worker
processes, and an event loop. Its deadlock-freedom rests on unwritten
conventions — until now. RL-C01 derives each class's lock-acquisition
graph from the AST and checks it against a **declared** order
(``_LOCK_ORDER`` class attribute), RL-C02 keeps blocking calls off the
asyncio loop, RL-C03 keeps every thread accounted for (named, and
daemonized or joined).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import (
    Project,
    Rule,
    SourceFile,
    dotted_name,
    qualname,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import register

#: Only the serving layer runs threads against shared mutable state.
LOCK_SCOPE_PREFIX = "serve/"

#: Class attribute declaring the permitted nesting order, outermost
#: first. A nested acquisition A -> B is legal iff A precedes B here.
LOCK_ORDER_ATTR = "_LOCK_ORDER"

_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "asyncio.Lock",
    "asyncio.Condition",
}


def _lock_token(node: ast.AST) -> Optional[str]:
    """Canonical lock name for an acquired expression, if lock-like.

    ``self._resize_lock`` -> ``_resize_lock``; ``shard.lock`` ->
    ``lock``; a bare ``lock`` parameter -> ``lock``. Identity is by
    *attribute name*, deliberately: every instance of ``shard.lock``
    belongs to one rank in the declared order.
    """
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    lowered = name.lower()
    if lowered == "lock" or lowered.endswith("_lock"):
        return name
    return None


@dataclass
class _MethodFacts:
    """What one method does with locks, gathered in a single AST pass."""

    name: str
    #: Locks acquired anywhere in the method body.
    acquires: Set[str] = field(default_factory=set)
    #: (held-snapshot, acquired, line) for every nested acquisition.
    edges: List[Tuple[Tuple[str, ...], str, int]] = field(
        default_factory=list
    )
    #: (held-snapshot, callee, line) for self-method calls under a lock.
    calls_while_held: List[Tuple[Tuple[str, ...], str, int]] = field(
        default_factory=list
    )
    #: Every direct ``self.method()`` call (held or not) — closure fuel.
    self_calls: Set[str] = field(default_factory=set)


class _LockWalker:
    """Statement-ordered walk of one method, tracking the held-lock stack.

    ``with``/``async with`` holds span their bodies exactly; bare
    ``.acquire()`` holds span from the call to a matching ``.release()``
    in the same statement sequence, else to the end of the method — a
    sound over-approximation for lint purposes.
    """

    def __init__(self, facts: _MethodFacts) -> None:
        self.facts = facts
        self.held: List[str] = []

    def walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in stmt.items:
                token = _lock_token(item.context_expr)
                if token is not None:
                    self._acquire(token, stmt.lineno)
                    acquired.append(token)
                else:
                    self._scan_expr(item.context_expr)
            self.walk(stmt.body)
            for token in reversed(acquired):
                self._release(token)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs run on their own stack/time
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.stmt):
                continue
            self._scan_expr(node)
        for attr in ("body", "orelse", "finalbody"):
            child = getattr(stmt, attr, None)
            if isinstance(child, list) and child and isinstance(
                child[0], ast.stmt
            ):
                self.walk(child)
        handlers = getattr(stmt, "handlers", None)
        if handlers:
            for handler in handlers:
                self.walk(handler.body)

    def _scan_expr(self, node: ast.AST) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if isinstance(func, ast.Attribute):
                if func.attr == "acquire":
                    token = _lock_token(func.value)
                    if token is not None:
                        self._acquire(token, call.lineno)
                        continue
                if func.attr == "release":
                    token = _lock_token(func.value)
                    if token is not None:
                        self._release(token)
                        continue
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                ):
                    self.facts.self_calls.add(func.attr)
                    if self.held:
                        self.facts.calls_while_held.append(
                            (tuple(self.held), func.attr, call.lineno)
                        )

    def _acquire(self, token: str, line: int) -> None:
        self.facts.acquires.add(token)
        if self.held:
            self.facts.edges.append((tuple(self.held), token, line))
        self.held.append(token)

    def _release(self, token: str) -> None:
        if token in self.held:
            # Remove the innermost matching hold.
            for index in range(len(self.held) - 1, -1, -1):
                if self.held[index] == token:
                    del self.held[index]
                    break


def _declared_order(cls: ast.ClassDef) -> Optional[Tuple[str, ...]]:
    for stmt in cls.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == LOCK_ORDER_ATTR
                and isinstance(value, (ast.Tuple, ast.List))
            ):
                names: List[str] = []
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        names.append(element.value)
                return tuple(names)
    return None


def _lock_attrs(cls: ast.ClassDef) -> Dict[str, str]:
    """``self.X = threading.Lock()`` assignments: attr name -> factory."""
    attrs: Dict[str, str] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        factory = dotted_name(node.value.func)
        if factory not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs[target.attr] = factory
    return attrs


@register
class LockOrderDiscipline(Rule):
    """RL-C01: nested lock acquisitions must follow a declared order.

    Deadlocks need two threads and two locks taken in opposite orders —
    a bug no unit test reliably reproduces. This rule rebuilds each
    serving class's lock-acquisition graph (``with`` nesting, bare
    ``acquire``/``release``, plus one level of ``self.method()``
    expansion) and requires classes that nest distinct locks to declare
    their order in a ``_LOCK_ORDER`` class attribute, outermost first.
    Every observed edge must then run forward along the declaration;
    same-name self-nesting (two instances of ``shard.lock``) is flagged
    for an explicit suppression naming the runtime ordering argument.
    """

    id = "RL-C01"
    title = "undeclared or out-of-order nested lock acquisition"

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.walk(LOCK_SCOPE_PREFIX):
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(source, node)

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods: Dict[str, _MethodFacts] = {}
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                facts = _MethodFacts(name=stmt.name)
                _LockWalker(facts).walk(stmt.body)
                methods[stmt.name] = facts
        if not methods:
            return

        # Transitive closure of per-method acquisitions through direct
        # self-calls, so ``resize() -> self._pipelined()`` sees the shard
        # locks the callee takes.
        closure: Dict[str, Set[str]] = {
            name: set(facts.acquires) for name, facts in methods.items()
        }
        changed = True
        while changed:
            changed = False
            for name, facts in methods.items():
                for callee in facts.self_calls:
                    extra = closure.get(callee, set()) - closure[name]
                    if extra:
                        closure[name] |= extra
                        changed = True

        edges: Dict[Tuple[str, str], Tuple[int, str]] = {}
        for facts in methods.values():
            for held, token, line in facts.edges:
                for holder in held:
                    edges.setdefault((holder, token), (line, facts.name))
            for held, callee, line in facts.calls_while_held:
                for token in closure.get(callee, ()):  # indirect edges
                    for holder in held:
                        edges.setdefault(
                            (holder, token),
                            (line, f"{facts.name}->{callee}"),
                        )
        if not edges:
            return

        order = _declared_order(cls)
        distinct = {a for a, b in edges} | {b for a, b in edges}
        if order is None:
            if any(a != b for a, b in edges):
                line = min(line for line, _ in edges.values())
                yield Finding(
                    path=source.rel,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"class {cls.name} nests locks "
                        f"({', '.join(sorted(distinct))}) but declares no "
                        f"{LOCK_ORDER_ATTR}; declare the permitted order, "
                        "outermost first"
                    ),
                    key=f"{cls.name}:no-order",
                )
            order = ()

        rank = {name: index for index, name in enumerate(order)}
        for (holder, token), (line, via) in sorted(edges.items()):
            if holder == token:
                yield Finding(
                    path=source.rel,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"{cls.name}.{via}: acquires {token!r} while "
                        f"already holding {holder!r} (same lock name); if "
                        "these are distinct instances taken in a stable "
                        "order, suppress with the ordering argument"
                    ),
                    key=f"{cls.name}:{holder}->{token}",
                )
                continue
            if not order:
                continue
            if holder not in rank or token not in rank:
                missing = [
                    name for name in (holder, token) if name not in rank
                ]
                yield Finding(
                    path=source.rel,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"{cls.name}.{via}: nested acquisition "
                        f"{holder} -> {token} involves lock(s) not in "
                        f"{LOCK_ORDER_ATTR}: {', '.join(missing)}"
                    ),
                    key=f"{cls.name}:{holder}->{token}",
                )
            elif rank[holder] > rank[token]:
                yield Finding(
                    path=source.rel,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"{cls.name}.{via}: acquires {token!r} while "
                        f"holding {holder!r}, against the declared "
                        f"{LOCK_ORDER_ATTR} ({' > '.join(order)})"
                    ),
                    key=f"{cls.name}:{holder}->{token}",
                )


#: Calls that block the calling thread — poison inside ``async def``.
_BLOCKING_DOTTED_PREFIXES = ("subprocess.", "requests.", "urllib.request.")
_BLOCKING_DOTTED = {
    "time.sleep",
    "os.system",
    "os.popen",
    "socket.create_connection",
    "socket.getaddrinfo",
}


@register
class BlockingCallOnEventLoop(Rule):
    """RL-C02: no blocking calls inside ``async def`` bodies.

    One synchronous ``time.sleep`` or subprocess wait inside a coroutine
    stalls *every* connection multiplexed on the event loop — the
    pipelined front-end's whole value proposition. Blocking work must go
    through ``run_in_executor`` (the ``wire_dispatch`` offload hint) or
    ``asyncio.to_thread``. Nested synchronous ``def``s are exempt: they
    are the executor targets.
    """

    id = "RL-C02"
    title = "blocking call inside an async def"

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.walk(LOCK_SCOPE_PREFIX):
            for node in ast.walk(source.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_coroutine(source, node)

    def _check_coroutine(
        self, source: SourceFile, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in self._loop_nodes(func.body):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            blocking = name in _BLOCKING_DOTTED or any(
                name.startswith(prefix)
                for prefix in _BLOCKING_DOTTED_PREFIXES
            )
            if not blocking:
                continue
            yield Finding(
                path=source.rel,
                line=node.lineno,
                col=node.col_offset,
                rule=self.id,
                message=(
                    f"{name}() blocks the event loop inside async def "
                    f"{func.name}; use run_in_executor / asyncio.to_thread"
                ),
                key=f"{qualname(node)}:{name}",
            )

    def _loop_nodes(self, body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
        """Every node that runs on the loop (skips nested function bodies)."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


@register
class ThreadAccounting(Rule):
    """RL-C03: every thread is named, and daemonized or joined.

    An anonymous thread is invisible in stack dumps and leak reports
    (the tests/serve leak sanitizer identifies threads by name); a
    non-daemon thread that nobody joins outlives its owner and hangs
    interpreter shutdown. Requiring ``name=`` plus either
    ``daemon=True`` or a visible ``.join()`` on the stored handle keeps
    the fleet's thread population auditable.
    """

    id = "RL-C03"
    title = "thread without a name, neither daemon nor joined"

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.walk():
            thread_aliases = {"threading.Thread"}
            for alias in _thread_import_aliases(source.tree):
                thread_aliases.add(alias)
            joined = _joined_names(source.tree)
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name not in thread_aliases:
                    continue
                yield from self._check_thread(source, node, joined)

    def _check_thread(
        self, source: SourceFile, call: ast.Call, joined: Set[str]
    ) -> Iterator[Finding]:
        kwargs = {k.arg: k.value for k in call.keywords if k.arg}
        scope = qualname(call)
        target = _assign_target(call)
        if "name" not in kwargs:
            yield Finding(
                path=source.rel,
                line=call.lineno,
                col=call.col_offset,
                rule=self.id,
                message=(
                    "threading.Thread without name=: anonymous threads "
                    "are unattributable in dumps and leak reports"
                ),
                key=f"{scope}:{target or 'thread'}:name",
            )
        daemon = kwargs.get("daemon")
        is_daemon = (
            isinstance(daemon, ast.Constant) and daemon.value is True
        )
        if is_daemon:
            return
        if target is not None and (
            target in joined or _daemon_assigned(source.tree, target)
        ):
            return
        yield Finding(
            path=source.rel,
            line=call.lineno,
            col=call.col_offset,
            rule=self.id,
            message=(
                "thread is neither daemon=True nor visibly joined "
                "(no <handle>.join() in this module); it can outlive its "
                "owner and hang shutdown"
            ),
            key=f"{scope}:{target or 'thread'}:daemon-or-join",
        )


def _thread_import_aliases(tree: ast.Module) -> Iterator[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "threading":
            for alias in node.names:
                if alias.name == "Thread":
                    yield alias.asname or alias.name


def _assign_target(call: ast.Call) -> Optional[str]:
    """Name/attr the Thread() result is bound to, if directly assigned."""
    from repro.analysis.engine import parent

    enclosing = parent(call)
    if isinstance(enclosing, ast.Assign) and len(enclosing.targets) == 1:
        target = enclosing.targets[0]
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
    return None


def _joined_names(tree: ast.Module) -> Set[str]:
    """Every X in ``X.join()`` / ``self.X.join()`` calls in the module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
        ):
            base = node.func.value
            if isinstance(base, ast.Name):
                names.add(base.id)
            elif isinstance(base, ast.Attribute):
                names.add(base.attr)
    return names


def _daemon_assigned(tree: ast.Module, target: str) -> bool:
    """True when ``<target>.daemon = True`` appears anywhere in the module."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not (
            isinstance(node.value, ast.Constant) and node.value.value is True
        ):
            continue
        for assign_target in node.targets:
            if (
                isinstance(assign_target, ast.Attribute)
                and assign_target.attr == "daemon"
            ):
                base = assign_target.value
                base_name = (
                    base.id
                    if isinstance(base, ast.Name)
                    else base.attr
                    if isinstance(base, ast.Attribute)
                    else None
                )
                if base_name == target:
                    return True
    return False
