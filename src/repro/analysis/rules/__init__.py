"""The repro-lint rule registry.

Rules self-register with :func:`register` at import time;
:func:`all_rules` imports every rule module and returns one instance per
registered rule, in registration order. Adding a rule family is one new
module here plus an import below — the engine, CLI, baseline, and
suppression machinery pick it up unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analysis.engine import Rule

_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one rule to the registry (id must be unique)."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} must set an id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """One instance of every registered rule, importing rule modules lazily."""
    from repro.analysis.rules import concurrency, determinism, wire  # noqa: F401

    return [cls() for cls in _REGISTRY.values()]
