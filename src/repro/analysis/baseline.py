"""The repro-lint baseline: grandfathered findings, each with a reason.

The baseline is a checked-in JSON file whose entries match findings by
line-independent fingerprint (``rule`` + ``path`` + semantic ``key``).
It exists so the analyzer can gate CI from day one without first fixing
every historical finding — but every grandfathered entry **must** carry
a human-written reason string, so the file reads as a list of conscious
decisions, not a dumping ground. Loading rejects reason-less entries.

Workflow:

* ``make analyze`` fails on any finding not in the baseline;
* fix the code, or (for provably-intentional behavior) add an entry with
  a reason;
* entries whose finding no longer fires are reported as *stale* so the
  file only shrinks once code is fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Set, Union

from repro.analysis.findings import Finding, Fingerprint

#: Schema version of the baseline file.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding plus why it is allowed to stand."""

    rule: str
    path: str
    key: str
    reason: str

    def fingerprint(self) -> Fingerprint:
        return Fingerprint(self.rule, self.path, self.key)

    def to_json(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "key": self.key,
            "reason": self.reason,
        }


class BaselineError(ValueError):
    """The baseline file is malformed (bad JSON, missing reason, ...)."""


@dataclass
class Baseline:
    """An in-memory baseline: a set of fingerprints with reasons."""

    entries: List[BaselineEntry]

    def __post_init__(self) -> None:
        self._index: Set[Fingerprint] = {
            entry.fingerprint() for entry in self.entries
        }

    def covers(self, fingerprint: Fingerprint) -> bool:
        return fingerprint in self._index

    @staticmethod
    def empty() -> "Baseline":
        return Baseline(entries=[])

    @staticmethod
    def from_findings(
        findings: Iterable[Finding], reason: str
    ) -> "Baseline":
        """Baseline covering ``findings``, stamped with one shared reason."""
        if not reason.strip():
            raise BaselineError("a baseline reason must not be empty")
        entries = []
        seen: Set[Fingerprint] = set()
        for finding in findings:
            fingerprint = finding.fingerprint()
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            entries.append(
                BaselineEntry(
                    rule=fingerprint.rule,
                    path=fingerprint.path,
                    key=fingerprint.key,
                    reason=reason.strip(),
                )
            )
        return Baseline(entries=entries)

    @staticmethod
    def load(path: Union[str, Path]) -> "Baseline":
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise BaselineError(
                f"baseline {path} is not valid JSON: {error}"
            ) from None
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {path} has version {version!r}; "
                f"this tool reads version {BASELINE_VERSION}"
            )
        entries: List[BaselineEntry] = []
        raw_entries = payload["entries"]
        if not isinstance(raw_entries, list):
            raise BaselineError(f"baseline {path}: 'entries' must be a list")
        for position, raw in enumerate(raw_entries):
            if not isinstance(raw, dict):
                raise BaselineError(
                    f"baseline {path}: entry #{position} must be an object"
                )
            missing = [
                name
                for name in ("rule", "path", "key", "reason")
                if not str(raw.get(name, "")).strip()
            ]
            if missing:
                raise BaselineError(
                    f"baseline {path}: entry #{position} is missing "
                    f"{', '.join(missing)} — every grandfathered finding "
                    "needs a non-empty reason"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    key=str(raw["key"]),
                    reason=str(raw["reason"]),
                )
            )
        return Baseline(entries=entries)

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                entry.to_json()
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.key)
                )
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
