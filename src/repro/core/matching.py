"""Fingerprint matching: estimate the target cell from a live RSS vector.

After reconstruction, "the real-time RSS measurements are collected as
``Y = (y_i)_{M×1}``; then the target location can be estimated by matching
``Y`` with ``X``" (paper, end of section 2). Three matchers are provided:

* :class:`NearestNeighborMatcher` — argmin over columns of a distance between
  ``Y`` and ``x_j`` (Euclidean by default). The baseline rule.
* :class:`KnnMatcher` — distance-weighted average of the K best cells'
  centers; returns sub-grid ("fine-grained") positions.
* :class:`ProbabilisticMatcher` — Gaussian likelihood per cell with a noise
  scale, returning a posterior over cells; composes with the particle-filter
  tracker.

All matchers consume a :class:`~repro.core.fingerprint.FingerprintMatrix`
and a grid so they can translate cells to coordinates.

The primitive operation is :meth:`Matcher.match_batch`: an entire
``(frames, links)`` trace is scored against every grid cell in one
broadcasted pass, which is what gives trace-level localization its
throughput (see ``benchmarks/bench_perf.py``). Per-frame :meth:`Matcher.match`
is a thin single-row wrapper around it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.core.fingerprint import FingerprintMatrix
from repro.sim.geometry import Grid, Point
from repro.util.validation import check_positive

#: Cap on the elements of one broadcasted (frames, links, cells) distance
#: block; larger traces are scored in frame chunks to bound peak memory.
_BLOCK_ELEMENTS = 4_000_000


@dataclass(frozen=True)
class MatchResult:
    """A localization estimate.

    Attributes:
        cell: Most likely grid cell.
        position: Estimated coordinates (may be off-center for KNN).
        scores: Per-cell score; higher is better (negated distance or
            log-likelihood, matcher-dependent).
    """

    cell: int
    position: Point
    scores: np.ndarray


@dataclass(frozen=True)
class BatchMatchResult:
    """Localization estimates for a whole trace.

    Behaves as a sequence of :class:`MatchResult` (indexing, iteration,
    ``len``) while storing everything columnar, so batch consumers can work
    on the arrays directly without re-boxing frames.

    Attributes:
        cells: Most likely grid cell per frame, shape ``(frames,)``.
        positions: Estimated coordinates per frame, shape ``(frames, 2)``.
        scores: Per-(frame, cell) score, shape ``(frames, cells)``; higher
            is better, same convention as :class:`MatchResult`.
    """

    cells: np.ndarray
    positions: np.ndarray
    scores: np.ndarray

    def __post_init__(self) -> None:
        cells = np.asarray(self.cells, dtype=int)
        positions = np.asarray(self.positions, dtype=float)
        scores = np.asarray(self.scores, dtype=float)
        if positions.shape != (len(cells), 2):
            raise ValueError(
                f"positions shape {positions.shape} must be ({len(cells)}, 2)"
            )
        if scores.shape[0] != len(cells):
            raise ValueError(
                f"scores cover {scores.shape[0]} frames, expected {len(cells)}"
            )
        object.__setattr__(self, "cells", cells)
        object.__setattr__(self, "positions", positions)
        object.__setattr__(self, "scores", scores)

    @property
    def frame_count(self) -> int:
        return len(self.cells)

    def __len__(self) -> int:
        return self.frame_count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self.frame_count))]
        if not -self.frame_count <= index < self.frame_count:
            raise IndexError(f"frame {index} out of range [0, {self.frame_count})")
        return MatchResult(
            cell=int(self.cells[index]),
            position=Point(
                float(self.positions[index, 0]), float(self.positions[index, 1])
            ),
            scores=self.scores[index],
        )

    def __iter__(self) -> Iterator[MatchResult]:
        for index in range(self.frame_count):
            yield self[index]


class Matcher(abc.ABC):
    """Interface of fingerprint matchers."""

    def __init__(self, fingerprint: FingerprintMatrix, grid: Grid) -> None:
        if fingerprint.cell_count != grid.cell_count:
            raise ValueError(
                f"fingerprint covers {fingerprint.cell_count} cells, grid has "
                f"{grid.cell_count}"
            )
        self.fingerprint = fingerprint
        self.grid = grid
        self._centers = grid.centers_array()

    @abc.abstractmethod
    def match_batch(self, frames: np.ndarray) -> BatchMatchResult:
        """Estimate target locations for a whole ``(frames, links)`` trace."""

    def match(self, live_rss: np.ndarray) -> MatchResult:
        """Estimate the target location from one live RSS vector."""
        vector = self._check_vector(live_rss)
        return self.match_batch(vector[None, :])[0]

    def _check_vector(self, live_rss: np.ndarray) -> np.ndarray:
        vector = np.asarray(live_rss, dtype=float)
        if vector.shape != (self.fingerprint.link_count,):
            raise ValueError(
                f"live vector shape {vector.shape} must be "
                f"({self.fingerprint.link_count},)"
            )
        return vector

    def _check_frames(self, frames: np.ndarray) -> np.ndarray:
        array = np.asarray(frames, dtype=float)
        if array.ndim != 2 or array.shape[1] != self.fingerprint.link_count:
            raise ValueError(
                f"frames shape {array.shape} must be "
                f"(n_frames, {self.fingerprint.link_count})"
            )
        return array

    def _distances_batch(
        self, frames: np.ndarray, templates: np.ndarray, metric: str = "euclidean"
    ) -> np.ndarray:
        """``(frames, cells)`` distances between rows and template columns.

        Euclidean distances go through the Gram expansion
        ``||f - t||² = ||f||² - 2 f·t + ||t||²`` so the inner product runs
        as one BLAS matmul — an order of magnitude faster than
        materializing the ``(frames, links, cells)`` delta tensor, at the
        cost of ~1e-12 relative rounding versus the direct form. Manhattan
        distances have no such factorization and broadcast the delta tensor
        in frame chunks to bound peak memory.
        """
        if metric in ("euclidean", "sqeuclidean"):
            squared = np.sum(frames**2, axis=1)[:, None] - 2.0 * (
                frames @ templates
            )
            squared += np.sum(templates**2, axis=0)[None, :]
            np.maximum(squared, 0.0, out=squared)
            if metric == "sqeuclidean":
                return squared
            return np.sqrt(squared, out=squared)
        count, links = frames.shape
        cells = templates.shape[1]
        block = max(1, _BLOCK_ELEMENTS // max(1, links * cells))
        out = np.empty((count, cells))
        for start in range(0, count, block):
            stop = min(count, start + block)
            deltas = templates[None, :, :] - frames[start:stop, :, None]
            out[start:stop] = np.sum(np.abs(deltas), axis=1)
        return out


class NearestNeighborMatcher(Matcher):
    """Nearest column in Euclidean (or Manhattan) distance.

    ``use_dips=True`` matches on attenuation relative to the empty room
    instead of absolute dBm, which cancels any residual common drift between
    the fingerprint's calibration and the live measurement; it requires the
    caller to supply the live empty-room RSS estimate.
    """

    def __init__(
        self,
        fingerprint: FingerprintMatrix,
        grid: Grid,
        *,
        metric: str = "euclidean",
        use_dips: bool = False,
        live_empty_rss: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(fingerprint, grid)
        if metric not in ("euclidean", "manhattan"):
            raise ValueError(f"unknown metric {metric!r}")
        self.metric = metric
        self.use_dips = use_dips
        if use_dips:
            empty = (
                fingerprint.empty_rss if live_empty_rss is None else np.asarray(
                    live_empty_rss, dtype=float
                )
            )
            if empty.shape != (fingerprint.link_count,):
                raise ValueError(
                    f"live_empty_rss shape {empty.shape} must be "
                    f"({fingerprint.link_count},)"
                )
            self._live_empty = empty
            self._templates = fingerprint.dips()
        else:
            self._live_empty = None
            self._templates = fingerprint.values

    def match_batch(self, frames: np.ndarray) -> BatchMatchResult:
        vectors = self._check_frames(frames)
        if self.use_dips:
            vectors = self._live_empty[None, :] - vectors
        distances = self._distances_batch(vectors, self._templates, self.metric)
        cells = np.argmin(distances, axis=1)
        return BatchMatchResult(
            cells=cells, positions=self._centers[cells], scores=-distances
        )


class KnnMatcher(Matcher):
    """K nearest columns, inverse-distance-weighted centroid of their cells.

    This is what makes the estimate "fine-grained": the returned position
    interpolates between grid centers, so error is not floored at half a
    cell diagonal.
    """

    def __init__(
        self,
        fingerprint: FingerprintMatrix,
        grid: Grid,
        *,
        k: int = 3,
        epsilon: float = 1e-6,
    ) -> None:
        super().__init__(fingerprint, grid)
        if not 1 <= k <= fingerprint.cell_count:
            raise ValueError(
                f"k must lie in [1, {fingerprint.cell_count}], got {k}"
            )
        check_positive("epsilon", epsilon)
        self.k = k
        self.epsilon = epsilon

    def match_batch(self, frames: np.ndarray) -> BatchMatchResult:
        vectors = self._check_frames(frames)
        distances = self._distances_batch(vectors, self.fingerprint.values)
        if self.k < distances.shape[1]:
            nearest = np.argpartition(distances, self.k, axis=1)[:, : self.k]
            # argpartition leaves the k winners unordered; order them so the
            # reported best cell matches the per-frame argsort convention.
            order_in_block = np.argsort(
                np.take_along_axis(distances, nearest, axis=1), axis=1
            )
            order = np.take_along_axis(nearest, order_in_block, axis=1)
        else:
            order = np.argsort(distances, axis=1)[:, : self.k]
        best_distances = np.take_along_axis(distances, order, axis=1)
        weights = 1.0 / (best_distances + self.epsilon)
        weights = weights / weights.sum(axis=1, keepdims=True)
        positions = np.einsum("fk,fkd->fd", weights, self._centers[order])
        return BatchMatchResult(
            cells=order[:, 0], positions=positions, scores=-distances
        )


class ProbabilisticMatcher(Matcher):
    """Per-cell Gaussian likelihood ``N(Y; x_j, sigma^2 I)``.

    Returns the MAP cell; :meth:`posterior` exposes the normalized posterior
    for consumers that need full uncertainty (e.g. the tracker).
    """

    def __init__(
        self,
        fingerprint: FingerprintMatrix,
        grid: Grid,
        *,
        sigma_db: float = 2.0,
        prior: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(fingerprint, grid)
        check_positive("sigma_db", sigma_db)
        self.sigma_db = sigma_db
        if prior is None:
            prior = np.full(fingerprint.cell_count, 1.0 / fingerprint.cell_count)
        prior = np.asarray(prior, dtype=float)
        if prior.shape != (fingerprint.cell_count,):
            raise ValueError(
                f"prior shape {prior.shape} must be ({fingerprint.cell_count},)"
            )
        if np.any(prior < 0) or prior.sum() <= 0:
            raise ValueError("prior must be non-negative and not all zero")
        self.prior = prior / prior.sum()

    def log_likelihoods_batch(self, frames: np.ndarray) -> np.ndarray:
        """Unnormalized Gaussian log-likelihoods, shape ``(frames, cells)``."""
        vectors = self._check_frames(frames)
        squared = self._distances_batch(
            vectors, self.fingerprint.values, "sqeuclidean"
        )
        return -0.5 * squared / self.sigma_db**2

    def log_likelihoods(self, live_rss: np.ndarray) -> np.ndarray:
        """Unnormalized per-cell Gaussian log-likelihoods."""
        vector = self._check_vector(live_rss)
        return self.log_likelihoods_batch(vector[None, :])[0]

    def posterior_batch(self, frames: np.ndarray) -> np.ndarray:
        """Normalized per-frame posteriors, shape ``(frames, cells)``."""
        log_like = self.log_likelihoods_batch(frames) + np.log(self.prior)[None, :]
        log_like -= log_like.max(axis=1, keepdims=True)
        weights = np.exp(log_like)
        return weights / weights.sum(axis=1, keepdims=True)

    def posterior(self, live_rss: np.ndarray) -> np.ndarray:
        """Normalized posterior over cells given the live vector."""
        vector = self._check_vector(live_rss)
        return self.posterior_batch(vector[None, :])[0]

    def match_batch(self, frames: np.ndarray) -> BatchMatchResult:
        posteriors = self.posterior_batch(frames)
        cells = np.argmax(posteriors, axis=1)
        return BatchMatchResult(
            cells=cells,
            positions=self._centers[cells],
            scores=np.log(posteriors + 1e-300),
        )


def expected_position(posterior: np.ndarray, grid: Grid) -> Point:
    """Posterior-mean position (used by the tracker and examples)."""
    posterior = np.asarray(posterior, dtype=float)
    if posterior.shape != (grid.cell_count,):
        raise ValueError(
            f"posterior shape {posterior.shape} must be ({grid.cell_count})"
        )
    total = posterior.sum()
    if total <= 0:
        raise ValueError("posterior sums to zero")
    centers = grid.centers_array()
    return Point(
        float(posterior @ centers[:, 0] / total),
        float(posterior @ centers[:, 1] / total),
    )
