"""Fingerprint matching: estimate the target cell from a live RSS vector.

After reconstruction, "the real-time RSS measurements are collected as
``Y = (y_i)_{M×1}``; then the target location can be estimated by matching
``Y`` with ``X``" (paper, end of section 2). Three matchers are provided:

* :class:`NearestNeighborMatcher` — argmin over columns of a distance between
  ``Y`` and ``x_j`` (Euclidean by default). The baseline rule.
* :class:`KnnMatcher` — distance-weighted average of the K best cells'
  centers; returns sub-grid ("fine-grained") positions.
* :class:`ProbabilisticMatcher` — Gaussian likelihood per cell with a noise
  scale, returning a posterior over cells; composes with the particle-filter
  tracker.

All matchers consume a :class:`~repro.core.fingerprint.FingerprintMatrix`
and a grid so they can translate cells to coordinates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.fingerprint import FingerprintMatrix
from repro.sim.geometry import Grid, Point
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MatchResult:
    """A localization estimate.

    Attributes:
        cell: Most likely grid cell.
        position: Estimated coordinates (may be off-center for KNN).
        scores: Per-cell score; higher is better (negated distance or
            log-likelihood, matcher-dependent).
    """

    cell: int
    position: Point
    scores: np.ndarray


class Matcher(abc.ABC):
    """Interface of fingerprint matchers."""

    def __init__(self, fingerprint: FingerprintMatrix, grid: Grid) -> None:
        if fingerprint.cell_count != grid.cell_count:
            raise ValueError(
                f"fingerprint covers {fingerprint.cell_count} cells, grid has "
                f"{grid.cell_count}"
            )
        self.fingerprint = fingerprint
        self.grid = grid

    @abc.abstractmethod
    def match(self, live_rss: np.ndarray) -> MatchResult:
        """Estimate the target location from one live RSS vector."""

    def _check_vector(self, live_rss: np.ndarray) -> np.ndarray:
        vector = np.asarray(live_rss, dtype=float)
        if vector.shape != (self.fingerprint.link_count,):
            raise ValueError(
                f"live vector shape {vector.shape} must be "
                f"({self.fingerprint.link_count},)"
            )
        return vector


class NearestNeighborMatcher(Matcher):
    """Nearest column in Euclidean (or Manhattan) distance.

    ``use_dips=True`` matches on attenuation relative to the empty room
    instead of absolute dBm, which cancels any residual common drift between
    the fingerprint's calibration and the live measurement; it requires the
    caller to supply the live empty-room RSS estimate.
    """

    def __init__(
        self,
        fingerprint: FingerprintMatrix,
        grid: Grid,
        *,
        metric: str = "euclidean",
        use_dips: bool = False,
        live_empty_rss: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(fingerprint, grid)
        if metric not in ("euclidean", "manhattan"):
            raise ValueError(f"unknown metric {metric!r}")
        self.metric = metric
        self.use_dips = use_dips
        if use_dips:
            empty = (
                fingerprint.empty_rss if live_empty_rss is None else np.asarray(
                    live_empty_rss, dtype=float
                )
            )
            if empty.shape != (fingerprint.link_count,):
                raise ValueError(
                    f"live_empty_rss shape {empty.shape} must be "
                    f"({fingerprint.link_count},)"
                )
            self._live_empty = empty
            self._templates = fingerprint.dips()
        else:
            self._live_empty = None
            self._templates = fingerprint.values

    def match(self, live_rss: np.ndarray) -> MatchResult:
        vector = self._check_vector(live_rss)
        if self.use_dips:
            vector = self._live_empty - vector
        deltas = self._templates - vector[:, None]
        if self.metric == "euclidean":
            distances = np.sqrt(np.sum(deltas**2, axis=0))
        else:
            distances = np.sum(np.abs(deltas), axis=0)
        cell = int(np.argmin(distances))
        return MatchResult(
            cell=cell, position=self.grid.center_of(cell), scores=-distances
        )


class KnnMatcher(Matcher):
    """K nearest columns, inverse-distance-weighted centroid of their cells.

    This is what makes the estimate "fine-grained": the returned position
    interpolates between grid centers, so error is not floored at half a
    cell diagonal.
    """

    def __init__(
        self,
        fingerprint: FingerprintMatrix,
        grid: Grid,
        *,
        k: int = 3,
        epsilon: float = 1e-6,
    ) -> None:
        super().__init__(fingerprint, grid)
        if not 1 <= k <= fingerprint.cell_count:
            raise ValueError(
                f"k must lie in [1, {fingerprint.cell_count}], got {k}"
            )
        check_positive("epsilon", epsilon)
        self.k = k
        self.epsilon = epsilon

    def match(self, live_rss: np.ndarray) -> MatchResult:
        vector = self._check_vector(live_rss)
        deltas = self.fingerprint.values - vector[:, None]
        distances = np.sqrt(np.sum(deltas**2, axis=0))
        order = np.argsort(distances)[: self.k]
        weights = 1.0 / (distances[order] + self.epsilon)
        weights = weights / weights.sum()
        xs, ys = [], []
        for cell in order:
            center = self.grid.center_of(int(cell))
            xs.append(center.x)
            ys.append(center.y)
        position = Point(
            float(np.dot(weights, xs)), float(np.dot(weights, ys))
        )
        return MatchResult(
            cell=int(order[0]), position=position, scores=-distances
        )


class ProbabilisticMatcher(Matcher):
    """Per-cell Gaussian likelihood ``N(Y; x_j, sigma^2 I)``.

    Returns the MAP cell; :meth:`posterior` exposes the normalized posterior
    for consumers that need full uncertainty (e.g. the tracker).
    """

    def __init__(
        self,
        fingerprint: FingerprintMatrix,
        grid: Grid,
        *,
        sigma_db: float = 2.0,
        prior: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(fingerprint, grid)
        check_positive("sigma_db", sigma_db)
        self.sigma_db = sigma_db
        if prior is None:
            prior = np.full(fingerprint.cell_count, 1.0 / fingerprint.cell_count)
        prior = np.asarray(prior, dtype=float)
        if prior.shape != (fingerprint.cell_count,):
            raise ValueError(
                f"prior shape {prior.shape} must be ({fingerprint.cell_count},)"
            )
        if np.any(prior < 0) or prior.sum() <= 0:
            raise ValueError("prior must be non-negative and not all zero")
        self.prior = prior / prior.sum()

    def log_likelihoods(self, live_rss: np.ndarray) -> np.ndarray:
        """Unnormalized per-cell Gaussian log-likelihoods."""
        vector = self._check_vector(live_rss)
        deltas = self.fingerprint.values - vector[:, None]
        return -0.5 * np.sum(deltas**2, axis=0) / self.sigma_db**2

    def posterior(self, live_rss: np.ndarray) -> np.ndarray:
        """Normalized posterior over cells given the live vector."""
        log_like = self.log_likelihoods(live_rss) + np.log(self.prior)
        log_like -= log_like.max()
        weights = np.exp(log_like)
        return weights / weights.sum()

    def match(self, live_rss: np.ndarray) -> MatchResult:
        posterior = self.posterior(live_rss)
        cell = int(np.argmax(posterior))
        return MatchResult(
            cell=cell,
            position=self.grid.center_of(cell),
            scores=np.log(posterior + 1e-300),
        )


def expected_position(posterior: np.ndarray, grid: Grid) -> Point:
    """Posterior-mean position (used by the tracker and examples)."""
    posterior = np.asarray(posterior, dtype=float)
    if posterior.shape != (grid.cell_count,):
        raise ValueError(
            f"posterior shape {posterior.shape} must be ({grid.cell_count},)"
        )
    total = posterior.sum()
    if total <= 0:
        raise ValueError("posterior sums to zero")
    xs = np.array([grid.center_of(j).x for j in range(grid.cell_count)])
    ys = np.array([grid.center_of(j).y for j in range(grid.cell_count)])
    return Point(float(posterior @ xs / total), float(posterior @ ys / total))
