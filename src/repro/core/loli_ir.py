"""LoLi-IR: the alternating solver for the TafLoc objective.

The paper reconstructs the fingerprint matrix as a rank-``k`` factorization
``X̂ = L Rᵀ`` minimizing::

    f(L, R) = λ (||L||_F² + ||R||_F²)                (factored rank surrogate)
            + w_b ||B ∘ (L Rᵀ) − X_I||_F²            (known undistorted entries)
            + μ   ||L Rᵀ − X_R Z||_F²                (low-rank representation)
            + γ_g ||W_g ∘ ((L Rᵀ) G)||_F²            (continuity along links)
            + γ_h ||W_h ∘ (H (L Rᵀ))||_F²            (similarity across links)

``λ(||L||² + ||R||²)`` is the standard factored surrogate of the nuclear norm
(rank minimization), so all five paper terms appear literally. The problem is
non-convex jointly but convex in each factor, so LoLi-IR alternates: with
``R`` fixed the stationarity condition in ``L`` is a linear system with a
symmetric positive-definite operator, solved matrix-free by conjugate
gradients (no normal matrix is ever formed); then symmetrically for ``R``.
Each half-step solves its convex sub-problem, so the objective is
monotonically non-increasing — asserted by the unit tests.

Following the paper, the factors are initialized from an SVD of a rough
completion (``X̂₀ = UΣVᵀ, L = UΣ^{1/2}, R = VΣ^{1/2}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.completion import mean_fill
from repro.util.linalg import balanced_factors, conjugate_gradient
from repro.util.validation import check_matrix, check_positive

try:  # scipy is optional: the dense fallback is exact, just slower.
    from scipy.sparse import csr_array as _csr_array
except ImportError:  # pragma: no cover - exercised only without scipy
    _csr_array = None


@dataclass(frozen=True)
class LoliIrConfig:
    """Hyper-parameters of the LoLi-IR solve.

    The poster does not publish values; these defaults were chosen by the
    ablation benchmarks (see EXPERIMENTS.md) and are stable across the
    deployment sizes used in the paper's figures.

    Attributes:
        rank: Factorization rank ``k``.
        lam: Weight λ of the Frobenius (rank-surrogate) term.
        observed_weight: Weight on the known undistorted entries (``w_b``).
        lrr_weight: Weight μ of the low-rank-representation anchor term.
        continuity_weight: Weight γ_g of the along-link continuity term.
        similarity_weight: Weight γ_h of the across-link similarity term.
        outer_iterations: Number of (L-step, R-step) sweeps.
        tol: Relative objective-decrease tolerance for early stopping.
        cg_tol / cg_max_iter: Inner conjugate-gradient controls.
        dtype: Arithmetic precision of the solve: ``"float64"`` (default) or
            ``"float32"``. Single precision halves memory traffic in the CG
            inner loop — worthwhile on large deployments — at the cost of a
            coarser attainable tolerance; the objective bookkeeping always
            accumulates in float64.
    """

    rank: int = 6
    lam: float = 1e-2
    observed_weight: float = 1.0
    lrr_weight: float = 1.0
    continuity_weight: float = 0.3
    similarity_weight: float = 0.1
    outer_iterations: int = 30
    tol: float = 1e-7
    cg_tol: float = 1e-9
    cg_max_iter: int = 200
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError(f"rank must be >= 1, got {self.rank}")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(
                f"dtype must be float32 or float64, got {self.dtype!r}"
            )
        check_positive("lam", self.lam)
        check_positive("observed_weight", self.observed_weight, strict=False)
        check_positive("lrr_weight", self.lrr_weight, strict=False)
        check_positive("continuity_weight", self.continuity_weight, strict=False)
        check_positive("similarity_weight", self.similarity_weight, strict=False)
        if self.outer_iterations < 1:
            raise ValueError(
                f"outer_iterations must be >= 1, got {self.outer_iterations}"
            )


@dataclass(frozen=True)
class LoliIrResult:
    """Outcome of a LoLi-IR solve.

    Attributes:
        matrix: The reconstruction ``L @ R.T``.
        left / right: The factors.
        objective_history: Objective value after initialization and after
            each outer sweep (non-increasing).
        iterations: Outer sweeps performed.
        converged: Whether the relative-decrease tolerance was met before the
            iteration cap.
    """

    matrix: np.ndarray
    left: np.ndarray
    right: np.ndarray
    objective_history: np.ndarray
    iterations: int
    converged: bool

    @property
    def final_objective(self) -> float:
        return float(self.objective_history[-1])


@dataclass
class LoliIrProblem:
    """The data of one reconstruction instance.

    Any of the optional terms may be omitted (``None`` / zero weight), which
    is how the objective-ablation benchmark switches terms off.

    Attributes:
        observed_mask: Boolean ``B``, shape ``(links, cells)``.
        observed_values: ``X_I`` with valid data where ``B`` is True.
        lrr_target: ``X_R @ Z`` transferred estimate, shape ``(links, cells)``.
        continuity_op: ``G``, shape ``(cells, pairs_g)``.
        continuity_weights: ``W_g``, shape ``(links, pairs_g)``.
        similarity_op: ``H``, shape ``(pairs_h, links)``.
        similarity_weights: ``W_h``, shape ``(pairs_h, cells)``.
    """

    observed_mask: np.ndarray
    observed_values: np.ndarray
    lrr_target: Optional[np.ndarray] = None
    continuity_op: Optional[np.ndarray] = None
    continuity_weights: Optional[np.ndarray] = None
    similarity_op: Optional[np.ndarray] = None
    similarity_weights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        mask = np.asarray(self.observed_mask, dtype=bool)
        values = check_matrix("observed_values", self.observed_values)
        if mask.shape != values.shape:
            raise ValueError(
                f"observed_mask shape {mask.shape} does not match values "
                f"shape {values.shape}"
            )
        self.observed_mask = mask
        self.observed_values = values
        links, cells = values.shape
        if self.lrr_target is not None:
            target = check_matrix("lrr_target", self.lrr_target)
            if target.shape != values.shape:
                raise ValueError(
                    f"lrr_target shape {target.shape} must be {values.shape}"
                )
            self.lrr_target = target
        if (self.continuity_op is None) != (self.continuity_weights is None):
            raise ValueError("continuity_op and continuity_weights come together")
        if self.continuity_op is not None:
            g = check_matrix("continuity_op", self.continuity_op, allow_empty=True)
            w = check_matrix(
                "continuity_weights", self.continuity_weights, allow_empty=True
            )
            if g.shape[0] != cells:
                raise ValueError(
                    f"continuity_op has {g.shape[0]} rows, expected {cells}"
                )
            if w.shape != (links, g.shape[1]):
                raise ValueError(
                    f"continuity_weights shape {w.shape} must be "
                    f"({links}, {g.shape[1]})"
                )
            self.continuity_op = g
            self.continuity_weights = w
        if (self.similarity_op is None) != (self.similarity_weights is None):
            raise ValueError("similarity_op and similarity_weights come together")
        if self.similarity_op is not None:
            h = check_matrix("similarity_op", self.similarity_op, allow_empty=True)
            w = check_matrix(
                "similarity_weights", self.similarity_weights, allow_empty=True
            )
            if h.shape[1] != links:
                raise ValueError(
                    f"similarity_op has {h.shape[1]} columns, expected {links}"
                )
            if w.shape != (h.shape[0], cells):
                raise ValueError(
                    f"similarity_weights shape {w.shape} must be "
                    f"({h.shape[0]}, {cells})"
                )
            self.similarity_op = h
            self.similarity_weights = w

    @property
    def shape(self):
        return self.observed_values.shape


class _CompiledProblem:
    """Per-solve cache of everything the CG inner loop touches repeatedly.

    The raw :class:`LoliIrProblem` stores the smoothness operators as dense
    matrices. Applied densely, the ``G`` term alone costs
    ``O(links · cells · pairs)`` per CG iteration; since both ``G`` and ``H``
    are sparse difference operators (two nonzeros per pair), compiling them
    to CSR once per solve turns every application into
    ``O(links · pairs)``. The right-hand-side matrix and the weighted masks
    are likewise computed once here instead of once per half-step, and all
    arrays are cast to the configured dtype so a float32 solve never mixes
    precisions inside the hot loop.
    """

    def __init__(self, problem: LoliIrProblem, config: LoliIrConfig) -> None:
        dtype = np.dtype(config.dtype)
        self.shape = problem.shape
        self.dtype = dtype
        self.observed_mask = problem.observed_mask
        self.observed_values = problem.observed_values.astype(dtype)
        self.observed_scaled = (
            config.observed_weight
            * np.where(problem.observed_mask, problem.observed_values, 0.0)
        ).astype(dtype)

        self.lrr_target: Optional[np.ndarray] = None
        if problem.lrr_target is not None and config.lrr_weight > 0:
            self.lrr_target = problem.lrr_target.astype(dtype)

        self.continuity_weights: Optional[np.ndarray] = None
        if problem.continuity_op is not None and config.continuity_weight > 0:
            self.continuity_weights = problem.continuity_weights.astype(dtype)
            self._g = self._sparsify(problem.continuity_op.astype(dtype))
            self._gt = self._sparsify(problem.continuity_op.T.astype(dtype))

        self.similarity_weights: Optional[np.ndarray] = None
        if problem.similarity_op is not None and config.similarity_weight > 0:
            self.similarity_weights = problem.similarity_weights.astype(dtype)
            self._h = self._sparsify(problem.similarity_op.astype(dtype))
            self._ht = self._sparsify(problem.similarity_op.T.astype(dtype))

        # d(objective)/dX̂ right-hand side, computed once per solve.
        rhs = self.observed_scaled
        if self.lrr_target is not None:
            rhs = rhs + config.lrr_weight * self.lrr_target
        self.rhs = rhs.astype(dtype)

    @staticmethod
    def _sparsify(operator: np.ndarray):
        if _csr_array is None or operator.size == 0:
            return operator
        return _csr_array(operator)

    # -- operator applications (CSR-aware) -----------------------------
    def apply_g(self, matrix: np.ndarray) -> np.ndarray:
        """``matrix @ G`` (column differences across cell pairs)."""
        if _csr_array is not None and not isinstance(self._g, np.ndarray):
            return (self._gt @ matrix.T).T
        return matrix @ self._g

    def apply_gt(self, matrix: np.ndarray) -> np.ndarray:
        """``matrix @ G.T`` (adjoint scatter back onto cells)."""
        if _csr_array is not None and not isinstance(self._g, np.ndarray):
            return (self._g @ matrix.T).T
        return matrix @ self._gt

    def apply_h(self, matrix: np.ndarray) -> np.ndarray:
        """``H @ matrix`` (row differences across link pairs)."""
        return self._h @ matrix

    def apply_ht(self, matrix: np.ndarray) -> np.ndarray:
        """``H.T @ matrix``."""
        return self._ht @ matrix


class LoliIrSolver:
    """Alternating conjugate-gradient solver for :class:`LoliIrProblem`."""

    def __init__(self, config: LoliIrConfig = LoliIrConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(
        self,
        problem: LoliIrProblem,
        *,
        initial: Optional[np.ndarray] = None,
        warm_factors: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> LoliIrResult:
        """Run LoLi-IR to (local) convergence.

        Args:
            problem: The reconstruction instance.
            initial: Optional full-matrix warm start; defaults to the LRR
                target where available, falling back to row-mean fill of the
                observed entries (the paper's "roughly reconstructed by
                rank-minimization" starting point).
            warm_factors: Optional ``(left, right)`` factors from a previous
                solve of a related instance (e.g. the previous update day).
                Skips the SVD initialization entirely and typically leaves
                only a few outer sweeps to convergence; ignored when the
                shapes do not fit this problem.
        """
        cfg = self.config
        links, cells = problem.shape
        rank = min(cfg.rank, links, cells)
        compiled = _CompiledProblem(problem, cfg)

        left = right = None
        if warm_factors is not None and initial is None:
            warm_left, warm_right = warm_factors
            if warm_left.shape == (links, rank) and warm_right.shape == (cells, rank):
                left = np.array(warm_left, dtype=compiled.dtype, copy=True)
                right = np.array(warm_right, dtype=compiled.dtype, copy=True)
        if left is None:
            start = (
                self._initial_matrix(problem)
                if initial is None
                else np.asarray(initial, dtype=float)
            )
            if start.shape != problem.shape:
                raise ValueError(
                    f"initial shape {start.shape} does not match problem shape "
                    f"{problem.shape}"
                )
            left, right = balanced_factors(start, rank)
            left = left.astype(compiled.dtype)
            right = right.astype(compiled.dtype)

        history: List[float] = [self._objective(compiled, left, right)]
        converged = False
        iterations = 0
        for iterations in range(1, cfg.outer_iterations + 1):
            left = self._solve_left(compiled, left, right)
            right = self._solve_right(compiled, left, right)
            objective = self._objective(compiled, left, right)
            history.append(objective)
            previous = history[-2]
            if previous - objective <= cfg.tol * max(1.0, abs(previous)):
                converged = True
                break

        return LoliIrResult(
            matrix=left @ right.T,
            left=left,
            right=right,
            objective_history=np.array(history),
            iterations=iterations,
            converged=converged,
        )

    # ------------------------------------------------------------------
    # objective pieces
    # ------------------------------------------------------------------
    def _residual_operator(
        self, compiled: _CompiledProblem, estimate: np.ndarray
    ) -> np.ndarray:
        """``S(X̂)``: the PSD part of d(objective)/dX̂ (without the rhs)."""
        cfg = self.config
        out = cfg.observed_weight * np.where(compiled.observed_mask, estimate, 0.0)
        if compiled.lrr_target is not None:
            out = out + cfg.lrr_weight * estimate
        if compiled.continuity_weights is not None:
            weighted = compiled.continuity_weights * compiled.apply_g(estimate)
            out = out + cfg.continuity_weight * compiled.apply_gt(
                compiled.continuity_weights * weighted
            )
        if compiled.similarity_weights is not None:
            weighted = compiled.similarity_weights * compiled.apply_h(estimate)
            out = out + cfg.similarity_weight * compiled.apply_ht(
                compiled.similarity_weights * weighted
            )
        return out

    def _objective(
        self, compiled: _CompiledProblem, left: np.ndarray, right: np.ndarray
    ) -> float:
        cfg = self.config
        estimate = left @ right.T

        def sumsq(array: np.ndarray) -> float:
            # Accumulate in float64 even for float32 solves, so the
            # convergence test is not at the mercy of single-precision
            # reduction error.
            return float(np.sum(np.square(array, dtype=np.float64)))

        value = cfg.lam * (sumsq(left) + sumsq(right))
        residual = np.where(
            compiled.observed_mask, estimate - compiled.observed_values, 0.0
        )
        value += cfg.observed_weight * sumsq(residual)
        if compiled.lrr_target is not None:
            value += cfg.lrr_weight * sumsq(estimate - compiled.lrr_target)
        if compiled.continuity_weights is not None:
            value += cfg.continuity_weight * sumsq(
                compiled.continuity_weights * compiled.apply_g(estimate)
            )
        if compiled.similarity_weights is not None:
            value += cfg.similarity_weight * sumsq(
                compiled.similarity_weights * compiled.apply_h(estimate)
            )
        return value

    # ------------------------------------------------------------------
    # alternating sub-problems
    # ------------------------------------------------------------------
    def _solve_left(
        self, compiled: _CompiledProblem, left: np.ndarray, right: np.ndarray
    ) -> np.ndarray:
        cfg = self.config

        def operator(candidate: np.ndarray) -> np.ndarray:
            return cfg.lam * candidate + self._residual_operator(
                compiled, candidate @ right.T
            ) @ right

        rhs = compiled.rhs @ right
        solution = conjugate_gradient(
            operator, rhs, x0=left, tol=cfg.cg_tol, max_iter=cfg.cg_max_iter
        )
        return solution.solution

    def _solve_right(
        self, compiled: _CompiledProblem, left: np.ndarray, right: np.ndarray
    ) -> np.ndarray:
        cfg = self.config

        def operator(candidate: np.ndarray) -> np.ndarray:
            return cfg.lam * candidate + self._residual_operator(
                compiled, left @ candidate.T
            ).T @ left

        rhs = compiled.rhs.T @ left
        solution = conjugate_gradient(
            operator, rhs, x0=right, tol=cfg.cg_tol, max_iter=cfg.cg_max_iter
        )
        return solution.solution

    # ------------------------------------------------------------------
    # initialization
    # ------------------------------------------------------------------
    def _initial_matrix(self, problem: LoliIrProblem) -> np.ndarray:
        if problem.lrr_target is not None:
            start = np.array(problem.lrr_target, copy=True)
            start[problem.observed_mask] = problem.observed_values[
                problem.observed_mask
            ]
            return start
        return mean_fill(problem.observed_values, problem.observed_mask)
