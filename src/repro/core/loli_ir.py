"""LoLi-IR: the alternating solver for the TafLoc objective.

The paper reconstructs the fingerprint matrix as a rank-``k`` factorization
``X̂ = L Rᵀ`` minimizing::

    f(L, R) = λ (||L||_F² + ||R||_F²)                (factored rank surrogate)
            + w_b ||B ∘ (L Rᵀ) − X_I||_F²            (known undistorted entries)
            + μ   ||L Rᵀ − X_R Z||_F²                (low-rank representation)
            + γ_g ||W_g ∘ ((L Rᵀ) G)||_F²            (continuity along links)
            + γ_h ||W_h ∘ (H (L Rᵀ))||_F²            (similarity across links)

``λ(||L||² + ||R||²)`` is the standard factored surrogate of the nuclear norm
(rank minimization), so all five paper terms appear literally. The problem is
non-convex jointly but convex in each factor, so LoLi-IR alternates between
exact solves of the two convex sub-problems; the objective is monotonically
non-increasing — asserted by the unit tests.

Two half-step backends are available (``LoliIrConfig.method``):

* ``"gram"`` (default) — the key structural observation is that every
  objective term except one decouples **row-wise** in each factor. With ``R``
  fixed, link-row ``ℓ_i`` of ``L`` sees the ``k×k`` normal equations

      [λI + w_b Rᵀdiag(B_i)R + μ RᵀR + γ_g Σ_p w²_{ip} v_p v_pᵀ] ℓ_i = (rhs R)_i

  with ``v_p = Rᵀ g_p``; only the similarity term couples rows of ``L``
  (through ``H``), and symmetrically only the continuity term couples rows of
  ``R`` (through ``G``). The per-row blocks are assembled in a handful of
  GEMMs over cached Gram structure and solved closed-form in one batched
  ``k×k`` dense solve (collapsing to a *single* shared factorization when the
  rows are uniform). When a coupling term is active, the same blocks —
  augmented with the coupling's exact diagonal — become a block-Cholesky
  preconditioner for a matrix-free CG on the coupled system, which converges
  in a few iterations because the coupling weights (γ) are small against the
  per-row curvature. An exact sparse-LU alternative (cached ``splu``
  factorization reused across sweeps and solves) is available as
  ``LoliIrConfig.coupled_solver="direct"`` for cross-validation; it measures
  slower than the PCG default on the benchmarked workloads (see the config
  docstring and EXPERIMENTS.md).

* ``"cg"`` — the original matrix-free conjugate-gradient solve of each
  half-step, kept as the reference implementation for cross-validation and
  for benchmarking the fast path's speedup.

Following the paper, the factors are initialized from an SVD of a rough
completion (``X̂₀ = UΣVᵀ, L = UΣ^{1/2}, R = VΣ^{1/2}``). When a caller
supplies ``warm_factors`` from a previous related solve, the solver runs a
one-sweep probe from the observation-refreshed warm start and accepts it only
if that sweep already converges; otherwise it falls back to the cold
trajectory, so a warm solve provably never takes more outer iterations than a
cold one (see :meth:`LoliIrSolver.solve`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.completion import mean_fill
from repro.util.linalg import (
    balanced_factors,
    conjugate_gradient,
    preconditioned_conjugate_gradient,
)
from repro.util.validation import check_matrix, check_positive

try:  # scipy is optional: the dense fallback is exact, just slower.
    from scipy.sparse import csc_array as _csc_array
    from scipy.sparse import csr_array as _csr_array
    from scipy.sparse.linalg import splu as _splu
except ImportError:  # pragma: no cover - exercised only without scipy
    _csc_array = None
    _csr_array = None
    _splu = None


@dataclass(frozen=True)
class LoliIrConfig:
    """Hyper-parameters of the LoLi-IR solve.

    The poster does not publish values; these defaults were chosen by the
    ablation benchmarks (see EXPERIMENTS.md) and are stable across the
    deployment sizes used in the paper's figures.

    Attributes:
        rank: Factorization rank ``k``.
        lam: Weight λ of the Frobenius (rank-surrogate) term.
        observed_weight: Weight on the known undistorted entries (``w_b``).
        lrr_weight: Weight μ of the low-rank-representation anchor term.
        continuity_weight: Weight γ_g of the along-link continuity term.
        similarity_weight: Weight γ_h of the across-link similarity term.
        outer_iterations: Number of (L-step, R-step) sweeps.
        tol: Relative objective-decrease tolerance for early stopping.
        cg_tol / cg_max_iter: Inner (preconditioned) CG controls. The inner
            solves may be truncated freely: CG started from the current
            iterate never increases its quadratic, which *is* the full
            objective restricted to that factor, so outer monotonicity holds
            at any inner tolerance.
        method: Half-step backend: ``"gram"`` (precomputed Gram structure,
            closed-form ``k×k`` solves, direct or preconditioned-CG coupled
            solves when a coupling term is active) or ``"cg"`` (the original
            matrix-free CG reference).
        coupled_solver: Backend for the *coupled* half-steps of the
            ``"gram"`` method (continuity couples the R-step's cell rows,
            similarity the L-step's link rows):

            * ``"pcg"`` — block-Cholesky-preconditioned matrix-free CG:
              the per-row ``k×k`` blocks, augmented with the coupling's
              exact diagonal, are re-factorized every sweep; because they
              carry the dominant (and fast-changing) curvature while the
              coupling weight γ is small, CG converges in ≤ ~11
              iterations of cheap batched matvecs.
            * ``"direct"`` — assemble the coupled normal equations as one
              sparse block system (block diagonal + one ``k×k`` block per
              smoothness pair), factorize it exactly with
              ``scipy.sparse.linalg.splu`` on the first coupled sweep,
              and reuse that LU across later sweeps *and solves* as a CG
              preconditioner. Kept for cross-validation (it solves the
              first sweep exactly) and for structurally harder couplings;
              on the paper-family workloads it **measures slower** than
              ``"pcg"`` — the numeric factorization costs ~35 ms at
              square-12m against 2–3 ms PCG sweeps, and the frozen LU
              goes stale as the iterates move (see EXPERIMENTS.md, PR 3).
              Requires scipy.
            * ``"auto"`` (default) — currently resolves to ``"pcg"``, the
              measured-faster backend on every benchmarked size.
        accelerate: Safeguarded extrapolation of the outer loop. The
            alternating map converges linearly with a stable contraction
            ratio (one dominant error direction), so after each sweep the
            solver probes steps ``x + β(x − x_prev)`` for doubling ``β`` and
            keeps the best strictly-improving candidate. The safeguard
            (accept only on objective decrease) preserves monotonicity by
            construction; on the paper workload it roughly halves the sweeps
            of the hard updates.
        dtype: Arithmetic precision of the solve: ``"float64"`` (default) or
            ``"float32"``. Single precision halves memory traffic — worthwhile
            on large deployments — at the cost of a coarser attainable
            tolerance; the objective bookkeeping always accumulates in
            float64.
    """

    rank: int = 6
    lam: float = 1e-2
    observed_weight: float = 1.0
    lrr_weight: float = 1.0
    continuity_weight: float = 0.3
    similarity_weight: float = 0.1
    outer_iterations: int = 30
    tol: float = 1e-6
    cg_tol: float = 1e-7
    cg_max_iter: int = 200
    method: str = "gram"
    coupled_solver: str = "auto"
    accelerate: bool = True
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError(f"rank must be >= 1, got {self.rank}")
        if self.method not in ("gram", "cg"):
            raise ValueError(f"method must be gram or cg, got {self.method!r}")
        if self.coupled_solver not in ("auto", "direct", "pcg"):
            raise ValueError(
                f"coupled_solver must be auto, direct or pcg, "
                f"got {self.coupled_solver!r}"
            )
        if self.dtype not in ("float32", "float64"):
            raise ValueError(
                f"dtype must be float32 or float64, got {self.dtype!r}"
            )
        check_positive("lam", self.lam)
        check_positive("observed_weight", self.observed_weight, strict=False)
        check_positive("lrr_weight", self.lrr_weight, strict=False)
        check_positive("continuity_weight", self.continuity_weight, strict=False)
        check_positive("similarity_weight", self.similarity_weight, strict=False)
        if self.outer_iterations < 1:
            raise ValueError(
                f"outer_iterations must be >= 1, got {self.outer_iterations}"
            )


@dataclass(frozen=True)
class LoliIrResult:
    """Outcome of a LoLi-IR solve.

    Attributes:
        matrix: The reconstruction ``L @ R.T``.
        left / right: The factors.
        objective_history: Objective value after initialization and after
            each outer sweep (non-increasing).
        iterations: Outer sweeps performed.
        converged: Whether the relative-decrease tolerance was met before the
            iteration cap.
        sweep_seconds: Wall time of each outer sweep — the per-sweep
            convergence cost that feeds the Fig. 4 true-update-cost account.
        inner_iterations: Inner CG iterations spent in each outer sweep
            (0 for sweeps solved entirely closed-form).
        solve_seconds: Total wall time of the solve, initialization included.
        warm_started: Whether the supplied warm factors were actually used
            (they are discarded when the cold initialization scores a lower
            starting objective).
    """

    matrix: np.ndarray
    left: np.ndarray
    right: np.ndarray
    objective_history: np.ndarray
    iterations: int
    converged: bool
    sweep_seconds: np.ndarray = field(default_factory=lambda: np.zeros(0))
    inner_iterations: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=int)
    )
    solve_seconds: float = 0.0
    warm_started: bool = False

    @property
    def final_objective(self) -> float:
        return float(self.objective_history[-1])


@dataclass
class LoliIrProblem:
    """The data of one reconstruction instance.

    Any of the optional terms may be omitted (``None`` / zero weight), which
    is how the objective-ablation benchmark switches terms off.

    Attributes:
        observed_mask: Boolean ``B``, shape ``(links, cells)``.
        observed_values: ``X_I`` with valid data where ``B`` is True.
        lrr_target: ``X_R @ Z`` transferred estimate, shape ``(links, cells)``.
        continuity_op: ``G``, shape ``(cells, pairs_g)``.
        continuity_weights: ``W_g``, shape ``(links, pairs_g)``.
        similarity_op: ``H``, shape ``(pairs_h, links)``.
        similarity_weights: ``W_h``, shape ``(pairs_h, cells)``.
    """

    observed_mask: np.ndarray
    observed_values: np.ndarray
    lrr_target: Optional[np.ndarray] = None
    continuity_op: Optional[np.ndarray] = None
    continuity_weights: Optional[np.ndarray] = None
    similarity_op: Optional[np.ndarray] = None
    similarity_weights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        mask = np.asarray(self.observed_mask, dtype=bool)
        values = check_matrix("observed_values", self.observed_values)
        if mask.shape != values.shape:
            raise ValueError(
                f"observed_mask shape {mask.shape} does not match values "
                f"shape {values.shape}"
            )
        self.observed_mask = mask
        self.observed_values = values
        links, cells = values.shape
        if self.lrr_target is not None:
            target = check_matrix("lrr_target", self.lrr_target)
            if target.shape != values.shape:
                raise ValueError(
                    f"lrr_target shape {target.shape} must be {values.shape}"
                )
            self.lrr_target = target
        if (self.continuity_op is None) != (self.continuity_weights is None):
            raise ValueError("continuity_op and continuity_weights come together")
        if self.continuity_op is not None:
            g = check_matrix("continuity_op", self.continuity_op, allow_empty=True)
            w = check_matrix(
                "continuity_weights", self.continuity_weights, allow_empty=True
            )
            if g.shape[0] != cells:
                raise ValueError(
                    f"continuity_op has {g.shape[0]} rows, expected {cells}"
                )
            if w.shape != (links, g.shape[1]):
                raise ValueError(
                    f"continuity_weights shape {w.shape} must be "
                    f"({links}, {g.shape[1]})"
                )
            self.continuity_op = g
            self.continuity_weights = w
        if (self.similarity_op is None) != (self.similarity_weights is None):
            raise ValueError("similarity_op and similarity_weights come together")
        if self.similarity_op is not None:
            h = check_matrix("similarity_op", self.similarity_op, allow_empty=True)
            w = check_matrix(
                "similarity_weights", self.similarity_weights, allow_empty=True
            )
            if h.shape[1] != links:
                raise ValueError(
                    f"similarity_op has {h.shape[1]} columns, expected {links}"
                )
            if w.shape != (h.shape[0], cells):
                raise ValueError(
                    f"similarity_weights shape {w.shape} must be "
                    f"({h.shape[0]}, {cells})"
                )
            self.similarity_op = h
            self.similarity_weights = w

    @property
    def shape(self):
        return self.observed_values.shape


def _outer_rows(matrix: np.ndarray) -> np.ndarray:
    """Flattened per-row outer products: ``(r, k) -> (r, k*k)``.

    Row ``i`` of the result is ``x_i x_iᵀ`` raveled, so a weighted sum of
    rank-one Gram blocks becomes one GEMM: ``W @ _outer_rows(X)``.
    """
    return (matrix[:, :, None] * matrix[:, None, :]).reshape(matrix.shape[0], -1)


class _DirectCoupledSolver:
    """Cached ``splu`` factorization for one coupled half-step, reused
    across outer sweeps.

    A coupled half-step is the linear system

        [blockdiag(B_r) + γ Σ_p (m_p m_pᵀ) ⊗ C_p] x = rhs

    over the ``(n, k)`` factor ``x``, where ``m_p`` is column ``p`` of the
    smoothness incidence operator (two nonzeros per pair), ``B_r`` are the
    per-row normal-equation blocks and ``C_p`` the per-pair coupling
    blocks — both of which change every sweep with the opposite factor.
    Two things are stable enough to cache:

    * The *structure* — which (row, row) block slot each pair touches, with
      which scalar coefficient, and the scalar COO index arrays of the
      expanded ``(n·k, n·k)`` system — never changes. It is computed once
      per solve; refilling the numeric values each assembly is a handful of
      fancy-indexing ops.
    * The *factorization* — the first coupled sweep assembles the system
      and factorizes it exactly with ``scipy.sparse.linalg.splu`` (the
      system is SPD: λI sits in every diagonal block). Later sweeps see a
      system that has only drifted with the alternating iterates, so the
      frozen LU is an excellent preconditioner: they run CG with
      ``LU⁻¹`` as the preconditioner and converge in a couple of
      iterations, each costing one operator application plus a
      millisecond-scale triangular back-solve — no refactorization. This
      is what beats rebuilding either a fresh factorization (the numeric
      ``splu`` dominates at 400-cell scale) or the per-sweep
      block-Cholesky preconditioner of the ``"pcg"`` path.
    """

    def __init__(self, incidence: np.ndarray) -> None:
        incidence = np.asarray(incidence)
        self.incidence = incidence.copy()  # identity check for cache reuse
        self.rows = incidence.shape[0]
        block_rows: List[int] = [*range(self.rows)]  # base-diagonal slots
        block_cols: List[int] = [*range(self.rows)]
        pair_index: List[int] = []
        pair_coef: List[float] = []
        for p in range(incidence.shape[1]):
            nonzero = np.nonzero(incidence[:, p])[0]
            values = incidence[nonzero, p]
            for i, row in enumerate(nonzero):
                for j, col in enumerate(nonzero):
                    block_rows.append(int(row))
                    block_cols.append(int(col))
                    pair_index.append(p)
                    pair_coef.append(float(values[i] * values[j]))
        self._block_rows = np.asarray(block_rows, dtype=np.int64)
        self._block_cols = np.asarray(block_cols, dtype=np.int64)
        self._pair_index = np.asarray(pair_index, dtype=np.int64)
        self._pair_coef = np.asarray(pair_coef, dtype=np.float64)
        self._scalar_k = -1
        self._scalar_rows: Optional[np.ndarray] = None
        self._scalar_cols: Optional[np.ndarray] = None
        self._lu = None

    def _scalar_indices(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._scalar_k != k:
            offsets = np.arange(k, dtype=np.int64)
            rows = (
                self._block_rows[:, None, None] * k + offsets[None, :, None]
            ) + np.zeros((1, 1, k), dtype=np.int64)
            cols = (
                self._block_cols[:, None, None] * k + offsets[None, None, :]
            ) + np.zeros((1, k, 1), dtype=np.int64)
            self._scalar_rows = rows.reshape(-1)
            self._scalar_cols = cols.reshape(-1)
            self._scalar_k = k
        return self._scalar_rows, self._scalar_cols

    def _factorize(
        self,
        base_blocks: np.ndarray,
        coupling_blocks: np.ndarray,
        gamma: float,
        k: int,
    ) -> None:
        rows, cols = self._scalar_indices(k)
        pair_data = (
            gamma
            * self._pair_coef[:, None, None]
            * coupling_blocks[self._pair_index].astype(np.float64)
        )
        data = np.concatenate(
            [base_blocks.astype(np.float64), pair_data], axis=0
        ).reshape(-1)
        size = self.rows * k
        # Duplicate COO slots (several pairs hitting one diagonal block)
        # sum into place during the CSC conversion.
        self._lu = _splu(_csc_array((data, (rows, cols)), shape=(size, size)))

    def solve(
        self,
        operator: Callable[[np.ndarray], np.ndarray],
        base_blocks: np.ndarray,
        coupling_blocks: np.ndarray,
        gamma: float,
        rhs: np.ndarray,
        *,
        x0: np.ndarray,
        tol: float,
        max_iter: int,
    ) -> Tuple[np.ndarray, int]:
        """Solve the current coupled system; ``(solution (n, k), inner)``.

        The first call factorizes and back-solves exactly (0 inner
        iterations); later calls reuse that LU as a CG preconditioner on
        the *current* operator, so the answer converges to the current
        system's solution at ``tol`` regardless of how far the iterates
        have moved since the factorization.
        """
        k = rhs.shape[1]
        if self._lu is None or self._scalar_k != k:
            self._factorize(base_blocks, coupling_blocks, gamma, k)
            solution = self._lu.solve(
                np.asarray(rhs, dtype=np.float64).reshape(-1)
            )
            return solution.reshape(self.rows, k), 0

        def preconditioner(residual: np.ndarray) -> np.ndarray:
            flat = self._lu.solve(
                np.asarray(residual, dtype=np.float64).reshape(-1)
            )
            return flat.reshape(residual.shape).astype(residual.dtype, copy=False)

        result = preconditioned_conjugate_gradient(
            operator,
            rhs,
            preconditioner=preconditioner,
            x0=x0,
            tol=tol,
            max_iter=max_iter,
        )
        return result.solution, result.iterations


class _CompiledProblem:
    """Per-solve cache of everything the half-step solves touch repeatedly.

    The raw :class:`LoliIrProblem` stores the smoothness operators as dense
    matrices. This cache compiles, once per solve:

    * ``G``/``H`` (and their transposes) as CSR — both are sparse difference
      operators, so every application drops from ``O(links·cells·pairs)`` to
      ``O(links·pairs)``;
    * the squared operators ``G∘G`` / ``H∘H`` (CSR) and squared gate weights
      ``W²`` — the fixed quadratic structure from which the ``"gram"`` method
      assembles its per-row normal-equation blocks and the exact diagonal of
      the coupling terms (for the block-Cholesky CG preconditioner);
    * the observation mask as a float matrix (GEMM operand for the per-row
      observed Gram ``Rᵀ diag(B_i) R``) and the right-hand-side matrix.

    All arrays are cast to the configured dtype so a float32 solve never
    mixes precisions inside the hot loop.
    """

    def __init__(
        self,
        problem: LoliIrProblem,
        config: LoliIrConfig,
        direct_cache: Optional[Dict] = None,
    ) -> None:
        dtype = np.dtype(config.dtype)
        self.shape = problem.shape
        self.dtype = dtype
        if config.coupled_solver == "direct" and _splu is None:
            raise RuntimeError(
                "coupled_solver='direct' requires scipy; use 'pcg' or 'auto'"
            )
        # "auto" resolves to the PCG path: the exact-diagonal block
        # preconditioner, rebuilt per sweep, measurably beats a cached LU
        # on every benchmarked deployment (see LoliIrConfig docstring).
        self.use_direct_coupled = config.coupled_solver == "direct"
        # Solver-instance cache of _DirectCoupledSolver handles: an
        # incremental refresh loop (one Reconstructor, many updates) reuses
        # one LU across *solves*, not just across sweeps. A stale LU is
        # still a valid SPD preconditioner — CG targets the current
        # operator — so sharing across drifting problems is safe.
        self._direct_cache = direct_cache if direct_cache is not None else {}
        self.observed_mask = problem.observed_mask
        self.mask_float = problem.observed_mask.astype(dtype)
        self.observed_values = problem.observed_values.astype(dtype)
        self.observed_scaled = (
            config.observed_weight
            * np.where(problem.observed_mask, problem.observed_values, 0.0)
        ).astype(dtype)

        self.lrr_target: Optional[np.ndarray] = None
        if problem.lrr_target is not None and config.lrr_weight > 0:
            self.lrr_target = problem.lrr_target.astype(dtype)

        self.continuity_weights: Optional[np.ndarray] = None
        self.continuity_weights_sq: Optional[np.ndarray] = None
        if (
            problem.continuity_op is not None
            and problem.continuity_op.shape[1] > 0  # zero pairs ⇒ zero term
            and config.continuity_weight > 0
        ):
            weights = problem.continuity_weights.astype(dtype)
            self.continuity_weights = weights
            self.continuity_weights_sq = weights * weights
            operator = problem.continuity_op.astype(dtype)
            self._g = self._sparsify(operator)
            self._gt = self._sparsify(operator.T)
            self._g_sq = self._sparsify(operator * operator)
            self._g_dense = operator
            self._g_direct: Optional[_DirectCoupledSolver] = None

        self.similarity_weights: Optional[np.ndarray] = None
        self.similarity_weights_sq: Optional[np.ndarray] = None
        if (
            problem.similarity_op is not None
            and problem.similarity_op.shape[0] > 0  # zero pairs ⇒ zero term
            and config.similarity_weight > 0
        ):
            weights = problem.similarity_weights.astype(dtype)
            self.similarity_weights = weights
            self.similarity_weights_sq = weights * weights
            operator = problem.similarity_op.astype(dtype)
            self._h = self._sparsify(operator)
            self._ht = self._sparsify(operator.T)
            self._h_sq_t = self._sparsify((operator * operator).T)
            self._h_dense = operator
            self._h_direct: Optional[_DirectCoupledSolver] = None

        # d(objective)/dX̂ right-hand side, computed once per solve.
        rhs = self.observed_scaled
        if self.lrr_target is not None:
            rhs = rhs + config.lrr_weight * self.lrr_target
        self.rhs = rhs.astype(dtype)

    @staticmethod
    def _sparsify(operator: np.ndarray):
        if _csr_array is None or operator.size == 0:
            return operator
        return _csr_array(operator)

    # -- operator applications (CSR-aware) -----------------------------
    def apply_g(self, matrix: np.ndarray) -> np.ndarray:
        """``matrix @ G`` (column differences across cell pairs)."""
        if _csr_array is not None and not isinstance(self._g, np.ndarray):
            return (self._gt @ matrix.T).T
        return matrix @ self._g

    def apply_gt(self, matrix: np.ndarray) -> np.ndarray:
        """``matrix @ G.T`` (adjoint scatter back onto cells)."""
        if _csr_array is not None and not isinstance(self._g, np.ndarray):
            return (self._g @ matrix.T).T
        return matrix @ self._gt

    def apply_h(self, matrix: np.ndarray) -> np.ndarray:
        """``H @ matrix`` (row differences across link pairs)."""
        return self._h @ matrix

    def apply_ht(self, matrix: np.ndarray) -> np.ndarray:
        """``H.T @ matrix``."""
        return self._ht @ matrix

    # -- Gram-structure applications (the "gram" method) ----------------
    def g_gather(self, factor: np.ndarray) -> np.ndarray:
        """``Gᵀ @ factor``: per-pair differences of R-factor rows, (P, k)."""
        return self._gt @ factor

    def g_scatter(self, pair_rows: np.ndarray) -> np.ndarray:
        """``G @ pair_rows``: adjoint scatter onto cell rows, (cells, k)."""
        return self._g @ pair_rows

    def g_sq_diag(self, pair_blocks: np.ndarray) -> np.ndarray:
        """Exact cell-diagonal of the continuity coupling: ``(G∘G) @ S``."""
        pairs = pair_blocks.shape[0]
        return self._g_sq @ pair_blocks.reshape(pairs, -1)

    def h_sq_diag(self, pair_blocks: np.ndarray) -> np.ndarray:
        """Exact link-diagonal of the similarity coupling: ``(H∘H)ᵀ @ S``."""
        pairs = pair_blocks.shape[0]
        return self._h_sq_t @ pair_blocks.reshape(pairs, -1)

    # -- cached direct coupled solvers (LU reused across sweeps/solves) --
    def _direct_for(self, role: str, incidence: np.ndarray) -> _DirectCoupledSolver:
        # Keyed by a cheap structural summary, then verified by content:
        # the handle's first solve back-substitutes its cached structure
        # exactly (no CG correction), so a summary collision must rebuild
        # rather than reuse.
        key = (
            role,
            incidence.shape,
            int(np.count_nonzero(incidence)),
            float(np.float64(incidence.sum())),
        )
        cached = self._direct_cache.get(key)
        if cached is None or not np.array_equal(cached.incidence, incidence):
            cached = _DirectCoupledSolver(incidence)
            self._direct_cache[key] = cached
        return cached

    def continuity_direct(self) -> Optional[_DirectCoupledSolver]:
        """Direct solver for the G-coupled R-step, or ``None`` (PCG path)."""
        if not self.use_direct_coupled:
            return None
        if self._g_direct is None:
            self._g_direct = self._direct_for("g", self._g_dense)
        return self._g_direct

    def similarity_direct(self) -> Optional[_DirectCoupledSolver]:
        """Direct solver for the H-coupled L-step, or ``None`` (PCG path)."""
        if not self.use_direct_coupled:
            return None
        if self._h_direct is None:
            self._h_direct = self._direct_for("h", self._h_dense.T)
        return self._h_direct


class LoliIrSolver:
    """Alternating solver for :class:`LoliIrProblem` (see module docstring)."""

    def __init__(self, config: Optional[LoliIrConfig] = None) -> None:
        self.config = config if config is not None else LoliIrConfig()
        # Direct coupled-solver handles (sparse structure + frozen LU),
        # shared across every solve() of this instance so refresh loops
        # amortize the one numeric factorization (see _DirectCoupledSolver).
        self._direct_cache: Dict = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(
        self,
        problem: LoliIrProblem,
        *,
        initial: Optional[np.ndarray] = None,
        warm_factors: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> LoliIrResult:
        """Run LoLi-IR to (local) convergence.

        Args:
            problem: The reconstruction instance.
            initial: Optional full-matrix warm start; defaults to the LRR
                target where available, falling back to row-mean fill of the
                observed entries (the paper's "roughly reconstructed by
                rank-minimization" starting point).
            warm_factors: Optional ``(left, right)`` factors from a previous
                solve of a related instance (e.g. the previous update day).
                The solver refreshes them with this problem's observations
                and runs a one-sweep probe: if that sweep already converges,
                the solve finishes in one outer iteration; otherwise the
                probe is discarded and the solve proceeds bit-identically to
                a cold one. A warm solve therefore provably never takes more
                outer iterations than a cold solve of the same problem
                (regression-tested). Ignored when the shapes do not fit this
                problem.
        """
        started = time.perf_counter()
        cfg = self.config
        links, cells = problem.shape
        rank = min(cfg.rank, links, cells)
        compiled = _CompiledProblem(problem, cfg, self._direct_cache)

        warm_pair = None
        if warm_factors is not None and initial is None:
            warm_left, warm_right = warm_factors
            if warm_left.shape == (links, rank) and warm_right.shape == (cells, rank):
                warm_pair = (
                    np.array(warm_left, dtype=compiled.dtype, copy=True),
                    np.array(warm_right, dtype=compiled.dtype, copy=True),
                )
        start = (
            self._initial_matrix(problem)
            if initial is None
            else np.asarray(initial, dtype=float)
        )
        if start.shape != problem.shape:
            raise ValueError(
                f"initial shape {start.shape} does not match problem shape "
                f"{problem.shape}"
            )
        cold_left, cold_right = balanced_factors(start, rank)
        left = cold_left.astype(compiled.dtype)
        right = cold_right.astype(compiled.dtype)
        if warm_pair is not None:
            # Warm-start probe. Refresh the previous solution with today's
            # observations (it is stale exactly where this problem has fresh
            # data), re-factor, and run ONE probe sweep from it. Accept the
            # warm start only when that single sweep already meets the
            # convergence criterion — the near-identical-problem regime the
            # warm start is built for — in which case the solve finishes in
            # exactly one outer iteration, provably no more than any cold
            # solve (which runs at least one). Otherwise the probe is
            # discarded and the solve below is bit-identical to a cold one,
            # so a warm solve can never take more outer iterations than cold
            # (the regression guarantee that replaced the PR-1 behavior of
            # warm solves crawling to the sweep cap).
            warm_matrix = warm_pair[0] @ warm_pair[1].T
            refreshed = np.where(
                problem.observed_mask, compiled.observed_values, warm_matrix
            )
            warm_left, warm_right = balanced_factors(
                np.asarray(refreshed, dtype=float), rank
            )
            warm_left = warm_left.astype(compiled.dtype)
            warm_right = warm_right.astype(compiled.dtype)
            cold_objective = self._objective(compiled, left, right)
            warm_objective = self._objective(compiled, warm_left, warm_right)
            if warm_objective < cold_objective:
                sweep = self._sweep_gram if cfg.method == "gram" else self._sweep_cg
                probe_started = time.perf_counter()
                probe_left, probe_right, inner = sweep(
                    compiled, warm_left, warm_right
                )
                probe_objective = self._objective(
                    compiled, probe_left, probe_right
                )
                probe_seconds = time.perf_counter() - probe_started
                if warm_objective - probe_objective <= cfg.tol * max(
                    1.0, abs(warm_objective)
                ):
                    return LoliIrResult(
                        matrix=probe_left @ probe_right.T,
                        left=probe_left,
                        right=probe_right,
                        objective_history=np.array(
                            [warm_objective, probe_objective]
                        ),
                        iterations=1,
                        converged=True,
                        sweep_seconds=np.array([probe_seconds]),
                        inner_iterations=np.array([inner], dtype=int),
                        solve_seconds=time.perf_counter() - started,
                        warm_started=True,
                    )

        history: List[float] = [self._objective(compiled, left, right)]
        sweep_seconds: List[float] = []
        inner_iterations: List[int] = []
        converged = False
        iterations = 0
        # Iterate from two sweeps back — the base point of the extrapolation
        # direction (see _extrapolate for why it spans two sweeps).
        older_left: Optional[np.ndarray] = None
        older_right: Optional[np.ndarray] = None
        sweep = self._sweep_gram if cfg.method == "gram" else self._sweep_cg
        for iterations in range(1, cfg.outer_iterations + 1):
            sweep_started = time.perf_counter()
            new_left, new_right, inner = sweep(compiled, left, right)
            objective = self._objective(compiled, new_left, new_right)
            if cfg.accelerate and older_left is not None:
                new_left, new_right, objective = self._extrapolate(
                    compiled, older_left, older_right,
                    new_left, new_right, objective,
                )
            older_left, older_right = left, right
            left, right = new_left, new_right
            sweep_seconds.append(time.perf_counter() - sweep_started)
            inner_iterations.append(inner)
            history.append(objective)
            previous = history[-2]
            if previous - objective <= cfg.tol * max(1.0, abs(previous)):
                converged = True
                break

        return LoliIrResult(
            matrix=left @ right.T,
            left=left,
            right=right,
            objective_history=np.array(history),
            iterations=iterations,
            converged=converged,
            sweep_seconds=np.array(sweep_seconds),
            inner_iterations=np.array(inner_iterations, dtype=int),
            solve_seconds=time.perf_counter() - started,
            warm_started=False,
        )

    # ------------------------------------------------------------------
    # objective pieces
    # ------------------------------------------------------------------
    def _residual_operator(
        self, compiled: _CompiledProblem, estimate: np.ndarray
    ) -> np.ndarray:
        """``S(X̂)``: the PSD part of d(objective)/dX̂ (without the rhs)."""
        cfg = self.config
        out = cfg.observed_weight * np.where(compiled.observed_mask, estimate, 0.0)
        if compiled.lrr_target is not None:
            out = out + cfg.lrr_weight * estimate
        if compiled.continuity_weights is not None:
            weighted = compiled.continuity_weights * compiled.apply_g(estimate)
            out = out + cfg.continuity_weight * compiled.apply_gt(
                compiled.continuity_weights * weighted
            )
        if compiled.similarity_weights is not None:
            weighted = compiled.similarity_weights * compiled.apply_h(estimate)
            out = out + cfg.similarity_weight * compiled.apply_ht(
                compiled.similarity_weights * weighted
            )
        return out

    def _objective(
        self, compiled: _CompiledProblem, left: np.ndarray, right: np.ndarray
    ) -> float:
        cfg = self.config
        estimate = left @ right.T

        def sumsq(array: np.ndarray) -> float:
            # Accumulate in float64 even for float32 solves, so the
            # convergence test is not at the mercy of single-precision
            # reduction error.
            return float(np.sum(np.square(array, dtype=np.float64)))

        value = cfg.lam * (sumsq(left) + sumsq(right))
        residual = np.where(
            compiled.observed_mask, estimate - compiled.observed_values, 0.0
        )
        value += cfg.observed_weight * sumsq(residual)
        if compiled.lrr_target is not None:
            value += cfg.lrr_weight * sumsq(estimate - compiled.lrr_target)
        if compiled.continuity_weights is not None:
            value += cfg.continuity_weight * sumsq(
                compiled.continuity_weights * compiled.apply_g(estimate)
            )
        if compiled.similarity_weights is not None:
            value += cfg.similarity_weight * sumsq(
                compiled.similarity_weights * compiled.apply_h(estimate)
            )
        return value

    def _extrapolate(
        self,
        compiled: _CompiledProblem,
        previous_left: np.ndarray,
        previous_right: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        objective: float,
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Greedy safeguarded extrapolation along the two-sweep direction.

        Probes ``x + β(x − x_older)`` for β = 1, 2, 4, … and keeps the best
        strictly-improving candidate. ``x_older`` is the iterate from *two*
        sweeps back, so the direction spans two applications of the
        alternating map — the squared map. That matters: L/R alternation
        introduces an odd/even zigzag in the error, and the squared-map
        direction cancels it (the single-sweep direction measurably slows
        small-link-count deployments). Rejected candidates leave the iterate
        untouched, so the objective stays monotone whatever the local
        geometry.
        """
        delta_left = left - previous_left
        delta_right = right - previous_right
        beta = 1.0
        while beta <= 1024.0:
            candidate_left = left + beta * delta_left
            candidate_right = right + beta * delta_right
            candidate = self._objective(compiled, candidate_left, candidate_right)
            if candidate >= objective:
                break
            left, right, objective = candidate_left, candidate_right, candidate
            beta *= 2.0
        return left, right, objective

    # ------------------------------------------------------------------
    # "gram" method: closed-form k×k rows + preconditioned CG coupling
    # ------------------------------------------------------------------
    def _sweep_gram(
        self, compiled: _CompiledProblem, left: np.ndarray, right: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        left, inner_left = self._solve_left_gram(compiled, left, right)
        right, inner_right = self._solve_right_gram(compiled, left, right)
        return left, right, inner_left + inner_right

    def _solve_left_gram(
        self, compiled: _CompiledProblem, left: np.ndarray, right: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        """L-step: per-link ``k×k`` normal equations; H couples link rows."""
        cfg = self.config
        links = compiled.shape[0]
        k = right.shape[1]
        dtype = compiled.dtype
        right_outer = _outer_rows(right)  # (cells, k*k)

        shared = cfg.lam * np.eye(k, dtype=dtype)
        if compiled.lrr_target is not None:
            shared = shared + cfg.lrr_weight * (right.T @ right)
        blocks = cfg.observed_weight * (compiled.mask_float @ right_outer)
        blocks = blocks + shared.ravel()
        if compiled.continuity_weights_sq is not None:
            pair_rows = compiled.g_gather(right)  # v_p = Rᵀ g_p, (P, k)
            blocks = blocks + cfg.continuity_weight * (
                compiled.continuity_weights_sq @ _outer_rows(pair_rows)
            )
        blocks = blocks.reshape(links, k, k)
        rhs = compiled.rhs @ right

        if compiled.similarity_weights_sq is None:
            return _solve_blocks(blocks, rhs), 0

        # Similarity couples link rows: S_q = Σ_j w²_{qj} r_j r_jᵀ.
        coupling_blocks = (compiled.similarity_weights_sq @ right_outer).reshape(
            -1, k, k
        )

        def operator(candidate: np.ndarray) -> np.ndarray:
            out = (blocks @ candidate[:, :, None])[:, :, 0]
            pair_rows = compiled.apply_h(candidate)  # (Q, k)
            weighted = (coupling_blocks @ pair_rows[:, :, None])[:, :, 0]
            return out + cfg.similarity_weight * compiled.apply_ht(weighted)

        direct = compiled.similarity_direct()
        if direct is not None:
            solution, inner = direct.solve(
                operator,
                blocks,
                coupling_blocks,
                cfg.similarity_weight,
                rhs,
                x0=left,
                tol=self._inner_tol(rhs),
                max_iter=cfg.cg_max_iter,
            )
            return solution.astype(dtype, copy=False), inner

        preconditioner_blocks = blocks + cfg.similarity_weight * (
            compiled.h_sq_diag(coupling_blocks).reshape(links, k, k)
        )
        return self._coupled_solve(operator, rhs, preconditioner_blocks, x0=left)

    def _solve_right_gram(
        self, compiled: _CompiledProblem, left: np.ndarray, right: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        """R-step: per-cell ``k×k`` normal equations; G couples cell rows."""
        cfg = self.config
        cells = compiled.shape[1]
        k = left.shape[1]
        dtype = compiled.dtype
        left_outer = _outer_rows(left)  # (links, k*k)

        shared = cfg.lam * np.eye(k, dtype=dtype)
        if compiled.lrr_target is not None:
            shared = shared + cfg.lrr_weight * (left.T @ left)
        blocks = cfg.observed_weight * (compiled.mask_float.T @ left_outer)
        blocks = blocks + shared.ravel()
        if compiled.similarity_weights_sq is not None:
            pair_rows = compiled.apply_h(left)  # m_q = (H L)_q, (Q, k)
            blocks = blocks + cfg.similarity_weight * (
                compiled.similarity_weights_sq.T @ _outer_rows(pair_rows)
            )
        blocks = blocks.reshape(cells, k, k)
        rhs = compiled.rhs.T @ left

        if compiled.continuity_weights_sq is None:
            return _solve_blocks(blocks, rhs), 0

        # Continuity couples cell rows: C_p = Σ_i w²_{ip} ℓ_i ℓ_iᵀ.
        coupling_blocks = (compiled.continuity_weights_sq.T @ left_outer).reshape(
            -1, k, k
        )

        def operator(candidate: np.ndarray) -> np.ndarray:
            out = (blocks @ candidate[:, :, None])[:, :, 0]
            pair_rows = compiled.g_gather(candidate)  # (P, k)
            weighted = (coupling_blocks @ pair_rows[:, :, None])[:, :, 0]
            return out + cfg.continuity_weight * compiled.g_scatter(weighted)

        direct = compiled.continuity_direct()
        if direct is not None:
            solution, inner = direct.solve(
                operator,
                blocks,
                coupling_blocks,
                cfg.continuity_weight,
                rhs,
                x0=right,
                tol=self._inner_tol(rhs),
                max_iter=cfg.cg_max_iter,
            )
            return solution.astype(dtype, copy=False), inner

        preconditioner_blocks = blocks + cfg.continuity_weight * (
            compiled.g_sq_diag(coupling_blocks).reshape(cells, k, k)
        )
        return self._coupled_solve(operator, rhs, preconditioner_blocks, x0=right)

    def _inner_tol(self, rhs: np.ndarray) -> float:
        """Inner tolerance, clamped to the precision floor: float32 cannot
        reach the float64 default, so stop there instead of spinning."""
        return max(self.config.cg_tol, 10.0 * float(np.finfo(rhs.dtype).eps))

    def _coupled_solve(
        self,
        operator: Callable[[np.ndarray], np.ndarray],
        rhs: np.ndarray,
        preconditioner_blocks: np.ndarray,
        *,
        x0: np.ndarray,
    ) -> Tuple[np.ndarray, int]:
        """Block-Cholesky-preconditioned CG for a coupled half-step."""
        cfg = self.config
        chol = np.linalg.cholesky(preconditioner_blocks)
        chol_inv = np.linalg.inv(chol)  # P⁻¹ = L⁻ᵀ L⁻¹ per block
        inv_blocks = chol_inv.transpose(0, 2, 1) @ chol_inv

        def preconditioner(residual: np.ndarray) -> np.ndarray:
            return (inv_blocks @ residual[:, :, None])[:, :, 0]

        tol = self._inner_tol(rhs)
        result = preconditioned_conjugate_gradient(
            operator,
            rhs,
            preconditioner=preconditioner,
            x0=x0,
            tol=tol,
            max_iter=cfg.cg_max_iter,
        )
        return result.solution, result.iterations

    # ------------------------------------------------------------------
    # "cg" method: the original matrix-free half-steps (reference)
    # ------------------------------------------------------------------
    def _sweep_cg(
        self, compiled: _CompiledProblem, left: np.ndarray, right: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        cfg = self.config

        def left_operator(candidate: np.ndarray) -> np.ndarray:
            return cfg.lam * candidate + self._residual_operator(
                compiled, candidate @ right.T
            ) @ right

        left_result = conjugate_gradient(
            left_operator,
            compiled.rhs @ right,
            x0=left,
            tol=cfg.cg_tol,
            max_iter=cfg.cg_max_iter,
        )
        left = left_result.solution

        def right_operator(candidate: np.ndarray) -> np.ndarray:
            return cfg.lam * candidate + self._residual_operator(
                compiled, left @ candidate.T
            ).T @ left

        right_result = conjugate_gradient(
            right_operator,
            compiled.rhs.T @ left,
            x0=right,
            tol=cfg.cg_tol,
            max_iter=cfg.cg_max_iter,
        )
        return left, right_result.solution, (
            left_result.iterations + right_result.iterations
        )

    # ------------------------------------------------------------------
    # initialization
    # ------------------------------------------------------------------
    def _initial_matrix(self, problem: LoliIrProblem) -> np.ndarray:
        if problem.lrr_target is not None:
            start = np.array(problem.lrr_target, copy=True)
            start[problem.observed_mask] = problem.observed_values[
                problem.observed_mask
            ]
            return start
        return mean_fill(problem.observed_values, problem.observed_mask)


def _solve_blocks(blocks: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve the decoupled per-row ``k×k`` normal equations closed-form.

    When every row shares the same block — uniform observation weighting and
    uniform (or absent) smoothness gates — one factorization serves all rows;
    otherwise the systems are solved in a single batched dense call.
    """
    if len(blocks) > 1 and np.array_equiv(blocks, blocks[0]):
        return np.linalg.solve(blocks[0], rhs.T).T
    return np.linalg.solve(blocks, rhs[:, :, None])[:, :, 0]
