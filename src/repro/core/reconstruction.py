"""High-level fingerprint reconstruction: the full TafLoc update step.

:class:`Reconstructor` is built once from the *initial* full survey — it
learns everything that is stable over time (reference locations, the LRR
correlation ``Z``, the distortion masks, the smoothness operators) — and is
then invoked at any later day with nothing but a fresh empty-room calibration
and fresh measurements at the ``n`` reference locations. It assembles the
LoLi-IR problem and returns the reconstructed fingerprint matrix.

This is the object a downstream user interacts with when they want the
paper's contribution without the full pipeline (which additionally owns
matching and the database).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.distortion import DistortionProfile, build_distortion_profile
from repro.core.fingerprint import FingerprintMatrix
from repro.core.loli_ir import LoliIrConfig, LoliIrProblem, LoliIrResult, LoliIrSolver
from repro.core.lrr import LrrConfig, LrrModel, fit_lrr
from repro.core.operators import continuity_operator, similarity_operator
from repro.core.reference import ReferenceSelection, select_references
from repro.sim.deployment import Deployment
from repro.util.rng import RandomState
from repro.util.validation import check_matrix


@dataclass(frozen=True)
class ReconstructionConfig:
    """Configuration of the reconstruction scheme.

    Attributes:
        reference_count: Number of reference locations ``n`` (paper: 10).
        reference_strategy: Column-selection strategy (paper: maximum
            linearly independent columns → ``"pivoted_qr"``).
        undistorted_threshold_db / distorted_threshold_db: Entry
            classification thresholds (see :mod:`repro.core.distortion`).
        lrr: LRR fit configuration.
        solver: LoLi-IR configuration.
        use_lrr / use_smoothness: Ablation switches for the objective terms.
        warm_start: Seed each update's LoLi-IR factors from the previous
            update's solution, skipping the SVD initialization. Pays off in
            a high-frequency refresh loop (hours between updates), where
            consecutive problems differ by tiny drift and the old factors
            sit next to the new optimum; with weeks between updates the
            fresh LRR-transfer initialization is the better start, so this
            defaults to off.
    """

    reference_count: int = 10
    reference_strategy: str = "pivoted_qr"
    undistorted_threshold_db: float = 1.0
    distorted_threshold_db: float = 3.0
    lrr: LrrConfig = field(default_factory=LrrConfig)
    solver: LoliIrConfig = field(default_factory=LoliIrConfig)
    use_lrr: bool = True
    use_smoothness: bool = True
    warm_start: bool = False

    def __post_init__(self) -> None:
        if self.reference_count < 1:
            raise ValueError(
                f"reference_count must be >= 1, got {self.reference_count}"
            )


@dataclass(frozen=True)
class ReconstructionReport:
    """A reconstructed fingerprint matrix plus solve diagnostics."""

    fingerprint: FingerprintMatrix
    solver_result: LoliIrResult
    lrr_residual: float
    observed_fraction: float

    @property
    def solve_seconds(self) -> float:
        """Wall time of the LoLi-IR solve — the compute part of the paper's
        Fig. 4 update cost (the labor part lives in eval.costmodel)."""
        return self.solver_result.solve_seconds

    @property
    def sweep_seconds(self) -> np.ndarray:
        """Per-sweep convergence cost of the solve."""
        return self.solver_result.sweep_seconds


class Reconstructor:
    """Learns the time-stable structure once; reconstructs cheaply forever.

    Args:
        deployment: The deployment geometry (grids, link adjacency).
        initial: The day-0 full survey as a :class:`FingerprintMatrix`.
        config: Scheme configuration.
        seed: Randomness for stochastic reference strategies.
    """

    def __init__(
        self,
        deployment: Deployment,
        initial: FingerprintMatrix,
        config: Optional[ReconstructionConfig] = None,
        *,
        seed: RandomState = 0,
    ) -> None:
        config = config if config is not None else ReconstructionConfig()
        if initial.cell_count != deployment.cell_count:
            raise ValueError(
                f"survey covers {initial.cell_count} cells, deployment has "
                f"{deployment.cell_count}"
            )
        if initial.link_count != deployment.link_count:
            raise ValueError(
                f"survey covers {initial.link_count} links, deployment has "
                f"{deployment.link_count}"
            )
        self.deployment = deployment
        self.initial = initial
        self.config = config

        n = min(config.reference_count, initial.cell_count)
        self.references: ReferenceSelection = select_references(
            initial.values, n, strategy=config.reference_strategy, seed=seed
        )
        self.lrr_model: LrrModel = fit_lrr(
            initial.values, self.references.cells, config.lrr
        )
        self.profile: DistortionProfile = build_distortion_profile(
            initial,
            undistorted_threshold_db=config.undistorted_threshold_db,
            distorted_threshold_db=config.distorted_threshold_db,
        )
        self._continuity_op = continuity_operator(deployment.grid)
        self._similarity_op = similarity_operator(deployment)
        self._continuity_weights = self._build_continuity_weights()
        self._similarity_weights = self._build_similarity_weights()
        self._solver = LoliIrSolver(config.solver)
        self._warm_factors = None

    # ------------------------------------------------------------------
    # the cheap update
    # ------------------------------------------------------------------
    def reconstruct(
        self,
        reference_matrix: np.ndarray,
        empty_rss: np.ndarray,
        *,
        day: float = 0.0,
    ) -> ReconstructionReport:
        """Reconstruct the full fingerprint matrix from cheap measurements.

        Args:
            reference_matrix: Fresh RSS at the reference cells, columns in
                :attr:`references` order; shape ``(links, n)``.
            empty_rss: Fresh empty-room calibration, shape ``(links,)``.
            day: Day stamp recorded on the produced fingerprint.
        """
        reference_matrix = check_matrix("reference_matrix", reference_matrix)
        empty_rss = np.asarray(empty_rss, dtype=float)
        if reference_matrix.shape != (
            self.initial.link_count,
            self.references.count,
        ):
            raise ValueError(
                f"reference_matrix shape {reference_matrix.shape} must be "
                f"({self.initial.link_count}, {self.references.count})"
            )
        if empty_rss.shape != (self.initial.link_count,):
            raise ValueError(
                f"empty_rss shape {empty_rss.shape} must be "
                f"({self.initial.link_count},)"
            )

        problem = self._build_problem(reference_matrix, empty_rss)
        result = self._solver.solve(problem, warm_factors=self._warm_factors)
        if self.config.warm_start:
            self._warm_factors = (result.left, result.right)
        matrix = np.asarray(result.matrix, dtype=float)
        # The reference columns were just measured; trust them exactly.
        matrix[:, self.references.cells] = reference_matrix
        fingerprint = FingerprintMatrix(
            values=matrix, empty_rss=empty_rss, day=day, source="reconstruction"
        )
        return ReconstructionReport(
            fingerprint=fingerprint,
            solver_result=result,
            lrr_residual=self.lrr_model.training_residual,
            observed_fraction=float(np.mean(problem.observed_mask)),
        )

    # ------------------------------------------------------------------
    # problem assembly
    # ------------------------------------------------------------------
    def _build_problem(
        self, reference_matrix: np.ndarray, empty_rss: np.ndarray
    ) -> LoliIrProblem:
        cfg = self.config
        observed_mask = np.array(self.profile.undistorted, copy=True)
        observed_values = self.profile.known_entries(empty_rss)
        # The freshly measured reference columns are fully observed.
        observed_mask[:, self.references.cells] = True
        observed_values[:, self.references.cells] = reference_matrix

        lrr_target: Optional[np.ndarray] = None
        if cfg.use_lrr:
            lrr_target = self.lrr_model.predict(reference_matrix)

        if cfg.use_smoothness:
            return LoliIrProblem(
                observed_mask=observed_mask,
                observed_values=observed_values,
                lrr_target=lrr_target,
                continuity_op=self._continuity_op,
                continuity_weights=self._continuity_weights,
                similarity_op=self._similarity_op,
                similarity_weights=self._similarity_weights,
            )
        return LoliIrProblem(
            observed_mask=observed_mask,
            observed_values=observed_values,
            lrr_target=lrr_target,
        )

    def _build_continuity_weights(self) -> np.ndarray:
        """``W_g``: gate each adjacent-cell pair to links where both cells
        are largely distorted — only there does property iii apply."""
        mask = self.profile.largely_distorted
        g = self._continuity_op
        weights = np.zeros((mask.shape[0], g.shape[1]))
        for p in range(g.shape[1]):
            cells = np.flatnonzero(g[:, p])
            weights[:, p] = mask[:, cells[0]] & mask[:, cells[1]]
        return weights

    def _build_similarity_weights(self) -> np.ndarray:
        """``W_h``: gate each adjacent-link pair to cells where both links
        are largely distorted."""
        mask = self.profile.largely_distorted
        h = self._similarity_op
        weights = np.zeros((h.shape[0], mask.shape[1]))
        for p in range(h.shape[0]):
            links = np.flatnonzero(h[p])
            weights[p] = mask[links[0]] & mask[links[1]]
        return weights
