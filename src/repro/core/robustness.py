"""Fault tolerance: keep localizing when links die.

Long-lived deployments (the whole point of TafLoc) lose links — nodes
reboot, power bricks fail, APs get moved. This module provides the pieces a
deployment needs to degrade gracefully instead of silently mislocating:

* :func:`detect_dead_links` — flag links whose live readings are absent or
  frozen relative to the calibration.
* :func:`mask_fingerprint` — project a fingerprint matrix onto the healthy
  links, yielding a reduced matrix any matcher can consume.
* :func:`masked_matcher` — convenience: build a matcher of the requested
  kind on the healthy-link projection.

The accompanying tests measure how localization accuracy decays as links
are removed — the deployment-planning question "how much headroom do I
have?".
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.fingerprint import FingerprintMatrix
from repro.core.matching import (
    KnnMatcher,
    Matcher,
    NearestNeighborMatcher,
    ProbabilisticMatcher,
)
from repro.sim.geometry import Grid
from repro.util.validation import check_matrix


def detect_dead_links(
    frames: np.ndarray,
    empty_rss: np.ndarray,
    *,
    floor_dbm: float = -95.0,
    min_std_db: float = 1e-3,
    max_offset_db: float = 25.0,
) -> np.ndarray:
    """Boolean health mask per link (True = healthy) from recent frames.

    A link is declared dead when its readings are pinned at the noise floor,
    frozen (zero variance across frames — a stuck driver), or implausibly
    far from the calibration (antenna moved / cable loose).

    Args:
        frames: Recent live frames, shape ``(frames, links)``.
        empty_rss: The calibration vector the frames should resemble.
        floor_dbm: Readings at/below this are treated as "no signal".
        min_std_db: Variance below this (across >= 2 frames) means frozen.
        max_offset_db: Mean |deviation| from calibration beyond this means
            the link no longer measures the same channel.
    """
    array = check_matrix("frames", frames)
    empty = np.asarray(empty_rss, dtype=float)
    if empty.shape != (array.shape[1],):
        raise ValueError(
            f"empty_rss shape {empty.shape} does not match link count "
            f"{array.shape[1]}"
        )
    healthy = np.ones(array.shape[1], dtype=bool)
    healthy &= ~np.all(array <= floor_dbm, axis=0)
    if array.shape[0] >= 2:
        healthy &= array.std(axis=0) >= min_std_db
    healthy &= np.abs(array - empty).mean(axis=0) <= max_offset_db
    return healthy


def mask_fingerprint(
    fingerprint: FingerprintMatrix, link_mask: Sequence[bool]
) -> FingerprintMatrix:
    """Project a fingerprint matrix onto the healthy links.

    Args:
        fingerprint: The full matrix.
        link_mask: Boolean per-link health mask (True = keep).
    Returns:
        A reduced :class:`FingerprintMatrix` over the surviving links.
    """
    mask = np.asarray(link_mask, dtype=bool)
    if mask.shape != (fingerprint.link_count,):
        raise ValueError(
            f"link_mask shape {mask.shape} must be ({fingerprint.link_count},)"
        )
    if not mask.any():
        raise ValueError("all links are masked out; nothing to match against")
    return FingerprintMatrix(
        values=fingerprint.values[mask],
        empty_rss=fingerprint.empty_rss[mask],
        day=fingerprint.day,
        source=f"{fingerprint.source}+masked",
    )


def mask_live_vector(
    live_rss: np.ndarray, link_mask: Sequence[bool]
) -> np.ndarray:
    """Project a live vector onto the healthy links (same order as the
    masked fingerprint)."""
    vector = np.asarray(live_rss, dtype=float)
    mask = np.asarray(link_mask, dtype=bool)
    if vector.shape != mask.shape:
        raise ValueError(
            f"live vector shape {vector.shape} must match mask shape "
            f"{mask.shape}"
        )
    return vector[mask]


def masked_matcher(
    fingerprint: FingerprintMatrix,
    grid: Grid,
    link_mask: Sequence[bool],
    *,
    kind: str = "knn",
    k: int = 3,
    sigma_db: float = 2.0,
    prior: Optional[np.ndarray] = None,
) -> Matcher:
    """Build a matcher over the healthy-link projection of a fingerprint.

    The returned matcher expects *masked* live vectors (use
    :func:`mask_live_vector` on each frame).
    """
    reduced = mask_fingerprint(fingerprint, link_mask)
    if kind == "nn":
        return NearestNeighborMatcher(reduced, grid)
    if kind == "knn":
        return KnnMatcher(reduced, grid, k=k)
    if kind == "probabilistic":
        return ProbabilisticMatcher(reduced, grid, sigma_db=sigma_db, prior=prior)
    raise ValueError(f"kind must be nn/knn/probabilistic, got {kind!r}")
