"""TafLoc: the deployable end-to-end system.

Lifecycle (mirrors the paper's deployment story):

1. **Commission** (:meth:`TafLoc.commission`) — run the one expensive full
   survey, learn the time-stable structure (reference locations, LRR
   correlation, distortion masks).
2. **Update** (:meth:`TafLoc.update`) — at any later day, collect only the
   empty-room calibration and the ``n`` reference cells, reconstruct the
   whole matrix with LoLi-IR, and append it to the database. Returns an
   :class:`UpdateReport` with the cost accounting that feeds Fig. 4.
3. **Localize** (:meth:`TafLoc.localize` / :meth:`TafLoc.localize_trace`) —
   match live RSS vectors against the freshest fingerprint epoch.

The class is written against the abstract measurement interface of
:class:`~repro.sim.collector.RssCollector`, so swapping the simulator for a
real testbed log only means implementing that interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.fingerprint import FingerprintDatabase, FingerprintMatrix
from repro.core.matching import (
    BatchMatchResult,
    KnnMatcher,
    Matcher,
    MatchResult,
    NearestNeighborMatcher,
    ProbabilisticMatcher,
)
from repro.core.reconstruction import (
    ReconstructionConfig,
    ReconstructionReport,
    Reconstructor,
)
from repro.sim.collector import RssCollector
from repro.sim.trace import LiveTrace
from repro.util.rng import RandomState


@dataclass(frozen=True)
class TafLocConfig:
    """End-to-end system configuration.

    Attributes:
        reconstruction: The reconstruction-scheme configuration.
        matcher: Matching rule: ``"nn"``, ``"knn"`` or ``"probabilistic"``.
        knn_k: K for the KNN matcher.
        matcher_sigma_db: Noise scale for the probabilistic matcher.
    """

    reconstruction: ReconstructionConfig = field(
        default_factory=ReconstructionConfig
    )
    matcher: str = "knn"
    knn_k: int = 3
    matcher_sigma_db: float = 2.0

    def __post_init__(self) -> None:
        if self.matcher not in ("nn", "knn", "probabilistic"):
            raise ValueError(
                f"matcher must be nn/knn/probabilistic, got {self.matcher!r}"
            )


@dataclass(frozen=True)
class UpdateReport:
    """Outcome and cost of one fingerprint update.

    Attributes:
        day: When the update ran.
        reconstruction: The solver report.
        samples_taken: RSS samples spent on this update.
        seconds_spent: Person-time spent walking to reference cells.
        full_survey_seconds: What a from-scratch survey would have cost under
            the same protocol — the Fig. 4 comparison.
    """

    day: float
    reconstruction: ReconstructionReport
    samples_taken: int
    seconds_spent: float
    full_survey_seconds: float

    @property
    def savings_factor(self) -> float:
        """How many times cheaper the TafLoc update was."""
        if self.seconds_spent == 0:
            return float("inf")
        return self.full_survey_seconds / self.seconds_spent


class TafLoc:
    """The TafLoc system bound to a measurement source."""

    def __init__(
        self,
        collector: RssCollector,
        config: Optional[TafLocConfig] = None,
        *,
        seed: RandomState = 0,
    ) -> None:
        self.collector = collector
        self.config = config if config is not None else TafLocConfig()
        self._seed = seed
        self.database = FingerprintDatabase()
        self.reconstructor: Optional[Reconstructor] = None
        self.update_reports: List[UpdateReport] = []
        # Matchers cached per resolved epoch; see matcher_for_day().
        self._matcher_cache: Dict[int, Matcher] = {}
        self._matcher_cache_version: int = -1

    @property
    def deployment(self):
        return self.collector.scenario.deployment

    @property
    def commissioned(self) -> bool:
        return self.reconstructor is not None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def commission(self, day: float = 0.0) -> FingerprintMatrix:
        """Run the one full survey and learn the time-stable structure."""
        result = self.collector.collect_full_survey(day)
        fingerprint = FingerprintMatrix(
            values=result.survey.matrix,
            empty_rss=result.survey.empty_rss,
            day=day,
            source="survey",
        )
        self.database.add(fingerprint)
        self.reconstructor = Reconstructor(
            self.deployment,
            fingerprint,
            self.config.reconstruction,
            seed=self._seed,
        )
        return fingerprint

    def update(self, day: float) -> UpdateReport:
        """Cheap fingerprint refresh at ``day`` (the paper's contribution)."""
        reconstructor = self._require_commissioned()
        empty = self.collector.collect_empty_room(day)
        survey = self.collector.collect_survey(day, reconstructor.references.cells)
        report = reconstructor.reconstruct(
            survey.survey.matrix, empty, day=day
        )
        self.database.add(report.fingerprint)
        protocol = self.collector.protocol
        update_report = UpdateReport(
            day=day,
            reconstruction=report,
            samples_taken=survey.samples_taken,
            seconds_spent=survey.seconds_spent,
            full_survey_seconds=protocol.survey_seconds(
                self.deployment.cell_count
            ),
        )
        self.update_reports.append(update_report)
        return update_report

    # ------------------------------------------------------------------
    # localization
    # ------------------------------------------------------------------
    def matcher_for_day(self, day: float, *, refresh: bool = False) -> Matcher:
        """The configured matcher on the freshest epoch for ``day``, cached.

        Matchers are cached per resolved epoch and invalidated whenever
        :meth:`FingerprintDatabase.add` bumps the database version (a new
        epoch can change which fingerprint serves a given day), so the
        steady-state query path — many localizations against the same
        epoch — allocates nothing per call. ``refresh=True`` forces a
        rebuild (the pre-cache behavior, kept for benchmarking the rebuild
        cost and for callers that mutate matcher state).

        The lookup tolerates a concurrent :meth:`update` (e.g. the serving
        layer's background refresh scheduler appending an epoch while query
        threads run): a query never sees a half-built cache entry — it
        either reuses a complete matcher or builds its own — at worst
        rebuilding one matcher redundantly around the epoch flip.
        """
        if self._matcher_cache_version != self.database.version:
            self._matcher_cache.clear()
            self._matcher_cache_version = self.database.version
        fingerprint = self.database.at(day)
        # Epochs are immutable and stay referenced by the database for its
        # lifetime, so id() is a stable key within one cache generation.
        key = id(fingerprint)
        matcher = None if refresh else self._matcher_cache.get(key)
        if matcher is None:
            matcher = self._build_matcher(fingerprint)
            self._matcher_cache[key] = matcher
        return matcher

    def _build_matcher(self, fingerprint) -> Matcher:
        grid = self.deployment.grid
        if self.config.matcher == "nn":
            return NearestNeighborMatcher(fingerprint, grid)
        if self.config.matcher == "knn":
            return KnnMatcher(fingerprint, grid, k=self.config.knn_k)
        return ProbabilisticMatcher(
            fingerprint, grid, sigma_db=self.config.matcher_sigma_db
        )

    def localize(self, live_rss: np.ndarray, day: float) -> MatchResult:
        """Localize one live RSS vector measured at ``day``."""
        self._require_commissioned()
        return self.matcher_for_day(day).match(live_rss)

    def localize_batch(self, frames: np.ndarray, day: float) -> BatchMatchResult:
        """Localize a ``(frames, links)`` RSS batch measured at ``day``.

        The batch analogue of :meth:`localize` for callers (e.g. the
        serving layer) that hold raw frame arrays rather than a
        :class:`~repro.sim.trace.LiveTrace`.
        """
        self._require_commissioned()
        return self.matcher_for_day(day).match_batch(frames)

    def localize_trace(self, trace: LiveTrace) -> BatchMatchResult:
        """Localize every frame of a trace against its day's fingerprints.

        The whole trace is scored in one :meth:`Matcher.match_batch` pass;
        the result behaves as a sequence of per-frame
        :class:`~repro.core.matching.MatchResult` objects while exposing the
        columnar arrays for batch consumers.
        """
        self._require_commissioned()
        matcher = self.matcher_for_day(trace.day)
        return matcher.match_batch(trace.rss)

    def localization_errors(self, trace: LiveTrace) -> np.ndarray:
        """Per-frame Euclidean error (m) against the trace's ground truth."""
        if trace.true_positions is None:
            raise ValueError("trace carries no ground-truth positions")
        results = self.localize_trace(trace)
        deltas = results.positions - trace.true_positions
        return np.hypot(deltas[:, 0], deltas[:, 1])

    # ------------------------------------------------------------------
    def _require_commissioned(self) -> Reconstructor:
        if self.reconstructor is None:
            raise RuntimeError(
                "TafLoc is not commissioned yet; call commission() first"
            )
        return self.reconstructor
