"""Presence detection: is anyone in the monitored area at all?

Both of the paper's motivating applications start with a detection
question — an elderly-care system must notice the resident before tracking
them, and an intruder alarm must first decide whether anyone is there.
Detection also gates the localization pipeline in practice: matching an
empty-room frame against the fingerprint database yields a meaningless
"location".

:class:`PresenceDetector` thresholds a per-frame *dynamics score* — the
aggregate deviation of the live RSS vector from the empty-room calibration —
calibrated on empty-room frames so the threshold adapts to each
deployment's noise level. Because the calibration is exactly the same
empty-room measurement TafLoc's update step already needs, keeping the
detector fresh costs nothing extra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.util.validation import check_matrix, check_positive


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of scoring one live frame.

    Attributes:
        present: Whether the score exceeded the threshold.
        score: The frame's dynamics score (dB, aggregated over links).
        threshold: The threshold in force when the frame was scored.
    """

    present: bool
    score: float
    threshold: float


class PresenceDetector:
    """Empty-room-calibrated presence detector.

    The dynamics score of a frame is ``aggregate(|rss - empty_rss|)`` where
    the aggregate is the sum (default), mean or max across links; the
    detection threshold is ``mean + k * std`` of the score over the
    calibration frames.

    Args:
        calibration_frames: Empty-room RSS frames, shape
            ``(frames, links)``; at least two frames are required to
            estimate the score spread.
        k: Threshold stringency in calibration standard deviations. Larger
            values trade missed detections for fewer false alarms.
        aggregate: ``"sum"``, ``"mean"`` or ``"max"`` across links.
    """

    def __init__(
        self,
        calibration_frames: np.ndarray,
        *,
        k: float = 4.0,
        aggregate: str = "sum",
    ) -> None:
        frames = check_matrix("calibration_frames", calibration_frames)
        if frames.shape[0] < 2:
            raise ValueError(
                f"need at least 2 calibration frames, got {frames.shape[0]}"
            )
        check_positive("k", k)
        if aggregate not in ("sum", "mean", "max"):
            raise ValueError(
                f"aggregate must be sum/mean/max, got {aggregate!r}"
            )
        self.k = k
        self.aggregate = aggregate
        self._empty_rss = frames.mean(axis=0)
        scores = np.array([self._score_against(f, self._empty_rss) for f in frames])
        self._calibration_mean = float(scores.mean())
        self._calibration_std = float(scores.std())
        self.threshold = self._calibration_mean + k * self._calibration_std

    @property
    def empty_rss(self) -> np.ndarray:
        """The empty-room reference the detector scores against."""
        return self._empty_rss

    @property
    def link_count(self) -> int:
        return self._empty_rss.shape[0]

    def recalibrate(self, calibration_frames: np.ndarray) -> None:
        """Re-derive the reference and threshold from fresh empty frames.

        Call this whenever the TafLoc update collects its empty-room
        calibration; drift otherwise inflates the scores of empty frames
        until they cross the stale threshold.
        """
        fresh = PresenceDetector(
            calibration_frames, k=self.k, aggregate=self.aggregate
        )
        if fresh.link_count != self.link_count:
            raise ValueError(
                f"calibration covers {fresh.link_count} links, detector has "
                f"{self.link_count}"
            )
        self._empty_rss = fresh._empty_rss
        self._calibration_mean = fresh._calibration_mean
        self._calibration_std = fresh._calibration_std
        self.threshold = fresh.threshold

    def score(self, live_rss: np.ndarray) -> float:
        """Dynamics score of one live frame."""
        live = np.asarray(live_rss, dtype=float)
        if live.shape != self._empty_rss.shape:
            raise ValueError(
                f"live vector shape {live.shape} must be "
                f"{self._empty_rss.shape}"
            )
        return self._score_against(live, self._empty_rss)

    def detect(self, live_rss: np.ndarray) -> DetectionResult:
        """Score one frame and compare against the threshold."""
        value = self.score(live_rss)
        return DetectionResult(
            present=value > self.threshold, score=value, threshold=self.threshold
        )

    def detect_trace(self, frames: np.ndarray) -> Sequence[DetectionResult]:
        """Score every row of a ``(frames, links)`` array."""
        array = check_matrix("frames", frames)
        return [self.detect(frame) for frame in array]

    def _score_against(self, frame: np.ndarray, reference: np.ndarray) -> float:
        deviation = np.abs(frame - reference)
        if self.aggregate == "sum":
            return float(deviation.sum())
        if self.aggregate == "mean":
            return float(deviation.mean())
        return float(deviation.max())


@dataclass(frozen=True)
class RocPoint:
    """One operating point of a detector sweep."""

    k: float
    true_positive_rate: float
    false_positive_rate: float


def roc_sweep(
    empty_frames: np.ndarray,
    occupied_frames: np.ndarray,
    *,
    ks: Optional[Sequence[float]] = None,
    calibration_split: float = 0.5,
    aggregate: str = "sum",
) -> list:
    """Sweep the threshold stringency and report TPR/FPR at each point.

    The empty frames are split: the first part calibrates the detector, the
    held-out remainder measures the false-positive rate, so the ROC is not
    evaluated on the calibration data itself.

    Args:
        empty_frames: Empty-room frames, ``(n_empty, links)``.
        occupied_frames: Target-present frames, ``(n_occupied, links)``.
        ks: Stringency values to sweep (default 0.5 .. 8).
        calibration_split: Fraction of empty frames used for calibration.
        aggregate: Score aggregation across links.
    """
    empty = check_matrix("empty_frames", empty_frames)
    occupied = check_matrix("occupied_frames", occupied_frames)
    if not 0.0 < calibration_split < 1.0:
        raise ValueError(
            f"calibration_split must lie in (0, 1), got {calibration_split}"
        )
    split = max(2, int(calibration_split * empty.shape[0]))
    if split >= empty.shape[0]:
        raise ValueError(
            "not enough empty frames to both calibrate and evaluate "
            f"(got {empty.shape[0]})"
        )
    calibration, holdout = empty[:split], empty[split:]
    if ks is None:
        ks = (0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0)

    points = []
    for k in ks:
        detector = PresenceDetector(calibration, k=float(k), aggregate=aggregate)
        tpr = float(
            np.mean([detector.detect(f).present for f in occupied])
        )
        fpr = float(np.mean([detector.detect(f).present for f in holdout]))
        points.append(
            RocPoint(k=float(k), true_positive_rate=tpr, false_positive_rate=fpr)
        )
    return points
