"""TafLoc core: fingerprint-matrix reconstruction and localization.

The pieces follow the paper's section 2 directly:

* :mod:`repro.core.fingerprint` — the fingerprint matrix abstraction (Fig. 1).
* :mod:`repro.core.reference` — picking the n reference locations (property ii).
* :mod:`repro.core.lrr` — the low-rank-representation correlation matrix Z.
* :mod:`repro.core.distortion` — undistorted mask B / largely-distorted set D.
* :mod:`repro.core.operators` — continuity (G) and similarity (H) operators.
* :mod:`repro.core.completion` — plain rank-minimization completion (property i).
* :mod:`repro.core.loli_ir` — the LoLi-IR alternating solver.
* :mod:`repro.core.reconstruction` — the full objective, orchestrated.
* :mod:`repro.core.matching` — matching live RSS vectors Y against X.
* :mod:`repro.core.pipeline` — the deployable TafLoc system.
* :mod:`repro.core.tracking` — particle-filter tracking on top (extension).
"""

from repro.core.completion import soft_impute, svt_complete
from repro.core.detection import DetectionResult, PresenceDetector, roc_sweep
from repro.core.distortion import DistortionProfile, build_distortion_profile
from repro.core.fingerprint import FingerprintDatabase, FingerprintMatrix
from repro.core.loli_ir import LoliIrConfig, LoliIrResult, LoliIrSolver
from repro.core.lrr import LrrConfig, LrrModel, fit_lrr
from repro.core.matching import (
    KnnMatcher,
    Matcher,
    NearestNeighborMatcher,
    ProbabilisticMatcher,
)
from repro.core.multi_target import MultiTargetMatcher, MultiTargetResult, pairing_error
from repro.core.operators import continuity_operator, similarity_operator
from repro.core.pipeline import TafLoc, TafLocConfig, UpdateReport
from repro.core.reconstruction import ReconstructionConfig, Reconstructor
from repro.core.reference import (
    ReferenceSelection,
    select_references,
    select_references_greedy,
    select_references_kmeans,
    select_references_pivoted_qr,
    select_references_random,
)
from repro.core.robustness import (
    detect_dead_links,
    mask_fingerprint,
    mask_live_vector,
    masked_matcher,
)
from repro.core.tracking import ParticleFilterTracker, TrackerConfig

__all__ = [
    "DetectionResult",
    "DistortionProfile",
    "FingerprintDatabase",
    "FingerprintMatrix",
    "KnnMatcher",
    "LoliIrConfig",
    "LoliIrResult",
    "LoliIrSolver",
    "LrrConfig",
    "LrrModel",
    "Matcher",
    "MultiTargetMatcher",
    "MultiTargetResult",
    "NearestNeighborMatcher",
    "ParticleFilterTracker",
    "PresenceDetector",
    "ProbabilisticMatcher",
    "ReconstructionConfig",
    "Reconstructor",
    "ReferenceSelection",
    "TafLoc",
    "TafLocConfig",
    "TrackerConfig",
    "UpdateReport",
    "build_distortion_profile",
    "continuity_operator",
    "detect_dead_links",
    "fit_lrr",
    "mask_fingerprint",
    "mask_live_vector",
    "masked_matcher",
    "pairing_error",
    "roc_sweep",
    "select_references",
    "select_references_greedy",
    "select_references_kmeans",
    "select_references_pivoted_qr",
    "select_references_random",
    "similarity_operator",
    "soft_impute",
    "svt_complete",
]
