"""Plain low-rank matrix completion (the paper's property i, alone).

The paper's first observation is that the fingerprint matrix is approximately
low rank, so the masked entries can be "roughly reconstructed by
rank-minimization". These solvers implement exactly that rough baseline:

* :func:`svt_complete` — Singular Value Thresholding (Cai, Candès & Shen
  2010): iterate shrinkage of the singular values with projection onto the
  observed entries.
* :func:`soft_impute` — SoftImpute (Mazumder, Hastie & Tibshirani 2010):
  iterative fill-in with SVD shrinkage; more robust on noisy observations.

Inside TafLoc they serve two roles: warm start for the LoLi-IR factors and
the "rank-minimization only" arm of the objective ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.util.linalg import svd_shrink
from repro.util.validation import check_matrix, check_positive


@dataclass(frozen=True)
class CompletionResult:
    """Outcome of a matrix-completion solve.

    Attributes:
        matrix: The completed matrix estimate.
        rank: Numerical rank of the final iterate.
        iterations: Iterations performed.
        converged: Whether the relative-change tolerance was reached.
    """

    matrix: np.ndarray
    rank: int
    iterations: int
    converged: bool


def svt_complete(
    observed: np.ndarray,
    mask: np.ndarray,
    *,
    threshold: Optional[float] = None,
    step: float = 1.9,
    max_iter: int = 2000,
    tol: float = 1e-4,
) -> CompletionResult:
    """Singular Value Thresholding on ``P_Omega(X) = P_Omega(observed)``.

    Args:
        observed: Matrix with valid values wherever ``mask`` is True.
        mask: Boolean observation mask (True = known entry).
        threshold: Singular-value shrinkage threshold; defaults to the
            classical recommendation ``5 * sqrt(m * n)`` of Cai et al.
        step: Gradient step on the dual variable.
        max_iter: Iteration cap.
        tol: Relative change in the observed-entry residual for convergence.
    """
    observed, mask = _check_inputs(observed, mask)
    check_positive("step", step)
    if threshold is None:
        threshold = 5.0 * float(np.sqrt(np.prod(observed.shape)))
    check_positive("threshold", threshold)

    dual = np.zeros_like(observed)
    estimate = np.zeros_like(observed)
    rank = 0
    observed_norm = float(np.linalg.norm(observed[mask])) or 1.0
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        estimate, rank = svd_shrink(dual, threshold)
        residual = np.where(mask, observed - estimate, 0.0)
        dual = dual + step * residual
        if float(np.linalg.norm(residual[mask])) <= tol * observed_norm:
            converged = True
            break
    return CompletionResult(
        matrix=estimate, rank=rank, iterations=iterations, converged=converged
    )


def soft_impute(
    observed: np.ndarray,
    mask: np.ndarray,
    *,
    shrinkage: Optional[float] = None,
    max_iter: int = 300,
    tol: float = 1e-6,
) -> CompletionResult:
    """SoftImpute: alternate fill-in of missing entries and SVD shrinkage.

    More tolerant of observation noise than SVT because it never forces exact
    agreement on the observed entries.
    """
    observed, mask = _check_inputs(observed, mask)
    if shrinkage is None:
        # Shrink relative to the spectrum of the zero-filled observation.
        top = float(
            np.linalg.svd(np.where(mask, observed, 0.0), compute_uv=False)[0]
        )
        shrinkage = 0.05 * top
    check_positive("shrinkage", shrinkage, strict=False)

    estimate = np.zeros_like(observed)
    rank = 0
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        filled = np.where(mask, observed, estimate)
        updated, rank = svd_shrink(filled, shrinkage)
        change = float(np.linalg.norm(updated - estimate))
        scale = float(np.linalg.norm(estimate)) or 1.0
        estimate = updated
        if change <= tol * scale:
            converged = True
            break
    return CompletionResult(
        matrix=estimate, rank=rank, iterations=iterations, converged=converged
    )


def mean_fill(observed: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Fill unobserved entries with their row mean (fallback/warm start).

    Rows with no observed entries fall back to the global observed mean.
    """
    observed, mask = _check_inputs(observed, mask)
    filled = np.array(observed, dtype=float, copy=True)
    any_observed = mask.any()
    global_mean = float(observed[mask].mean()) if any_observed else 0.0
    for i in range(observed.shape[0]):
        row_mask = mask[i]
        fill_value = float(observed[i, row_mask].mean()) if row_mask.any() else global_mean
        filled[i, ~row_mask] = fill_value
    return filled


def _check_inputs(observed: np.ndarray, mask: np.ndarray):
    observed = check_matrix("observed", observed)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != observed.shape:
        raise ValueError(
            f"mask shape {mask.shape} does not match observed shape {observed.shape}"
        )
    return observed, mask
