"""Fingerprint-matrix abstraction (the paper's Fig. 1).

A fingerprint matrix ``X`` has one row per link and one column per location
grid cell: ``x_ij`` is the RSS of link ``i`` while the target stands in cell
``j``. :class:`FingerprintMatrix` wraps the array together with the
empty-room calibration it was measured against, since almost every operation
downstream (distortion detection, RTI, RASS) works on the *dip* relative to
the empty room rather than on absolute dBm.

:class:`FingerprintDatabase` versions the matrices over time: a survey or a
reconstruction appends an epoch, and localization always queries the freshest
epoch at or before the query day.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.util.linalg import effective_rank
from repro.util.validation import check_finite, check_matrix


@dataclass(frozen=True)
class FingerprintMatrix:
    """An immutable fingerprint matrix plus its calibration context.

    Attributes:
        values: RSS in dBm, shape ``(links, cells)``.
        empty_rss: Empty-room RSS per link at measurement time.
        day: Day offset at which the matrix is valid.
        source: Provenance tag: ``"survey"``, ``"reconstruction"``, ...
    """

    values: np.ndarray
    empty_rss: np.ndarray
    day: float = 0.0
    source: str = "survey"

    def __post_init__(self) -> None:
        values = check_finite("values", check_matrix("values", self.values))
        empty = check_finite("empty_rss", np.asarray(self.empty_rss, dtype=float))
        if empty.shape != (values.shape[0],):
            raise ValueError(
                f"empty_rss shape {empty.shape} does not match link count "
                f"{values.shape[0]}"
            )
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "empty_rss", empty)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def link_count(self) -> int:
        return self.values.shape[0]

    @property
    def cell_count(self) -> int:
        return self.values.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self.values.shape

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def dips(self) -> np.ndarray:
        """Attenuation matrix ``empty_rss[:, None] - values``.

        Positive entries mean the target at that cell *reduced* the link's
        RSS. This is the quantity whose structure properties (continuity
        along a link, similarity across adjacent links) the paper exploits.
        """
        return self.empty_rss[:, None] - self.values

    def column(self, cell: int) -> np.ndarray:
        if not 0 <= cell < self.cell_count:
            raise IndexError(f"cell {cell} out of range [0, {self.cell_count})")
        return self.values[:, cell]

    def columns(self, cells: np.ndarray) -> np.ndarray:
        return self.values[:, np.asarray(cells, dtype=int)]

    def effective_rank(self, energy: float = 0.99) -> int:
        """Numerical rank of the matrix (the paper's property i)."""
        return effective_rank(self.values, energy)

    def with_values(
        self, values: np.ndarray, *, source: str, day: Optional[float] = None
    ) -> "FingerprintMatrix":
        """A copy carrying new values (e.g. a reconstruction) and provenance."""
        return FingerprintMatrix(
            values=values,
            empty_rss=self.empty_rss,
            day=self.day if day is None else day,
            source=source,
        )

    def with_empty_rss(self, empty_rss: np.ndarray) -> "FingerprintMatrix":
        """A copy with a refreshed empty-room calibration."""
        return FingerprintMatrix(
            values=self.values, empty_rss=empty_rss, day=self.day, source=self.source
        )


@dataclass
class FingerprintDatabase:
    """Time-ordered collection of fingerprint matrices.

    The database is the thing the paper says is costly to maintain; TafLoc's
    update path appends *reconstructed* epochs next to the original surveyed
    one. Epochs are keyed by day; lookups return the most recent epoch at or
    before the requested day.
    """

    _epochs: List[FingerprintMatrix] = field(default_factory=list)
    _days: List[float] = field(default_factory=list)
    _version: int = 0

    def add(self, matrix: FingerprintMatrix) -> None:
        """Insert an epoch, keeping the database sorted by day.

        Every insertion bumps :attr:`version`, which is how downstream
        caches keyed on day→epoch resolution (e.g. the
        :class:`~repro.core.pipeline.TafLoc` matcher cache) learn that
        their lookups may now resolve differently.
        """
        if self._epochs and matrix.shape != self._epochs[0].shape:
            raise ValueError(
                f"epoch shape {matrix.shape} does not match database shape "
                f"{self._epochs[0].shape}"
            )
        position = bisect.bisect_right(self._days, matrix.day)
        self._days.insert(position, matrix.day)
        self._epochs.insert(position, matrix)
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic counter of mutations; bumped by every :meth:`add`."""
        return self._version

    def at(self, day: float) -> FingerprintMatrix:
        """Most recent epoch whose day is <= ``day``."""
        if not self._epochs:
            raise LookupError("fingerprint database is empty")
        position = bisect.bisect_right(self._days, day) - 1
        if position < 0:
            raise LookupError(
                f"no fingerprint epoch at or before day {day}; earliest is "
                f"day {self._days[0]}"
            )
        return self._epochs[position]

    def latest(self) -> FingerprintMatrix:
        if not self._epochs:
            raise LookupError("fingerprint database is empty")
        return self._epochs[-1]

    def initial(self) -> FingerprintMatrix:
        if not self._epochs:
            raise LookupError("fingerprint database is empty")
        return self._epochs[0]

    @property
    def epoch_count(self) -> int:
        return len(self._epochs)

    @property
    def days(self) -> List[float]:
        return list(self._days)

    def epochs(self) -> List[FingerprintMatrix]:
        return list(self._epochs)

    def staleness(self, day: float) -> float:
        """Days elapsed since the epoch serving queries at ``day``."""
        return day - self.at(day).day

    def summary(self) -> Dict[str, float]:
        """Small diagnostic summary used by the examples and reports."""
        if not self._epochs:
            return {"epochs": 0}
        latest = self.latest()
        return {
            "epochs": float(self.epoch_count),
            "links": float(latest.link_count),
            "cells": float(latest.cell_count),
            "latest_day": float(latest.day),
            "effective_rank": float(latest.effective_rank()),
        }
