"""Low-Rank Representation of the fingerprint matrix (property ii).

The paper models the whole fingerprint matrix as a linear combination of its
reference columns, ``X = X_R @ Z``, and the crucial point for labor saving is
that the correlation matrix ``Z`` is a property of room *geometry* (which
cells affect which links, and how locations relate) rather than of the slowly
drifting link gains. So ``Z`` is learned once, at full-survey time, and
re-used at update time with *fresh* reference measurements:
``X_new ≈ X_R_new @ Z``.

Two fitters are provided:

* :func:`fit_lrr` — ridge-regularized least squares (closed form). Fast and
  the default inside the TafLoc pipeline.
* :func:`fit_lrr_nuclear` — proximal-gradient solver with a nuclear-norm
  penalty on ``Z``, the literal Low-Rank Representation formulation; kept for
  the objective ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.util.linalg import svd_shrink
from repro.util.validation import check_matrix, check_positive


@dataclass(frozen=True)
class LrrConfig:
    """Hyper-parameters of the LRR fit.

    Attributes:
        ridge: Tikhonov weight on ``||Z||_F^2``; stabilizes the solve when
            reference columns are nearly collinear.
        center: Fit on mean-centered data (recommended: the shared dBm offset
            otherwise dominates the regression and hides structure).
    """

    ridge: float = 1e-2
    center: bool = True

    def __post_init__(self) -> None:
        check_positive("ridge", self.ridge, strict=False)


@dataclass(frozen=True)
class LrrModel:
    """A fitted ``X ≈ X_R @ Z`` model.

    Attributes:
        reference_cells: Indices of the reference columns inside X.
        correlation: The learned ``Z``, shape ``(n_references, cells)``.
        reference_mean_offset: Per-link offset between the mean of the
            reference columns and the full-matrix row mean at training time
            (``None`` when the fit was uncentered). A per-link drift ``D``
            shifts both means equally, so at prediction time the full-matrix
            row mean is recoverable as
            ``mean(fresh references) - reference_mean_offset`` — this is how
            the slowly drifting common offset bypasses ``Z`` entirely.
        training_residual: RMS residual of the fit on the training matrix —
            a direct measurement of the paper's property ii.
    """

    reference_cells: np.ndarray
    correlation: np.ndarray
    reference_mean_offset: Optional[np.ndarray]
    training_residual: float

    def __post_init__(self) -> None:
        cells = np.asarray(self.reference_cells, dtype=int)
        z = check_matrix("correlation", self.correlation)
        if z.shape[0] != len(cells):
            raise ValueError(
                f"correlation has {z.shape[0]} rows but there are "
                f"{len(cells)} reference cells"
            )
        object.__setattr__(self, "reference_cells", cells)
        object.__setattr__(self, "correlation", z)
        if self.reference_mean_offset is not None:
            offset = np.asarray(self.reference_mean_offset, dtype=float)
            object.__setattr__(self, "reference_mean_offset", offset)

    @property
    def centered(self) -> bool:
        return self.reference_mean_offset is not None

    @property
    def reference_count(self) -> int:
        return len(self.reference_cells)

    @property
    def cell_count(self) -> int:
        return self.correlation.shape[1]

    def predict(self, reference_matrix: np.ndarray) -> np.ndarray:
        """Reconstruct the full matrix from fresh reference measurements.

        Args:
            reference_matrix: Fresh measurements at the reference cells, in
                the same column order as ``reference_cells``; shape
                ``(links, n_references)``.
        Returns:
            The transferred estimate of the full matrix,
            shape ``(links, cells)``.
        """
        xr = check_matrix("reference_matrix", reference_matrix)
        if xr.shape[1] != self.reference_count:
            raise ValueError(
                f"reference_matrix has {xr.shape[1]} columns, model expects "
                f"{self.reference_count}"
            )
        if self.reference_mean_offset is None:
            return xr @ self.correlation
        row_base = (
            xr.mean(axis=1) - self.reference_mean_offset
        )[:, None]
        return (xr - row_base) @ self.correlation + row_base


def fit_lrr(
    matrix: np.ndarray,
    reference_cells: np.ndarray,
    config: Optional[LrrConfig] = None,
) -> LrrModel:
    """Fit ``Z`` by ridge regression: ``min_Z ||X - X_R Z||_F^2 + r||Z||_F^2``.

    Closed form: ``Z = (X_R' X_R + r I)^{-1} X_R' X``.
    """
    config = config if config is not None else LrrConfig()
    matrix = check_matrix("matrix", matrix)
    cells = np.asarray(reference_cells, dtype=int)
    _check_cells(cells, matrix.shape[1])

    target, reference, mean_offset = _prepare(matrix, cells, config.center)
    gram = reference.T @ reference + config.ridge * np.eye(len(cells))
    correlation = np.linalg.solve(gram, reference.T @ target)
    residual = _rms(target - reference @ correlation)
    return LrrModel(
        reference_cells=cells,
        correlation=correlation,
        reference_mean_offset=mean_offset,
        training_residual=residual,
    )


def fit_lrr_nuclear(
    matrix: np.ndarray,
    reference_cells: np.ndarray,
    *,
    nuclear_weight: float = 1.0,
    ridge: float = 1e-3,
    center: bool = True,
    max_iter: int = 300,
    tol: float = 1e-7,
) -> LrrModel:
    """Fit ``Z`` with a nuclear-norm penalty (proximal gradient / ISTA).

    ``min_Z 0.5 ||X - X_R Z||_F^2 + 0.5 r ||Z||_F^2 + w ||Z||_*``

    The nuclear penalty is the literal "Low Rank Representation" of the
    paper's formulation; in practice the ridge fit transfers just as well on
    this problem, which the ablation benchmark demonstrates.
    """
    matrix = check_matrix("matrix", matrix)
    cells = np.asarray(reference_cells, dtype=int)
    _check_cells(cells, matrix.shape[1])
    check_positive("nuclear_weight", nuclear_weight, strict=False)

    target, reference, mean_offset = _prepare(matrix, cells, center)
    gram = reference.T @ reference
    lipschitz = float(np.linalg.norm(gram, 2)) + ridge
    step = 1.0 / max(lipschitz, 1e-12)
    rhs = reference.T @ target

    z = np.zeros((len(cells), matrix.shape[1]))
    previous_objective = np.inf
    for _ in range(max_iter):
        gradient = gram @ z - rhs + ridge * z
        z, _ = svd_shrink(z - step * gradient, step * nuclear_weight)
        residual = target - reference @ z
        objective = (
            0.5 * float(np.sum(residual**2))
            + 0.5 * ridge * float(np.sum(z**2))
            + nuclear_weight * float(np.linalg.svd(z, compute_uv=False).sum())
        )
        if abs(previous_objective - objective) <= tol * max(1.0, abs(objective)):
            break
        previous_objective = objective

    return LrrModel(
        reference_cells=cells,
        correlation=z,
        reference_mean_offset=mean_offset,
        training_residual=_rms(target - reference @ z),
    )


def _prepare(matrix: np.ndarray, cells: np.ndarray, center: bool):
    """Center the training matrix and record the reference-mean offset.

    Returns ``(target, reference_columns, mean_offset)`` where
    ``mean_offset[i]`` is how far link ``i``'s reference-column mean sits
    above its full-row mean — the quantity :meth:`LrrModel.predict` needs to
    reconstruct the fresh row mean from fresh reference columns alone.
    """
    if not center:
        return matrix, matrix[:, cells], None
    row_means = matrix.mean(axis=1, keepdims=True)
    target = matrix - row_means
    mean_offset = matrix[:, cells].mean(axis=1) - row_means[:, 0]
    return target, target[:, cells], mean_offset


def _check_cells(cells: np.ndarray, upper: int) -> None:
    if cells.ndim != 1 or len(cells) == 0:
        raise ValueError("reference_cells must be a non-empty 1-D index array")
    if cells.min() < 0 or cells.max() >= upper:
        raise ValueError(
            f"reference_cells must lie in [0, {upper}), got range "
            f"[{cells.min()}, {cells.max()}]"
        )
    if len(np.unique(cells)) != len(cells):
        raise ValueError("reference_cells contain duplicates")


def _rms(residual: np.ndarray) -> float:
    return float(np.sqrt(np.mean(residual**2)))
