"""Continuity (G) and similarity (H) operators (the paper's property iii).

The TafLoc objective contains two smoothness penalties on the
largely-distorted entries ``X_D``:

* ``||X_D G||_F^2`` — **continuity along a link**: within one row (one link),
  RSS at spatially neighboring locations should be close. ``G`` acts on the
  right, differencing columns; but only column pairs that are spatial
  neighbors *and* both largely distorted on that link should be penalized,
  so our ``G`` is built per deployment grid and the mask is folded in by the
  solver.
* ``||H X_D||_F^2`` — **similarity across adjacent links**: within one column
  (one location), adjacent links see similar RSS. ``H`` acts on the left,
  differencing the rows of spatially adjacent link pairs.

Both are returned as dense numpy matrices (the testbeds here are tiny:
M ~ tens of links, N ~ hundreds to thousands of cells).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.sim.deployment import Deployment
from repro.sim.geometry import Grid


def continuity_operator(grid: Grid) -> np.ndarray:
    """Column-difference operator ``G`` of shape ``(cells, pairs)``.

    ``(X @ G)[:, p]`` is the RSS difference across the ``p``-th pair of
    4-adjacent grid cells. Penalizing its Frobenius norm pulls neighboring
    columns of the reconstruction together, implementing "RSS measurements at
    neighbor locations along a particular link are continuous".
    """
    pairs = _adjacent_cell_pairs(grid)
    operator = np.zeros((grid.cell_count, len(pairs)))
    for p, (a, b) in enumerate(pairs):
        operator[a, p] = -1.0
        operator[b, p] = 1.0
    return operator


def similarity_operator(
    deployment: Deployment,
    *,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> np.ndarray:
    """Row-difference operator ``H`` of shape ``(pairs, links)``.

    ``(H @ X)[p, :]`` is the RSS difference between the ``p``-th pair of
    spatially adjacent links. Penalizing it implements "measurements at a
    specific location from adjacent links are similar". ``pairs`` overrides
    the deployment's own adjacency (useful in tests).
    """
    link_pairs = list(pairs) if pairs is not None else deployment.adjacent_link_pairs()
    operator = np.zeros((len(link_pairs), deployment.link_count))
    for p, (a, b) in enumerate(link_pairs):
        if not (0 <= a < deployment.link_count and 0 <= b < deployment.link_count):
            raise ValueError(f"link pair ({a}, {b}) out of range")
        operator[p, a] = -1.0
        operator[p, b] = 1.0
    return operator


def masked_pair_weights(
    mask: np.ndarray, grid: Grid
) -> Tuple[np.ndarray, np.ndarray]:
    """Weights restricting the smoothness penalties to distorted entries.

    Returns:
        continuity_weights: shape ``(links, pairs_G)``; entry ``(i, p)`` is 1
            when *both* cells of column pair ``p`` are largely distorted on
            link ``i`` — only then does the paper's continuity property apply.
        similarity_row_mask: shape ``(links, cells)`` float copy of ``mask``,
            used by the solver to gate the H penalty per entry.
    """
    mask = np.asarray(mask, dtype=bool)
    pairs = _adjacent_cell_pairs(grid)
    continuity_weights = np.zeros((mask.shape[0], len(pairs)))
    for p, (a, b) in enumerate(pairs):
        continuity_weights[:, p] = mask[:, a] & mask[:, b]
    return continuity_weights, mask.astype(float)


def _adjacent_cell_pairs(grid: Grid) -> list:
    """All unordered 4-adjacent cell pairs of the grid, (low, high) order."""
    pairs = []
    for cell in range(grid.cell_count):
        for neighbor in grid.neighbors_of(cell):
            if neighbor > cell:
                pairs.append((cell, neighbor))
    return pairs
