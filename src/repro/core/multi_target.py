"""Extension: localizing two simultaneous targets.

The poster handles one target; multi-target device-free localization is the
standing extension every DfL paper gestures at. This module implements the
standard fingerprint-side approach for two targets:

* **Signature superposition**: with two bodies in the room, each link's dip
  is approximately the sum of the per-target dips (valid while the bodies
  do not shadow each other's paths — the usual sparse-occupancy regime).
* **Joint matching**: search over cell *pairs*, scoring the live dip vector
  against the summed fingerprint dips of the pair. The search space is
  ``N·(N-1)/2``; for the paper's 96 cells that is 4 560 pairs — trivially
  exhaustive. A pluggable pruning radius keeps larger grids tractable by
  discarding pairs whose single-target scores are both hopeless.

The estimator also decides *how many* targets are present (0, 1 or 2) by
comparing the best 0/1/2-target residuals with a complexity penalty —
giving the library a primitive occupancy counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.fingerprint import FingerprintMatrix
from repro.sim.geometry import Grid, Point
from repro.util.validation import check_positive

#: Cap on the elements of the broadcasted (links, K, K) pair tensor; larger
#: (unpruned) searches fall back to a row-at-a-time sweep in O(links * K)
#: memory.
_PAIR_BLOCK_ELEMENTS = 4_000_000


@dataclass(frozen=True)
class MultiTargetResult:
    """Outcome of a joint multi-target match.

    Attributes:
        count: Estimated number of targets (0, 1 or 2).
        cells: The estimated cells, length ``count``.
        positions: Cell-center positions, length ``count``.
        residual: RMS residual (dB) of the chosen hypothesis.
    """

    count: int
    cells: Tuple[int, ...]
    positions: Tuple[Point, ...]
    residual: float


class MultiTargetMatcher:
    """Joint 0/1/2-target matching by dip superposition.

    Args:
        fingerprint: Fingerprint matrix (with empty-room calibration).
        grid: The deployment grid (for cell → position mapping).
        live_empty_rss: Fresh empty-room calibration for live dips; defaults
            to the fingerprint's own.
        count_penalty_db: Residual improvement (RMS dB) each extra target
            must buy to be accepted — the model-order penalty.
        prune_keep: For the pair search, only cells among the best
            ``prune_keep`` single-target matches are considered as pair
            members (the superposed best pair almost always contains a
            decent single match). ``None`` disables pruning.
    """

    def __init__(
        self,
        fingerprint: FingerprintMatrix,
        grid: Grid,
        *,
        live_empty_rss: Optional[np.ndarray] = None,
        count_penalty_db: float = 0.35,
        prune_keep: Optional[int] = 25,
    ) -> None:
        if fingerprint.cell_count != grid.cell_count:
            raise ValueError(
                f"fingerprint covers {fingerprint.cell_count} cells, grid has "
                f"{grid.cell_count}"
            )
        check_positive("count_penalty_db", count_penalty_db, strict=False)
        if prune_keep is not None and prune_keep < 2:
            raise ValueError(f"prune_keep must be >= 2, got {prune_keep}")
        self.fingerprint = fingerprint
        self.grid = grid
        self.count_penalty_db = count_penalty_db
        self.prune_keep = prune_keep
        if live_empty_rss is None:
            self._live_empty = fingerprint.empty_rss
        else:
            live_empty = np.asarray(live_empty_rss, dtype=float)
            if live_empty.shape != (fingerprint.link_count,):
                raise ValueError(
                    f"live_empty_rss shape {live_empty.shape} must be "
                    f"({fingerprint.link_count},)"
                )
            self._live_empty = live_empty
        self._templates = fingerprint.dips()  # (links, cells)

    # ------------------------------------------------------------------
    def live_dips(self, live_rss: np.ndarray) -> np.ndarray:
        live = np.asarray(live_rss, dtype=float)
        if live.shape != (self.fingerprint.link_count,):
            raise ValueError(
                f"live vector shape {live.shape} must be "
                f"({self.fingerprint.link_count},)"
            )
        return self._live_empty - live

    def match(self, live_rss: np.ndarray) -> MultiTargetResult:
        """Jointly estimate target count (0/1/2) and their cells."""
        dips = self.live_dips(live_rss)
        single_residuals = np.sqrt(
            np.mean((self._templates - dips[:, None]) ** 2, axis=0)
        )
        return self._select_hypotheses(
            dips, float(np.sqrt(np.mean(dips**2))), single_residuals
        )

    def match_batch(self, frames: np.ndarray) -> List[MultiTargetResult]:
        """Jointly estimate target counts and cells for a whole trace.

        The 0- and 1-target hypotheses of every frame are scored in one
        broadcasted pass (the single-target residuals via the Gram
        expansion, one BLAS matmul for the whole trace); the pair search —
        the dominant cost — still runs per frame on the vectorized pair
        kernel.
        """
        live = np.asarray(frames, dtype=float)
        if live.ndim != 2 or live.shape[1] != self.fingerprint.link_count:
            raise ValueError(
                f"frames shape {live.shape} must be "
                f"(n_frames, {self.fingerprint.link_count})"
            )
        dips = self._live_empty[None, :] - live
        links = self.fingerprint.link_count
        residual0 = np.sqrt(np.mean(dips**2, axis=1))
        # ||t_j - d||^2 = ||t_j||^2 - 2 d.t_j + ||d||^2, batched over frames.
        squared = (
            np.sum(self._templates**2, axis=0)[None, :]
            - 2.0 * (dips @ self._templates)
            + np.sum(dips**2, axis=1)[:, None]
        )
        singles = np.sqrt(np.maximum(squared, 0.0) / links)
        return [
            self._select_hypotheses(dips[t], float(residual0[t]), singles[t])
            for t in range(len(dips))
        ]

    # ------------------------------------------------------------------
    def _select_hypotheses(
        self,
        dips: np.ndarray,
        residual0: float,
        single_residuals: np.ndarray,
    ) -> MultiTargetResult:
        best1 = int(np.argmin(single_residuals))
        residual1 = float(single_residuals[best1])

        # Hypothesis 2: two targets, superposed dips.
        candidates = self._pair_candidates(single_residuals)
        best_pair, residual2 = self._best_pair(dips, candidates)

        # Model-order selection: an extra target must buy at least the
        # penalty in RMS residual.
        if residual1 <= residual0 - self.count_penalty_db:
            if best_pair is not None and residual2 <= residual1 - self.count_penalty_db:
                cells = tuple(sorted(best_pair))
                return MultiTargetResult(
                    count=2,
                    cells=cells,
                    positions=tuple(self.grid.center_of(c) for c in cells),
                    residual=residual2,
                )
            return MultiTargetResult(
                count=1,
                cells=(best1,),
                positions=(self.grid.center_of(best1),),
                residual=residual1,
            )
        return MultiTargetResult(
            count=0, cells=(), positions=(), residual=residual0
        )

    # ------------------------------------------------------------------
    def _pair_candidates(self, single_residuals: np.ndarray) -> np.ndarray:
        if self.prune_keep is None:
            return np.arange(self.fingerprint.cell_count)
        keep = min(self.prune_keep, self.fingerprint.cell_count)
        return np.argsort(single_residuals)[:keep]

    def _best_pair(
        self, dips: np.ndarray, candidates: np.ndarray
    ) -> Tuple[Optional[Tuple[int, int]], float]:
        count = len(candidates)
        if count < 2:
            return None, float("inf")
        selected = self._templates[:, candidates]  # (links, K)
        links = selected.shape[0]
        if links * count * count <= _PAIR_BLOCK_ELEMENTS:
            # Residuals of every unordered candidate pair in one broadcast:
            # combined[:, i, j] = template_i + template_j.
            combined = selected[:, :, None] + selected[:, None, :]
            residuals = np.sqrt(
                np.mean((combined - dips[:, None, None]) ** 2, axis=0)
            )
            upper_i, upper_j = np.triu_indices(count, k=1)
            flat = residuals[upper_i, upper_j]
            # triu_indices enumerates i<j pairs in the same row-major order
            # as a nested i<j loop, so ties resolve identically.
            best = int(np.argmin(flat))
            return (
                int(candidates[upper_i[best]]),
                int(candidates[upper_j[best]]),
            ), float(flat[best])
        # Unpruned search on a large grid: vectorize one candidate row at a
        # time, keeping memory at O(links * K) instead of O(links * K^2).
        best_pair: Optional[Tuple[int, int]] = None
        best_residual = float("inf")
        for i in range(count - 1):
            combined = selected[:, i][:, None] + selected[:, i + 1 :]
            residuals = np.sqrt(
                np.mean((combined - dips[:, None]) ** 2, axis=0)
            )
            j = int(np.argmin(residuals))
            if residuals[j] < best_residual:
                best_residual = float(residuals[j])
                best_pair = (int(candidates[i]), int(candidates[i + 1 + j]))
        return best_pair, best_residual


def pairing_error(
    estimated: List[Point], truth: List[Point]
) -> float:
    """Mean error under the best assignment of estimates to true targets.

    For up to two targets the optimal assignment is the cheaper of the two
    permutations; returns infinity when the counts differ (counting errors
    are scored separately).
    """
    if len(estimated) != len(truth):
        return float("inf")
    if not truth:
        return 0.0
    if len(truth) == 1:
        return estimated[0].distance_to(truth[0])
    direct = (
        estimated[0].distance_to(truth[0]) + estimated[1].distance_to(truth[1])
    ) / 2.0
    swapped = (
        estimated[0].distance_to(truth[1]) + estimated[1].distance_to(truth[0])
    ) / 2.0
    return min(direct, swapped)
