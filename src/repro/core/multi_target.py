"""Extension: localizing two simultaneous targets.

The poster handles one target; multi-target device-free localization is the
standing extension every DfL paper gestures at. This module implements the
standard fingerprint-side approach for two targets:

* **Signature superposition**: with two bodies in the room, each link's dip
  is approximately the sum of the per-target dips (valid while the bodies
  do not shadow each other's paths — the usual sparse-occupancy regime).
* **Joint matching**: search over cell *pairs*, scoring the live dip vector
  against the summed fingerprint dips of the pair. The search space is
  ``N·(N-1)/2``; for the paper's 96 cells that is 4 560 pairs — trivially
  exhaustive. A pluggable pruning radius keeps larger grids tractable by
  discarding pairs whose single-target scores are both hopeless.

The estimator also decides *how many* targets are present (0, 1 or 2) by
comparing the best 0/1/2-target residuals with a complexity penalty —
giving the library a primitive occupancy counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.fingerprint import FingerprintMatrix
from repro.sim.geometry import Grid, Point
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MultiTargetResult:
    """Outcome of a joint multi-target match.

    Attributes:
        count: Estimated number of targets (0, 1 or 2).
        cells: The estimated cells, length ``count``.
        positions: Cell-center positions, length ``count``.
        residual: RMS residual (dB) of the chosen hypothesis.
    """

    count: int
    cells: Tuple[int, ...]
    positions: Tuple[Point, ...]
    residual: float


class MultiTargetMatcher:
    """Joint 0/1/2-target matching by dip superposition.

    Args:
        fingerprint: Fingerprint matrix (with empty-room calibration).
        grid: The deployment grid (for cell → position mapping).
        live_empty_rss: Fresh empty-room calibration for live dips; defaults
            to the fingerprint's own.
        count_penalty_db: Residual improvement (RMS dB) each extra target
            must buy to be accepted — the model-order penalty.
        prune_keep: For the pair search, only cells among the best
            ``prune_keep`` single-target matches are considered as pair
            members (the superposed best pair almost always contains a
            decent single match). ``None`` disables pruning.
    """

    def __init__(
        self,
        fingerprint: FingerprintMatrix,
        grid: Grid,
        *,
        live_empty_rss: Optional[np.ndarray] = None,
        count_penalty_db: float = 0.35,
        prune_keep: Optional[int] = 25,
    ) -> None:
        if fingerprint.cell_count != grid.cell_count:
            raise ValueError(
                f"fingerprint covers {fingerprint.cell_count} cells, grid has "
                f"{grid.cell_count}"
            )
        check_positive("count_penalty_db", count_penalty_db, strict=False)
        if prune_keep is not None and prune_keep < 2:
            raise ValueError(f"prune_keep must be >= 2, got {prune_keep}")
        self.fingerprint = fingerprint
        self.grid = grid
        self.count_penalty_db = count_penalty_db
        self.prune_keep = prune_keep
        if live_empty_rss is None:
            self._live_empty = fingerprint.empty_rss
        else:
            live_empty = np.asarray(live_empty_rss, dtype=float)
            if live_empty.shape != (fingerprint.link_count,):
                raise ValueError(
                    f"live_empty_rss shape {live_empty.shape} must be "
                    f"({fingerprint.link_count},)"
                )
            self._live_empty = live_empty
        self._templates = fingerprint.dips()  # (links, cells)

    # ------------------------------------------------------------------
    def live_dips(self, live_rss: np.ndarray) -> np.ndarray:
        live = np.asarray(live_rss, dtype=float)
        if live.shape != (self.fingerprint.link_count,):
            raise ValueError(
                f"live vector shape {live.shape} must be "
                f"({self.fingerprint.link_count},)"
            )
        return self._live_empty - live

    def match(self, live_rss: np.ndarray) -> MultiTargetResult:
        """Jointly estimate target count (0/1/2) and their cells."""
        dips = self.live_dips(live_rss)
        links = self.fingerprint.link_count

        # Hypothesis 0: nobody present.
        residual0 = float(np.sqrt(np.mean(dips**2)))

        # Hypothesis 1: single target.
        single_residuals = np.sqrt(
            np.mean((self._templates - dips[:, None]) ** 2, axis=0)
        )
        best1 = int(np.argmin(single_residuals))
        residual1 = float(single_residuals[best1])

        # Hypothesis 2: two targets, superposed dips.
        candidates = self._pair_candidates(single_residuals)
        best_pair, residual2 = self._best_pair(dips, candidates)

        # Model-order selection: an extra target must buy at least the
        # penalty in RMS residual.
        if residual1 <= residual0 - self.count_penalty_db:
            if best_pair is not None and residual2 <= residual1 - self.count_penalty_db:
                cells = tuple(sorted(best_pair))
                return MultiTargetResult(
                    count=2,
                    cells=cells,
                    positions=tuple(self.grid.center_of(c) for c in cells),
                    residual=residual2,
                )
            return MultiTargetResult(
                count=1,
                cells=(best1,),
                positions=(self.grid.center_of(best1),),
                residual=residual1,
            )
        del links
        return MultiTargetResult(
            count=0, cells=(), positions=(), residual=residual0
        )

    # ------------------------------------------------------------------
    def _pair_candidates(self, single_residuals: np.ndarray) -> np.ndarray:
        if self.prune_keep is None:
            return np.arange(self.fingerprint.cell_count)
        keep = min(self.prune_keep, self.fingerprint.cell_count)
        return np.argsort(single_residuals)[:keep]

    def _best_pair(
        self, dips: np.ndarray, candidates: np.ndarray
    ) -> Tuple[Optional[Tuple[int, int]], float]:
        best: Optional[Tuple[int, int]] = None
        best_residual = float("inf")
        templates = self._templates
        for i_idx in range(len(candidates)):
            a = int(candidates[i_idx])
            combined_a = templates[:, a]
            for j_idx in range(i_idx + 1, len(candidates)):
                b = int(candidates[j_idx])
                combined = combined_a + templates[:, b]
                residual = float(np.sqrt(np.mean((combined - dips) ** 2)))
                if residual < best_residual:
                    best_residual = residual
                    best = (a, b)
        return best, best_residual


def pairing_error(
    estimated: List[Point], truth: List[Point]
) -> float:
    """Mean error under the best assignment of estimates to true targets.

    For up to two targets the optimal assignment is the cheaper of the two
    permutations; returns infinity when the counts differ (counting errors
    are scored separately).
    """
    if len(estimated) != len(truth):
        return float("inf")
    if not truth:
        return 0.0
    if len(truth) == 1:
        return estimated[0].distance_to(truth[0])
    direct = (
        estimated[0].distance_to(truth[0]) + estimated[1].distance_to(truth[1])
    ) / 2.0
    swapped = (
        estimated[0].distance_to(truth[1]) + estimated[1].distance_to(truth[0])
    ) / 2.0
    return min(direct, swapped)
