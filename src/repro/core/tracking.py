"""Particle-filter tracking on top of per-frame fingerprint likelihoods.

The poster localizes frame by frame; continuous tracking of a walking target
is the natural extension (and what its motivating applications — elderly
care, intruder detection — actually need). The tracker fuses the
:class:`~repro.core.matching.ProbabilisticMatcher` likelihood with a
constant-velocity-with-diffusion motion model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.matching import ProbabilisticMatcher
from repro.sim.geometry import Point, Room
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


@dataclass(frozen=True)
class TrackerConfig:
    """Particle-filter parameters.

    Attributes:
        particle_count: Number of particles.
        process_sigma_m: Per-step positional diffusion (human walking between
            1 Hz frames moves ~0.5-1.5 m; diffusion absorbs the rest).
        resample_threshold: Effective-sample-size fraction below which the
            filter resamples.
        likelihood_tempering: Exponent applied to the per-frame likelihood.
            The raw Gaussian likelihood over all links is badly overconfident
            (fingerprint model error is correlated across links, not i.i.d.),
            which collapses every particle onto one cell per frame and makes
            the filter lag a moving target. Tempering with an exponent < 1 is
            the standard correction; 1.0 recovers the raw likelihood.
    """

    particle_count: int = 500
    process_sigma_m: float = 0.5
    resample_threshold: float = 0.5
    likelihood_tempering: float = 0.25
    map_injection: float = 0.15

    def __post_init__(self) -> None:
        if self.particle_count < 1:
            raise ValueError(
                f"particle_count must be >= 1, got {self.particle_count}"
            )
        check_positive("process_sigma_m", self.process_sigma_m)
        if not 0.0 <= self.resample_threshold <= 1.0:
            raise ValueError(
                f"resample_threshold must lie in [0, 1], got "
                f"{self.resample_threshold}"
            )
        if not 0.0 < self.likelihood_tempering <= 1.0:
            raise ValueError(
                f"likelihood_tempering must lie in (0, 1], got "
                f"{self.likelihood_tempering}"
            )
        if not 0.0 <= self.map_injection < 1.0:
            raise ValueError(
                f"map_injection must lie in [0, 1), got {self.map_injection}"
            )


class ParticleFilterTracker:
    """Sequential Monte Carlo tracker over the monitored area.

    Usage::

        tracker = ParticleFilterTracker(matcher, room, seed=7)
        for rss in trace.rss:
            estimate = tracker.step(rss)
    """

    def __init__(
        self,
        matcher: ProbabilisticMatcher,
        room: Room,
        config: Optional[TrackerConfig] = None,
        *,
        seed: RandomState = None,
    ) -> None:
        config = config if config is not None else TrackerConfig()
        self.matcher = matcher
        self.room = room
        self.config = config
        self._rng = as_generator(seed)
        self._positions = np.column_stack(
            (
                self._rng.uniform(0.0, room.width, config.particle_count),
                self._rng.uniform(0.0, room.depth, config.particle_count),
            )
        )
        self._weights = np.full(
            config.particle_count, 1.0 / config.particle_count
        )
        self.history: List[Point] = []

    # ------------------------------------------------------------------
    @property
    def effective_sample_size(self) -> float:
        return float(1.0 / np.sum(self._weights**2))

    def step(self, live_rss: np.ndarray) -> Point:
        """Advance one frame: predict, inject, weight by likelihood, estimate."""
        return self._step_from_log_likelihoods(
            self.matcher.log_likelihoods(live_rss)
        )

    def run(self, rss_frames: np.ndarray) -> List[Point]:
        """Track through a whole trace; returns one estimate per frame.

        The per-cell likelihoods of every frame are computed in a single
        :meth:`~repro.core.matching.ProbabilisticMatcher.log_likelihoods_batch`
        pass up front; only the (inherently sequential) particle recursion
        then runs per frame.
        """
        frames = np.asarray(rss_frames, dtype=float)
        if frames.ndim != 2:
            raise ValueError(f"rss_frames must be 2-D, got shape {frames.shape}")
        log_likes = self.matcher.log_likelihoods_batch(frames)
        return [
            self._step_from_log_likelihoods(log_likes[index])
            for index in range(len(frames))
        ]

    # ------------------------------------------------------------------
    def _step_from_log_likelihoods(self, log_like_cells: np.ndarray) -> Point:
        self._predict()
        self._inject_map_particles(log_like_cells)
        self._update(log_like_cells)
        if self.effective_sample_size < (
            self.config.resample_threshold * self.config.particle_count
        ):
            self._resample()
        estimate = Point(
            float(np.dot(self._weights, self._positions[:, 0])),
            float(np.dot(self._weights, self._positions[:, 1])),
        )
        self.history.append(estimate)
        return estimate

    def _inject_map_particles(self, log_like: np.ndarray) -> None:
        """Respawn a fraction of particles near the frame's best cell.

        A diffusion-only motion model cannot recover once the cloud drifts
        away from a moving target; re-seeding a small fraction of particles
        at the instantaneous maximum-likelihood cell keeps the filter
        responsive while the surviving majority preserves temporal
        smoothing. (A standard sensor-resetting / proposal-mixing heuristic.)
        """
        count = int(self.config.map_injection * self.config.particle_count)
        if count == 0:
            return
        best = self.matcher.grid.center_of(int(np.argmax(log_like)))
        order = np.argsort(self._weights)[:count]  # replace the weakest
        spread = self.matcher.grid.cell_size
        self._positions[order, 0] = np.clip(
            best.x + self._rng.normal(0.0, spread, count), 0.0, self.room.width
        )
        self._positions[order, 1] = np.clip(
            best.y + self._rng.normal(0.0, spread, count), 0.0, self.room.depth
        )
        # Injected particles adopt the mean weight so they neither dominate
        # nor vanish before the likelihood update re-weighs everything.
        self._weights[order] = self._weights.mean()
        self._weights = self._weights / self._weights.sum()

    def _predict(self) -> None:
        noise = self._rng.normal(
            0.0, self.config.process_sigma_m, size=self._positions.shape
        )
        self._positions = self._positions + noise
        self._positions[:, 0] = np.clip(self._positions[:, 0], 0.0, self.room.width)
        self._positions[:, 1] = np.clip(self._positions[:, 1], 0.0, self.room.depth)

    def _update(self, raw_log_like: np.ndarray) -> None:
        grid = self.matcher.grid
        log_like_cells = self.config.likelihood_tempering * raw_log_like
        cells = grid.cells_at(self._positions)
        log_weights = np.log(self._weights + 1e-300) + log_like_cells[cells]
        log_weights -= log_weights.max()
        weights = np.exp(log_weights)
        total = weights.sum()
        if total <= 0 or not np.isfinite(total):
            # Degenerate update (all likelihoods underflowed): keep the prior.
            return
        self._weights = weights / total

    def _resample(self) -> None:
        count = self.config.particle_count
        positions = np.cumsum(self._weights)
        positions[-1] = 1.0  # guard against rounding
        starts = (self._rng.random() + np.arange(count)) / count
        indices = np.searchsorted(positions, starts)
        self._positions = self._positions[indices]
        self._weights = np.full(count, 1.0 / count)
