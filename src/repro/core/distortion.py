"""Undistorted mask B and largely-distorted set D (the paper's Fig. 1).

Two complementary subsets of fingerprint-matrix entries drive the TafLoc
objective:

* **Undistorted entries** (mask ``B``): ``x_ij`` where the target at cell
  ``j`` leaves link ``i`` essentially unaffected, so ``x_ij`` simply equals
  the link's empty-room RSS. After a drift period these entries are *known
  for free* from a seconds-long empty-room calibration — nobody has to walk
  the grid. They enter the objective as ``B ∘ X̂ = X_I``.
* **Largely-distorted entries** (mask ``D``): the target blocks the direct
  path and the RSS dips sharply. These are where the smoothness priors act:
  along one link the dip varies continuously from cell to cell, and adjacent
  links see similar dips at the same cell.

Both masks are derived from the *initial* survey: geometry (who blocks whom)
does not drift, so day-0 dip magnitudes classify entries reliably for every
later update.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fingerprint import FingerprintMatrix
from repro.util.validation import check_positive


@dataclass(frozen=True)
class DistortionProfile:
    """Classification of fingerprint entries by target influence.

    Attributes:
        undistorted: Boolean mask ``B``; True where the target does not
            meaningfully affect the link.
        largely_distorted: Boolean mask ``D``; True where the direct path is
            blocked (large dip).
        dips: The day-0 dip matrix the classification came from (dB).
        undistorted_threshold_db: Dip below which an entry counts as
            undistorted.
        distorted_threshold_db: Dip above which an entry counts as largely
            distorted.
    """

    undistorted: np.ndarray
    largely_distorted: np.ndarray
    dips: np.ndarray
    undistorted_threshold_db: float
    distorted_threshold_db: float

    def __post_init__(self) -> None:
        b = np.asarray(self.undistorted, dtype=bool)
        d = np.asarray(self.largely_distorted, dtype=bool)
        dips = np.asarray(self.dips, dtype=float)
        if b.shape != d.shape or b.shape != dips.shape:
            raise ValueError(
                f"mask shapes disagree: B {b.shape}, D {d.shape}, dips {dips.shape}"
            )
        if np.any(b & d):
            raise ValueError("an entry cannot be both undistorted and largely distorted")
        object.__setattr__(self, "undistorted", b)
        object.__setattr__(self, "largely_distorted", d)
        object.__setattr__(self, "dips", dips)

    @property
    def shape(self):
        return self.undistorted.shape

    @property
    def undistorted_fraction(self) -> float:
        return float(np.mean(self.undistorted))

    @property
    def distorted_fraction(self) -> float:
        return float(np.mean(self.largely_distorted))

    def known_entries(self, empty_rss: np.ndarray) -> np.ndarray:
        """Assemble ``X_I``: the survey-free known matrix.

        Undistorted entries equal the (fresh) empty-room RSS of their link;
        all other entries are zero and masked out by ``B`` in the objective.
        """
        empty = np.asarray(empty_rss, dtype=float)
        if empty.shape != (self.shape[0],):
            raise ValueError(
                f"empty_rss shape {empty.shape} does not match link count "
                f"{self.shape[0]}"
            )
        known = np.zeros(self.shape)
        known[self.undistorted] = np.broadcast_to(
            empty[:, None], self.shape
        )[self.undistorted]
        return known


def build_distortion_profile(
    fingerprint: FingerprintMatrix,
    *,
    undistorted_threshold_db: float = 1.0,
    distorted_threshold_db: float = 3.0,
) -> DistortionProfile:
    """Classify entries of a surveyed fingerprint matrix by dip magnitude.

    Args:
        fingerprint: The day-0 surveyed matrix (with its empty-room vector).
        undistorted_threshold_db: |dip| at or below this → undistorted.
            The paper notes measurement noise is "within 1~4 dBm"; 1 dB keeps
            only entries indistinguishable from the empty room.
        distorted_threshold_db: dip at or above this → largely distorted
            (direct path blocked).
    """
    check_positive("undistorted_threshold_db", undistorted_threshold_db)
    check_positive("distorted_threshold_db", distorted_threshold_db)
    if distorted_threshold_db <= undistorted_threshold_db:
        raise ValueError(
            "distorted_threshold_db must exceed undistorted_threshold_db "
            f"({distorted_threshold_db} <= {undistorted_threshold_db})"
        )
    dips = fingerprint.dips()
    undistorted = np.abs(dips) <= undistorted_threshold_db
    largely_distorted = dips >= distorted_threshold_db
    return DistortionProfile(
        undistorted=undistorted,
        largely_distorted=largely_distorted,
        dips=dips,
        undistorted_threshold_db=undistorted_threshold_db,
        distorted_threshold_db=distorted_threshold_db,
    )
