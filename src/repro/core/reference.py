"""Reference-location selection (the paper's property ii).

TafLoc refreshes the fingerprint database by re-measuring only ``n ≪ N``
*reference locations*. The paper selects "locations with RSS measurements
corresponding to the maximum linearly independent vectors" of the fingerprint
matrix — the classical column-subset-selection problem, for which
rank-revealing pivoted QR is the standard solution and is the default here.

Alternative strategies (greedy residual, k-means in column space, uniform
random) are provided for the ablation benchmark
``benchmarks/test_ablation_reference_selection.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np
import scipy.linalg

from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_matrix


@dataclass(frozen=True)
class ReferenceSelection:
    """The outcome of a reference-location selection.

    Attributes:
        cells: Selected cell indices, in selection order.
        scores: Per-selected-cell importance score (strategy-specific;
            pivoted QR reports the magnitude of the R diagonal).
        strategy: Which selector produced this.
    """

    cells: np.ndarray
    scores: np.ndarray
    strategy: str

    def __post_init__(self) -> None:
        cells = np.asarray(self.cells, dtype=int)
        scores = np.asarray(self.scores, dtype=float)
        if cells.ndim != 1 or scores.shape != cells.shape:
            raise ValueError(
                f"cells {cells.shape} and scores {scores.shape} must be equal-length "
                "1-D arrays"
            )
        if len(np.unique(cells)) != len(cells):
            raise ValueError("selected cells contain duplicates")
        object.__setattr__(self, "cells", cells)
        object.__setattr__(self, "scores", scores)

    @property
    def count(self) -> int:
        return len(self.cells)


def select_references_pivoted_qr(matrix: np.ndarray, count: int) -> ReferenceSelection:
    """Column subset selection via rank-revealing QR with column pivoting.

    The first ``count`` pivot columns of QR-with-pivoting are a numerically
    robust realization of "the maximum linearly independent vectors" of the
    matrix: each pivot is the column with the largest residual norm once the
    previously chosen columns are projected out.
    """
    matrix = check_matrix("matrix", matrix)
    count = _check_count(count, matrix.shape[1])
    # Centering removes the large common offset (all RSS near e.g. -45 dBm)
    # so pivoting responds to fingerprint *structure*, not the shared mean.
    centered = matrix - matrix.mean(axis=1, keepdims=True)
    _, r, piv = scipy.linalg.qr(centered, mode="economic", pivoting=True)
    cells = piv[:count]
    diag = np.abs(np.diag(r))
    scores = diag[: len(cells)] if diag.size >= len(cells) else np.pad(
        diag, (0, len(cells) - diag.size)
    )
    return ReferenceSelection(cells=cells, scores=scores[:count], strategy="pivoted_qr")


def select_references_greedy(matrix: np.ndarray, count: int) -> ReferenceSelection:
    """Greedy column selection by maximum residual after projection.

    Mathematically the same criterion as pivoted QR but implemented as an
    explicit greedy loop; kept as an independently coded cross-check (the
    ablation test asserts the two agree on easy instances) and as a template
    for custom scoring rules.
    """
    matrix = check_matrix("matrix", matrix)
    count = _check_count(count, matrix.shape[1])
    residual = matrix - matrix.mean(axis=1, keepdims=True)
    floor = 1e-9 * max(float(np.linalg.norm(residual)), 1.0)
    chosen: list[int] = []
    scores: list[float] = []
    for _ in range(count):
        norms = np.linalg.norm(residual, axis=0)
        norms[chosen] = -1.0
        pick = int(np.argmax(norms))
        norm = float(norms[pick])
        if norm <= floor:
            # Remaining columns are numerically dependent on the chosen set.
            break
        chosen.append(pick)
        scores.append(norm)
        direction = residual[:, pick] / norm
        residual = residual - np.outer(direction, direction @ residual)
    return ReferenceSelection(
        cells=np.array(chosen), scores=np.array(scores), strategy="greedy"
    )


def select_references_kmeans(
    matrix: np.ndarray, count: int, *, seed: RandomState = 0, iterations: int = 50
) -> ReferenceSelection:
    """Cluster columns with k-means and pick the column nearest each centroid.

    Spreads references across distinct fingerprint "shapes" rather than
    maximizing independence; competitive when noise dominates.
    """
    matrix = check_matrix("matrix", matrix)
    count = _check_count(count, matrix.shape[1])
    rng = as_generator(seed)
    columns = matrix.T  # observations are columns of the fingerprint matrix
    n = columns.shape[0]
    centroids = columns[rng.choice(n, size=count, replace=False)]
    assignment = np.zeros(n, dtype=int)
    for _ in range(iterations):
        distances = np.linalg.norm(columns[:, None, :] - centroids[None, :, :], axis=2)
        new_assignment = np.argmin(distances, axis=1)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for k in range(count):
            members = columns[assignment == k]
            if len(members):
                centroids[k] = members.mean(axis=0)
    distances = np.linalg.norm(columns[:, None, :] - centroids[None, :, :], axis=2)
    cells: list[int] = []
    scores: list[float] = []
    for k in range(count):
        order = np.argsort(distances[:, k])
        pick = next((int(i) for i in order if int(i) not in cells), None)
        if pick is None:
            continue
        cells.append(pick)
        scores.append(float(-distances[pick, k]))
    return ReferenceSelection(
        cells=np.array(cells), scores=np.array(scores), strategy="kmeans"
    )


def select_references_random(
    matrix: np.ndarray, count: int, *, seed: RandomState = 0
) -> ReferenceSelection:
    """Uniform random selection — the ablation floor."""
    matrix = check_matrix("matrix", matrix)
    count = _check_count(count, matrix.shape[1])
    rng = as_generator(seed)
    cells = rng.choice(matrix.shape[1], size=count, replace=False)
    return ReferenceSelection(
        cells=np.asarray(cells, dtype=int),
        scores=np.zeros(count),
        strategy="random",
    )


_STRATEGIES: Dict[str, Callable[..., ReferenceSelection]] = {
    "pivoted_qr": select_references_pivoted_qr,
    "greedy": select_references_greedy,
    "kmeans": select_references_kmeans,
    "random": select_references_random,
}


def select_references(
    matrix: np.ndarray,
    count: int,
    *,
    strategy: str = "pivoted_qr",
    seed: RandomState = 0,
) -> ReferenceSelection:
    """Dispatch to a named selection strategy.

    Args:
        matrix: Fingerprint matrix, shape ``(links, cells)``.
        count: Number of reference locations to pick (the paper uses 10).
        strategy: One of ``pivoted_qr`` (default, the paper's criterion),
            ``greedy``, ``kmeans``, ``random``.
        seed: Randomness for the stochastic strategies.
    """
    try:
        selector = _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {sorted(_STRATEGIES)}"
        ) from None
    if strategy in ("kmeans", "random"):
        return selector(matrix, count, seed=seed)
    return selector(matrix, count)


def _check_count(count: int, cells: int) -> int:
    if not 1 <= count <= cells:
        raise ValueError(f"count must lie in [1, {cells}], got {count}")
    return int(count)
