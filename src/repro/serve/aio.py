"""Asyncio wire front-end: pipelined NDJSON over TCP and unix sockets.

The PR-5 front-ends cost one thread and one blocking round trip per
request — ~3.1k q/s single-query over HTTP vs ~20k in-process. This
module rebuilds the wire path as an event loop:

* :class:`AioFrontend` — one asyncio server (TCP, plus an optional unix
  socket) speaking the NDJSON protocol of :mod:`repro.serve.protocol`
  over persistent connections. Requests carrying an ``"id"`` are
  **pipelined**: many may be in flight per connection, responses are
  matched by the echoed id and may complete out of order. Requests
  without an id are answered strictly in request order, which keeps the
  one-at-a-time PR-5 line transports (``tcp://`` / ``unix://`` in
  :class:`~repro.serve.frontend.ServiceClient`) compatible unchanged.
* :class:`AsyncServiceClient` — the asyncio client: one connection, a
  background reader task routing responses to per-request futures, so N
  ``call()`` coroutines naturally keep N requests in flight
  (:meth:`AsyncServiceClient.pipeline_queries` drives per-frame calls
  with ``depth`` concurrent on the wire).

**Transparent micro-batching.** Concurrent :meth:`AsyncServiceClient.
query` calls that share ``(site, day, frame_length)`` within one
event-loop tick are coalesced into a single ``query_batch`` wire
request
(up to ``autobatch`` frames), amortizing the JSON/syscall cost of the
round trip. The request carries ``"per_frame": true`` so the server
runs each frame through the exact single-query code path — a true
batched GEMM uses a different BLAS reduction order and can flip the
last mantissa bits at realistic link/cell counts — keeping every
coalesced answer bit-identical to a lone ``query``. ``autobatch=0``
disables coalescing entirely.

**Streamed ``query_trace``.** A long trace would otherwise buffer one
whole JSON array on both ends. With ``"stream": true`` the server
computes the trace in **one** backend call — chunking the compute would
change BLAS reduction order and could break exact-distance ties,
violating bit-identity — then emits the result as header + chunk +
``end`` NDJSON lines (:func:`~repro.serve.protocol.iter_trace_stream`),
draining after each chunk so server-side buffering stays flat. Uploads
stream symmetrically via ``"frames_follow": true`` continuation lines.
Peak per-message bytes on the client (:attr:`AsyncServiceClient.
peak_message_bytes`) is therefore independent of trace length — the
benchmark's flat-buffering gate.

**The loop never parks on a backend.** Backends declare a
``wire_dispatch`` hint: ``"inline"`` (:class:`~repro.serve.service.
LocalizationService` — warm queries are µs-scale numpy calls, cheaper
inline than a thread handoff) or ``"offload"`` (:class:`~repro.serve.
shard.ShardedService` — a routed call can park on a worker pipe, so it
runs on a thread pool and the loop keeps serving other requests).

Bit-identity with in-process answers is unchanged: same ``dispatch``,
same JSON float round-trip, same 400/404/409/503 error contract, gated
by ``serve/check.py --only wire`` across all three transports.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import urlsplit

import numpy as np

from repro.serve.frontend import (
    DEFAULT_MAX_REQUEST_BYTES,
    RemoteBatchResult,
    RemoteMatchResult,
)
from repro.serve.protocol import (
    ERROR_TYPES,
    STREAM_CHUNK_FRAMES,
    DropResponse,
    decode,
    dispatch,
    encode,
    iter_trace_stream,
    merge_trace_stream,
)
from repro.sim.trace import LiveTrace

__all__ = ["AioFrontend", "AsyncServiceClient"]

#: Thread-pool width for ``wire_dispatch == "offload"`` backends. Sized
#: to the sharded router's useful concurrency (one in-flight call per
#: shard pipe plus headroom), not the connection count — excess pool
#: threads would only contend on the per-shard locks.
DEFAULT_DISPATCH_WORKERS = 8


def _set_nodelay(writer: asyncio.StreamWriter) -> None:
    sock = writer.get_extra_info("socket")
    if sock is not None and sock.family in (
        socket.AF_INET,
        getattr(socket, "AF_INET6", socket.AF_INET),
    ):
        # Same reasoning as the threaded front-end: small request/response
        # pairs stall ~40 ms on Nagle + delayed ACK without this.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class AioFrontend:
    """Asyncio front-end over a service backend (in-process or sharded).

    The event loop runs on a daemon thread, so the start/stop surface
    matches the threaded front-ends: ``with AioFrontend(svc) as f:`` for
    tests and benchmarks, :meth:`serve_forever` to block the calling
    thread (the CLI ``serve --transport aio`` path). ``port=0`` binds an
    ephemeral port; read :attr:`address` (``tcp://host:port``) after
    :meth:`start`. Pass ``unix_path`` to additionally serve the same
    protocol on a unix socket (:attr:`unix_address`).

    Args:
        backend: Anything with the service query surface. Its
            ``wire_dispatch`` attribute ("inline"/"offload", default
            offload) decides whether requests run on the loop or on a
            dispatch thread pool.
        host/port: TCP bind address (``port=0`` = ephemeral).
        unix_path: Optional unix-socket path to serve as well.
        max_request_bytes: Per-line request cap; an overlong line gets a
            400 and a severed connection (mid-line streams cannot
            resync), mirroring the threaded front-ends.
        dispatch_workers: Thread-pool width for offload backends.
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        unix_path: Optional[str] = None,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        dispatch_workers: int = DEFAULT_DISPATCH_WORKERS,
    ) -> None:
        self.backend = backend
        self._host_arg, self._port_arg = host, int(port)
        self.unix_path = None if unix_path is None else str(unix_path)
        self.max_request_bytes = int(max_request_bytes)
        self._mode = getattr(backend, "wire_dispatch", "offload")
        self._dispatch_workers = int(dispatch_workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._sockname: Optional[Tuple[str, int]] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "AioFrontend":
        """Serve on a daemon thread; returns self (``with X().start()``)."""
        if self._thread is None:
            self._ready.clear()
            self._startup_error = None
            self._thread = threading.Thread(
                target=self._run, daemon=True, name="AioFrontend"
            )
            self._thread.start()
            self._ready.wait(timeout=30.0)
            if self._startup_error is not None:
                error, self._startup_error = self._startup_error, None
                self._thread.join(timeout=5.0)
                self._thread = None
                raise error
        return self

    def serve_forever(self) -> None:
        """Serve, blocking the calling thread (the CLI path)."""
        self.start()
        thread = self._thread
        while thread is not None and thread.is_alive():
            thread.join(timeout=0.5)

    def close(self) -> None:
        thread, self._thread = self._thread, None
        if thread is None:
            return
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        if self.unix_path and os.path.exists(self.unix_path):
            os.unlink(self.unix_path)

    def __enter__(self) -> "AioFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def host(self) -> str:
        return self._sockname[0]

    @property
    def port(self) -> int:
        return self._sockname[1]

    @property
    def address(self) -> str:
        """``tcp://host:port`` — feed it to either client class."""
        return f"tcp://{self.host}:{self.port}"

    @property
    def unix_address(self) -> Optional[str]:
        return None if self.unix_path is None else f"unix://{self.unix_path}"

    # -- event loop ----------------------------------------------------
    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._open())
        except BaseException as error:  # noqa: BLE001 - crossed to starter
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self._shutdown())
            loop.close()

    async def _open(self) -> None:
        if self._mode != "inline" and self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._dispatch_workers,
                thread_name_prefix="aio-dispatch",
            )
        # limit bounds StreamReader.readline: an overlong request line
        # surfaces as ValueError in the connection loop -> 400 + sever.
        limit = self.max_request_bytes + 2
        server = await asyncio.start_server(
            self._serve_connection, self._host_arg, self._port_arg, limit=limit
        )
        self._servers.append(server)
        self._sockname = server.sockets[0].getsockname()[:2]
        if self.unix_path is not None:
            if os.path.exists(self.unix_path):
                os.unlink(self.unix_path)
            self._servers.append(
                await asyncio.start_unix_server(
                    self._serve_connection, self.unix_path, limit=limit
                )
            )

    async def _shutdown(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        tasks = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- connection handling -------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        _set_nodelay(writer)
        lock = asyncio.Lock()
        tasks: set = set()
        uploads: Dict[Any, Dict[str, Any]] = {}
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line never terminated within the cap; the
                    # stream is mid-line and cannot resync: 400 + sever.
                    await self._send(
                        writer,
                        lock,
                        {
                            "status": 400,
                            "body": {
                                "error": "ValueError",
                                "message": "request line exceeds the "
                                f"{self.max_request_bytes}-byte limit",
                            },
                        },
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode(line)
                except ValueError as error:
                    await self._send(
                        writer,
                        lock,
                        {
                            "status": 400,
                            "body": {
                                "error": "ValueError",
                                "message": str(error),
                            },
                        },
                    )
                    continue
                severed = await self._handle_message(
                    message, uploads, writer, lock, tasks
                )
                if severed:
                    break
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Swallowing the cancel lets a torn-down handler task end
                # cleanly instead of tripping asyncio.streams' completion
                # callback (task.exception() raises on cancelled tasks).
                pass

    async def _handle_message(
        self, message, uploads, writer, lock, tasks
    ) -> bool:
        """Route one decoded request line; True = sever the connection."""
        req_id = message.get("id")
        if "method" in message:
            method = str(message.get("method", ""))
            stream = bool(message.get("stream"))
            chunk = message.get("chunk", STREAM_CHUNK_FRAMES)
            if message.get("frames_follow"):
                # Streamed upload: params arrive now, frames in
                # continuation lines matched by id (see _handle_upload).
                uploads[req_id] = {
                    "method": method,
                    "params": dict(message.get("params") or {}),
                    "frames": [],
                    "stream": stream,
                    "chunk": chunk,
                }
                return False
            return await self._spawn(
                writer,
                lock,
                tasks,
                req_id,
                method,
                message.get("params"),
                stream,
                chunk,
            )
        if "frames" in message or message.get("end"):
            return await self._handle_upload(
                message, uploads, writer, lock, tasks
            )
        await self._send(
            writer,
            lock,
            {
                "id": req_id,
                "status": 400,
                "body": {
                    "error": "ValueError",
                    "message": "message carries neither a method nor a "
                    "stream continuation",
                },
            },
        )
        return False

    async def _handle_upload(
        self, message, uploads, writer, lock, tasks
    ) -> bool:
        req_id = message.get("id")
        upload = uploads.get(req_id)
        if upload is None:
            await self._send(
                writer,
                lock,
                {
                    "id": req_id,
                    "status": 400,
                    "body": {
                        "error": "ValueError",
                        "message": "continuation line for unknown request "
                        f"id {req_id!r}",
                    },
                },
            )
            return False
        if "frames" in message:
            try:
                # Parse each chunk into float64 immediately: server-side
                # peak buffering stays one chunk line, not one trace.
                upload["frames"].append(
                    np.asarray(message["frames"], dtype=float)
                )
            except (TypeError, ValueError):
                del uploads[req_id]
                await self._send(
                    writer,
                    lock,
                    {
                        "id": req_id,
                        "status": 400,
                        "body": {
                            "error": "ValueError",
                            "message": "frames must be a numeric array",
                        },
                    },
                )
            return False
        # end marker: assemble and dispatch like an inline request.
        del uploads[req_id]
        params = upload["params"]
        parts = [np.atleast_2d(part) for part in upload["frames"]]
        try:
            params["frames"] = (
                np.concatenate(parts, axis=0)
                if parts
                else np.empty((0, 0), dtype=float)
            )
        except ValueError as error:
            await self._send(
                writer,
                lock,
                {
                    "id": req_id,
                    "status": 400,
                    "body": {"error": "ValueError", "message": str(error)},
                },
            )
            return False
        return await self._spawn(
            writer,
            lock,
            tasks,
            req_id,
            upload["method"],
            params,
            upload["stream"],
            upload["chunk"],
        )

    async def _spawn(
        self, writer, lock, tasks, req_id, method, params, stream, chunk
    ) -> bool:
        if req_id is None:
            # No id -> the client cannot match out-of-order responses;
            # answer sequentially so responses stay in request order.
            return await self._answer(
                writer, lock, req_id, method, params, stream, chunk
            )
        task = asyncio.get_running_loop().create_task(
            self._answer(writer, lock, req_id, method, params, stream, chunk)
        )
        tasks.add(task)
        task.add_done_callback(tasks.discard)
        return False

    async def _answer(
        self, writer, lock, req_id, method, params, stream, chunk
    ) -> bool:
        try:
            status, body = await self._dispatch(method, params)
        except DropResponse:
            # Fault injection: sever the connection instead of replying.
            writer.close()
            return True
        except asyncio.CancelledError:
            raise
        try:
            if stream and status == 200 and method == "query_trace":
                try:
                    chunk = max(1, int(chunk))
                except (TypeError, ValueError):
                    chunk = STREAM_CHUNK_FRAMES
                for part in iter_trace_stream(body, chunk):
                    if part.get("stream"):
                        part["status"] = status
                    if req_id is not None:
                        part["id"] = req_id
                    # Drain per chunk: server-side write buffering stays
                    # one chunk deep regardless of trace length.
                    await self._send(writer, lock, part)
            else:
                response: Dict[str, Any] = {"status": status, "body": body}
                if req_id is not None:
                    response["id"] = req_id
                await self._send(writer, lock, response)
        except (ConnectionError, OSError):
            return True
        return False

    async def _dispatch(self, method, params) -> Tuple[int, Dict[str, Any]]:
        if self._mode == "inline":
            return dispatch(self.backend, method, params)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, dispatch, self.backend, method, params
        )

    async def _send(self, writer, lock, payload: Dict[str, Any]) -> None:
        data = encode(payload)
        async with lock:
            writer.write(data)
            await writer.drain()


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
class AsyncServiceClient:
    """Pipelined asyncio client for the aio front-end.

    One persistent connection; a background reader task routes responses
    to per-request futures by id, so any number of concurrent ``call()``
    coroutines share the connection with their requests in flight at
    once. Contract errors re-raise as the in-process exception types,
    exactly like :class:`~repro.serve.frontend.ServiceClient`.

    Transport errors surface raw: retry policy (idempotence bookkeeping,
    backoff, jitter) stays the sync client's job — this client exists
    for the throughput path, where the caller owns failure handling.

    Use from a single event loop (``async with AsyncServiceClient(...)``).
    :attr:`peak_message_bytes` records the largest single NDJSON line
    sent or received since the last :meth:`reset_peak` — the
    flat-buffering gate for streamed traces measures it.

    Args:
        address: ``tcp://host:port`` or ``unix:///path``.
        timeout: Seconds to wait for any single response future.
        stream_chunk: Frames per chunk for streamed traces (both
            directions); the server honors it via the request's
            ``chunk`` field.
        limit: Reader buffer cap, i.e. the largest single response line
            accepted (matters only for *non*-streamed long traces).
        autobatch: Transparent micro-batching window for :meth:`query`:
            concurrent single queries landing on the same event-loop
            tick with the same ``(site, day, frame length)`` coalesce
            into one wire ``query_batch`` of at most this many frames,
            then fan back out — bit-identical per-frame answers, one
            round trip per window. ``0`` disables (plain per-frame
            ``query`` requests).
    """

    def __init__(
        self,
        address: str,
        *,
        timeout: float = 30.0,
        stream_chunk: int = STREAM_CHUNK_FRAMES,
        limit: int = DEFAULT_MAX_REQUEST_BYTES,
        autobatch: int = 32,
    ) -> None:
        self.address = str(address)
        parts = urlsplit(self.address)
        if parts.scheme == "tcp":
            if parts.hostname is None or parts.port is None:
                raise ValueError(
                    f"tcp address must be tcp://host:port, got {address!r}"
                )
            self._target: Tuple[str, Any] = ("tcp", (parts.hostname, parts.port))
        elif parts.scheme == "unix":
            path = parts.path or parts.netloc
            if not path:
                raise ValueError(
                    f"unix address must be unix:///path, got {address!r}"
                )
            self._target = ("unix", path)
        else:
            raise ValueError(
                f"unsupported address {address!r} (use tcp:// or unix://)"
            )
        self._timeout = float(timeout)
        self._stream_chunk = max(1, int(stream_chunk))
        self._limit = int(limit)
        self._autobatch = max(0, int(autobatch))
        self._batch_groups: Dict[Tuple, List[Tuple]] = {}
        self._batch_flush_scheduled = False
        self._ids = itertools.count(1)
        self._pending: Dict[Any, Dict[str, Any]] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        # Lazily loop-bound (3.10+), so creating them here is safe; the
        # connect lock keeps concurrent first calls from double-dialing.
        self._send_lock = asyncio.Lock()
        self._connect_lock = asyncio.Lock()
        self.peak_message_bytes = 0

    def reset_peak(self) -> None:
        self.peak_message_bytes = 0

    # -- connection ----------------------------------------------------
    async def connect(self) -> "AsyncServiceClient":
        async with self._connect_lock:
            if self._writer is None:
                kind, target = self._target
                if kind == "tcp":
                    host, port = target
                    self._reader, self._writer = await asyncio.wait_for(
                        asyncio.open_connection(host, port, limit=self._limit),
                        self._timeout,
                    )
                    _set_nodelay(self._writer)
                else:
                    self._reader, self._writer = await asyncio.wait_for(
                        asyncio.open_unix_connection(
                            target, limit=self._limit
                        ),
                        self._timeout,
                    )
                self._reader_task = asyncio.get_running_loop().create_task(
                    self._read_loop()
                )
        return self

    async def close(self) -> None:
        task, self._reader_task = self._reader_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except BaseException:  # noqa: BLE001 - best-effort teardown
                pass
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._fail_pending(ConnectionError("client closed"))
        # Queued-but-unflushed micro-batch entries are not in _pending;
        # fail them too so no caller hangs on a dead client.
        groups, self._batch_groups = self._batch_groups, {}
        for entries in groups.values():
            for _, future in entries:
                if not future.done():
                    future.set_exception(ConnectionError("client closed"))

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                if len(line) > self.peak_message_bytes:
                    self.peak_message_bytes = len(line)
                self._route(decode(line))
        except BaseException as error:  # noqa: BLE001 - fan out to callers
            self._fail_pending(error)

    def _route(self, message: Dict[str, Any]) -> None:
        pending = self._pending.get(message.get("id"))
        if pending is None:
            return  # response for an abandoned (timed-out) request
        if message.get("stream"):
            pending["header"] = message
            return
        if "seq" in message:
            pending["parts"].append(message)
            return
        del self._pending[message.get("id")]
        future = pending["future"]
        if future.done():
            return
        if message.get("end"):
            future.set_result(
                ("stream", pending["header"] or {}, pending["parts"])
            )
        else:
            future.set_result(("plain", message))

    def _fail_pending(self, error: BaseException) -> None:
        if not isinstance(error, Exception):
            error = ConnectionError(f"connection torn down: {error!r}")
        pending, self._pending = self._pending, {}
        for state in pending.values():
            future = state["future"]
            if not future.done():
                future.set_exception(error)

    # -- request plumbing ----------------------------------------------
    async def _send(self, payload: Dict[str, Any]) -> None:
        data = encode(payload)
        if len(data) > self.peak_message_bytes:
            self.peak_message_bytes = len(data)
        async with self._send_lock:
            self._writer.write(data)
            await self._writer.drain()

    def _register(self) -> Tuple[Any, "asyncio.Future"]:
        req_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = {"future": future, "header": None, "parts": []}
        return req_id, future

    async def _finish(self, req_id, future) -> Tuple[int, Dict[str, Any]]:
        try:
            result = await asyncio.wait_for(future, self._timeout)
        except BaseException:
            self._pending.pop(req_id, None)
            raise
        if result[0] == "plain":
            message = result[1]
            return int(message.get("status", 500)), message.get("body", {})
        _, header, parts = result
        return int(header.get("status", 200)), merge_trace_stream(
            header, parts
        )

    @staticmethod
    def _check(status: int, body: Dict[str, Any]) -> Dict[str, Any]:
        if status >= 400:
            error = ERROR_TYPES.get(body.get("error", ""), RuntimeError)
            raise error(body.get("message", f"server returned {status}"))
        return body

    async def call(
        self, method: str, params: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One protocol request; any number may be awaited concurrently."""
        await self.connect()
        req_id, future = self._register()
        await self._send(
            {"id": req_id, "method": method, "params": params or {}}
        )
        return self._check(*await self._finish(req_id, future))

    # -- service surface -----------------------------------------------
    async def query(self, site: str, rss, day: float) -> RemoteMatchResult:
        """One single-frame query (transparently micro-batched).

        With ``autobatch`` >= 2 (the default), concurrent ``query()``
        calls ready on the same event-loop tick that share
        ``(site, day, frame length)`` coalesce into one wire
        ``query_batch`` (with ``best_scores``) and fan back out: same
        single-query semantics, bit-identical cell/position/score, one
        round trip per window instead of per call. The coalescing
        window is a single loop pass, so an isolated query gains no
        latency — it just goes out alone.
        """
        frame = np.asarray(rss, dtype=float).tolist()
        if self._autobatch < 2:
            return await self._query_plain(site, frame, day)
        await self.connect()
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        key = (str(site), float(day), len(frame))
        self._batch_groups.setdefault(key, []).append((frame, future))
        if not self._batch_flush_scheduled:
            self._batch_flush_scheduled = True
            # call_soon runs after every query() already ready this
            # tick has queued its frame — that is the whole window.
            loop.call_soon(self._flush_batches, loop)
        return await future

    async def _query_plain(
        self, site: str, frame: List[float], day: float
    ) -> RemoteMatchResult:
        body = await self.call(
            "query", {"site": site, "rss": frame, "day": day}
        )
        return RemoteMatchResult(
            cell=int(body["cell"]),
            position=(body["position"][0], body["position"][1]),
            score=float(body["score"]),
            stale=bool(body.get("stale", False)),
        )

    def _flush_batches(self, loop: asyncio.AbstractEventLoop) -> None:
        self._batch_flush_scheduled = False
        groups, self._batch_groups = self._batch_groups, {}
        for (site, day, _), entries in groups.items():
            for start in range(0, len(entries), self._autobatch):
                loop.create_task(
                    self._query_coalesced(
                        site, day, entries[start : start + self._autobatch]
                    )
                )

    async def _query_coalesced(
        self, site: str, day: float, entries: List[Tuple]
    ) -> None:
        try:
            if len(entries) == 1:
                results = [await self._query_plain(site, entries[0][0], day)]
            else:
                # ``per_frame`` makes the server run each frame through the
                # single-query code path, so coalescing N queries into one
                # round trip cannot change a single bit of any answer.
                body = await self.call(
                    "query_batch",
                    {
                        "site": site,
                        "frames": [frame for frame, _ in entries],
                        "day": day,
                        "per_frame": True,
                    },
                )
                stale = bool(body.get("stale", False))
                cells, positions = body["cells"], body["positions"]
                best = body["best"]
                results = [
                    RemoteMatchResult(
                        cell=int(cells[index]),
                        position=(positions[index][0], positions[index][1]),
                        score=float(best[index]),
                        stale=stale,
                    )
                    for index in range(len(entries))
                ]
        except Exception as error:  # noqa: BLE001 - fan out to callers
            for _, future in entries:
                if not future.done():
                    future.set_exception(error)
            return
        for (_, future), result in zip(entries, results):
            if not future.done():
                future.set_result(result)

    @staticmethod
    def _batch_result(body: Dict[str, Any]) -> RemoteBatchResult:
        return RemoteBatchResult(
            cells=np.asarray(body["cells"], dtype=int),
            positions=np.asarray(body["positions"], dtype=float),
            scores=(
                np.asarray(body["scores"], dtype=float)
                if "scores" in body
                else None
            ),
            stale=bool(body.get("stale", False)),
        )

    async def query_batch(
        self, site: str, frames, day: float, *, include_scores: bool = False
    ) -> RemoteBatchResult:
        body = await self.call(
            "query_batch",
            {
                "site": site,
                "frames": np.asarray(frames).tolist(),
                "day": day,
                "include_scores": include_scores,
            },
        )
        return self._batch_result(body)

    async def query_trace(
        self,
        site: str,
        trace: Union[LiveTrace, np.ndarray],
        day: Optional[float] = None,
        *,
        include_scores: bool = False,
        stream: bool = True,
        chunk: Optional[int] = None,
    ) -> RemoteBatchResult:
        """Localize a trace; streamed by default.

        With ``stream=True`` both the frame upload and the result come
        back as bounded NDJSON chunks, so peak per-message buffering is
        independent of trace length; the reassembled result is
        bit-identical to the non-streamed (and in-process) answer.
        """
        if isinstance(trace, LiveTrace):
            frames, day = trace.rss, trace.day
        elif day is None:
            raise ValueError("day is required when trace is a frames array")
        else:
            frames = trace
        frames = np.asarray(frames, dtype=float)
        params = {
            "site": site,
            "day": day,
            "include_scores": include_scores,
        }
        if not stream:
            body = await self.call(
                "query_trace", dict(params, frames=frames.tolist())
            )
            return self._batch_result(body)
        chunk = self._stream_chunk if chunk is None else max(1, int(chunk))
        await self.connect()
        req_id, future = self._register()
        await self._send(
            {
                "id": req_id,
                "method": "query_trace",
                "params": params,
                "stream": True,
                "chunk": chunk,
                "frames_follow": True,
            }
        )
        for start in range(0, frames.shape[0], chunk):
            # Slice-then-tolist: the JSON encode buffer holds one chunk,
            # never the whole trace.
            await self._send(
                {"id": req_id, "frames": frames[start : start + chunk].tolist()}
            )
        await self._send({"id": req_id, "end": True})
        body = self._check(*await self._finish(req_id, future))
        return self._batch_result(body)

    async def pipeline_queries(
        self, site: str, frames, day: float, *, depth: int = 32
    ) -> List[RemoteMatchResult]:
        """Per-frame single queries with up to ``depth`` in flight.

        The transparent-batching mode: callers write one-query-at-a-time
        code, the connection carries ``depth`` requests concurrently and
        results come back in frame order. Each answer is bit-identical
        to the corresponding sequential single query.
        """
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        frames = np.asarray(frames, dtype=float)
        semaphore = asyncio.Semaphore(depth)

        async def one(row) -> RemoteMatchResult:
            async with semaphore:
                return await self.query(site, row, day)

        return list(
            await asyncio.gather(*(one(row.tolist()) for row in frames))
        )

    async def warm(self, sites=None) -> List[str]:
        params = {} if sites is None else {"sites": list(sites)}
        return list((await self.call("warm", params))["warmed"])

    async def sites(self) -> List[str]:
        return (await self.call("sites"))["sites"]

    async def health(self) -> Dict[str, Any]:
        return await self.call("health")

    async def stats(self) -> Dict[str, Any]:
        return await self.call("stats")

    # Same wrapper-per-wire-method surface as the sync ServiceClient
    # (RL-W02 parity): code written against one client runs against the
    # other by swapping awaits in.
    async def update(
        self, site: str, day: float, *, cold: str = "raise"
    ) -> Dict[str, Any]:
        return await self.call(
            "update", {"site": site, "day": day, "cold": cold}
        )

    async def commission(self, site: str, day: float) -> Dict[str, Any]:
        return await self.call("commission", {"site": site, "day": day})

    async def staleness(self, site: str, day: float) -> Optional[float]:
        body = await self.call("staleness", {"site": site, "day": day})
        return body["staleness"]

    async def drift(
        self, site: str, day: float, frames: int = 32
    ) -> Optional[Dict[str, float]]:
        """Measured drift reading for ``site`` at ``day`` (None when cold)."""
        body = await self.call(
            "drift", {"site": site, "day": day, "frames": frames}
        )
        return body.get("drift")

    async def scrub(self, sites=None) -> Dict[str, Any]:
        """Run one anti-entropy scrub pass on a sharded backend."""
        params = {} if sites is None else {"sites": list(sites)}
        return await self.call("scrub", params)

    async def site_summary(self, site: str) -> Dict[str, Any]:
        return await self.call("site_summary", {"site": site})

    async def summary(self) -> List[Dict[str, Any]]:
        return (await self.call("summary"))["sites"]

    async def resize(self, shards: int) -> Dict[str, Any]:
        """Resize a sharded backend to ``shards`` workers (moved sites in
        the returned body). Non-idempotent: never auto-retried."""
        return await self.call("resize", {"shards": shards})
