"""Fault injection: kill, hang, and delay the serving fleet on purpose.

The resilience claims of the sharded router (:mod:`repro.serve.shard`) —
zero failed queries under ``kill -9`` with ``R >= 2``, bounded recovery
time, snapshot-warmed respawns — are only claims until something actually
kills the workers. This module is that something, in three layers:

* :class:`FaultInjector` attacks a live :class:`ShardedService` at the
  *process* level: ``kill`` (SIGKILL, the disorderly crash), ``hang``
  (the worker stalls mid-protocol, exercising the router's timeout +
  pipe-desync handling), ``delay`` (every later reply is slowed,
  perturbing tail latency without failing anything), and ``corrupt``
  (a seed-deterministic bit-flip in one replica's live fingerprint
  state — the worker keeps answering, *wrongly*, which only the
  anti-entropy scrub / quorum read path can catch).
* :class:`FlakyService` wraps any service backend at the *wire* level:
  it drops or delays responses per the schedule, raising
  :class:`~repro.serve.protocol.DropResponse` which the transports
  translate into a severed connection — the client-side retry path's
  test double.
* :class:`FaultSchedule` makes runs reproducible: a seed-driven plan of
  ``(operation index, action)`` events derived from the same
  :func:`~repro.util.rng.task_key` streams as everything else in the
  repo, so a resilience benchmark with seed 2016 injects the same faults
  on every machine.

Everything here is test/benchmark machinery — production code never
imports it — but it lives in ``src`` because the CI resilience gate
(:mod:`repro.serve.check`) and the benchmark
(:func:`repro.eval.benchmark.bench_resilience`) both drive it.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.protocol import DropResponse
from repro.serve.shard import ShardedService
from repro.util.rng import counter_stream, task_key

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FlakyService",
    "corrupt_pipeline_state",
    "corrupt_snapshot_file",
]

#: Actions a schedule can carry (order fixes the seed→action mapping).
_ACTIONS = ("kill", "hang", "delay", "drop", "corrupt")


def corrupt_pipeline_state(service, site: str, seed: int = 0) -> Dict[str, object]:
    """Bit-flip one value of the site's *live* fingerprint database.

    Runs inside a worker (via the ``__fault__`` control channel): picks a
    seed-deterministic ``(epoch, flat index, mantissa bit)`` and XORs that
    bit of the float64 in place, then bumps the database version so the
    matcher cache rebuilds and queries actually see the corruption. Flips
    only mantissa bits (2..51), so the value stays finite and the
    pipeline keeps answering — plausibly, silently, *wrongly*: exactly the
    failure the anti-entropy scrub exists to catch. Returns what was
    flipped so a test can reason about the blast radius.
    """
    system = service.pipeline(site)
    epochs = system.database.epochs()
    if not epochs:
        raise RuntimeError(f"site {site!r} has no epochs to corrupt")
    draws = counter_stream(
        task_key(int(seed), "corrupt-state", str(site)), 0
    ).integers(0, 2**62, size=3)
    epoch_index = int(draws[0] % len(epochs))
    epoch = epochs[epoch_index]
    flat = int(draws[1] % epoch.values.size)
    bit = 2 + int(draws[2] % 50)  # mantissa-only: value stays finite
    # Index the array in place — the stored matrix may be a
    # non-contiguous view, where reshape(-1) would flip a silent copy.
    coords = np.unravel_index(flat, epoch.values.shape)
    before = float(epoch.values[coords])
    scratch = np.array([before])
    scratch.view(np.uint64)[0] ^= np.uint64(1) << np.uint64(bit)
    epoch.values[coords] = scratch[0]
    # The database contents changed behind the version counter's back;
    # bump it so matcher_for_day() drops its cached kernels.
    system.database._version += 1
    return {
        "site": site,
        "epoch": epoch_index,
        "day": float(epoch.day),
        "index": flat,
        "bit": bit,
        "before": before,
        "after": float(epoch.values[coords]),
    }


def corrupt_snapshot_file(path, seed: int = 0) -> Dict[str, object]:
    """Flip one seed-deterministic bit of a snapshot archive on disk.

    The durable-state counterpart of :func:`corrupt_pipeline_state`: the
    file keeps existing and keeps its name, but its digest no longer
    validates — the snapshot store's scrub must detect and quarantine it
    rather than let a later restore load garbage.
    """
    target = Path(path)
    data = bytearray(target.read_bytes())
    if not data:
        raise ValueError(f"snapshot {target} is empty; nothing to corrupt")
    draws = counter_stream(
        task_key(int(seed), "corrupt-snapshot", target.name), 0
    ).integers(0, 2**62, size=2)
    offset = int(draws[0] % len(data))
    bit = int(draws[1] % 8)
    data[offset] ^= 1 << bit
    target.write_bytes(bytes(data))
    return {"path": str(target), "offset": offset, "bit": bit}


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault: at operation ``at``, do ``action`` to ``target``.

    ``target`` is a shard index for process-level actions and ignored for
    wire-level ones; ``seconds`` parameterizes ``hang``/``delay``.
    """

    at: int
    action: str
    target: int = 0
    seconds: float = 0.0


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic, seed-derived plan of fault events.

    Built by :meth:`generate`: the same ``(seed, operations, shards)``
    always yields the same events, because every draw comes from
    :func:`~repro.util.rng.counter_stream` over a
    :func:`~repro.util.rng.task_key` — the repo-wide recipe for
    reproducible randomness that owns no global state.
    """

    events: Tuple[FaultEvent, ...]

    @classmethod
    def generate(
        cls,
        *,
        seed: int,
        operations: int,
        shards: int,
        faults: int = 3,
        actions: Sequence[str] = ("kill",),
        seconds: float = 0.2,
    ) -> "FaultSchedule":
        """Plan ``faults`` events over ``operations`` serving operations.

        Event times are drawn without replacement from the operation
        range (so two faults never land on the same operation), targets
        uniformly over shards, actions uniformly over ``actions``.
        """
        if operations < 1:
            raise ValueError(f"operations must be >= 1, got {operations}")
        for action in actions:
            if action not in _ACTIONS:
                raise ValueError(
                    f"unknown action {action!r}; known: {', '.join(_ACTIONS)}"
                )
        key = task_key(seed, "serve-faults", operations, shards)
        draws = counter_stream(key, 0).integers(
            0, 2**62, size=3 * max(1, faults)
        )
        events: List[FaultEvent] = []
        taken: set = set()
        position = 0
        for _ in range(max(0, faults)):
            at = int(draws[position] % operations)
            position += 1
            while at in taken:  # linear probe keeps it deterministic
                at = (at + 1) % operations
            taken.add(at)
            target = int(draws[position] % max(1, shards))
            position += 1
            action = actions[int(draws[position] % len(actions))]
            position += 1
            events.append(
                FaultEvent(at=at, action=action, target=target, seconds=seconds)
            )
        events.sort(key=lambda event: event.at)
        return cls(events=tuple(events))

    def at(self, operation: int) -> List[FaultEvent]:
        """The events scheduled for this operation index (usually 0 or 1)."""
        return [event for event in self.events if event.at == operation]


class FaultInjector:
    """Process-level attacks on a live :class:`ShardedService` fleet.

    Keeps a log of what it did (``injections``) so a benchmark can line
    recovery timings up against the fault stream. All methods are safe to
    call on an already-dead shard (a no-op that still logs).
    """

    def __init__(self, service: ShardedService) -> None:
        self.service = service
        self.injections: List[Dict[str, object]] = []

    def _log(self, action: str, target: int, **extra: object) -> None:
        self.injections.append({"action": action, "shard": target, **extra})

    def kill(self, shard_index: int) -> bool:
        """SIGKILL the worker — the disorderly crash (no cleanup, no
        goodbye). Returns whether a live process was actually killed."""
        shard = self.service._shards[shard_index]
        process = shard.process
        killed = False
        if process.is_alive() and process.pid is not None:
            try:
                os.kill(process.pid, signal.SIGKILL)
                process.join(timeout=5.0)
                killed = True
            except (ProcessLookupError, OSError):  # pragma: no cover - raced
                pass
        self._log("kill", shard_index, killed=killed)
        return killed

    def hang(self, shard_index: int, seconds: float) -> bool:
        """Stall the worker for ``seconds`` mid-protocol.

        Fire-and-forget: the ``__fault__`` request is sent but its reply
        is deliberately *not* awaited, so the next router call on this
        shard receives the stale ``"hung"`` acknowledgement — a
        desynchronized pipe, exactly what a stuck worker looks like from
        the parent. The router's ``call_timeout`` is what must catch it.
        """
        shard = self.service._shards[shard_index]
        sent = False
        if shard.alive():
            with shard.lock:
                try:
                    shard.connection.send(("__fault__", ("hang", seconds), {}))
                    sent = True
                except (BrokenPipeError, OSError):  # pragma: no cover - raced
                    pass
        self._log("hang", shard_index, seconds=seconds, sent=sent)
        return sent

    def delay_replies(self, shard_index: int, seconds: float) -> bool:
        """Slow every later reply from the worker by ``seconds``.

        Unlike :meth:`hang` this is awaited (the pipe stays in sync):
        it degrades latency without breaking anything — the tail-latency
        perturbation knob for :func:`bench_resilience
        <repro.eval.benchmark.bench_resilience>`.
        """
        shard = self.service._shards[shard_index]
        applied = False
        if shard.alive():
            try:
                shard.call("__fault__", "delay", seconds)
                applied = True
            except (OSError, TimeoutError):  # pragma: no cover - raced
                pass
        self._log("delay", shard_index, seconds=seconds, applied=applied)
        return applied

    def corrupt(
        self,
        shard_index: int,
        site: Optional[str] = None,
        seed: int = 0,
    ) -> Optional[Dict[str, object]]:
        """Bit-flip one fingerprint value in the worker's live state.

        ``site=None`` picks the shard's first owned site (sorted, so the
        choice is deterministic). The worker keeps serving — with wrong
        bits — until the scrub or a quorum read catches it. Returns the
        worker's flip report, or ``None`` when nothing could be
        corrupted (dead shard, no sites).
        """
        shard = self.service._shards[shard_index]
        target_site = site
        if target_site is None:
            owned = sorted(shard.sites)
            target_site = owned[0] if owned else None
        detail: Optional[Dict[str, object]] = None
        if target_site is not None and shard.alive():
            try:
                detail = shard.call("__fault__", "corrupt", target_site, seed)
            except (OSError, TimeoutError, RuntimeError, KeyError):
                detail = None  # pragma: no cover - raced with a crash
        self._log(
            "corrupt",
            shard_index,
            site=target_site,
            seed=seed,
            detail=detail,
        )
        return detail

    def apply(self, event: FaultEvent) -> None:
        """Apply one schedule event (wire-level actions are skipped —
        they belong to :class:`FlakyService`)."""
        if event.action == "kill":
            self.kill(event.target)
        elif event.action == "hang":
            self.hang(event.target, event.seconds)
        elif event.action == "delay":
            self.delay_replies(event.target, event.seconds)
        elif event.action == "corrupt":
            # Seed the flip off the operation index so two corrupt events
            # in one schedule flip different state.
            self.corrupt(event.target, seed=event.at)


class FlakyService:
    """Wire-level faults: wrap a backend, drop or delay its responses.

    Stands between a front-end and its backend (it forwards *every*
    attribute, so it passes for any service). ``drop_calls`` picks which
    matching calls raise :class:`DropResponse` — which the transport
    handlers translate into a severed connection, making the client
    re-dial and retry — and ``delay_calls`` which ones stall for
    ``delay_seconds`` first (the retry-after-timeout path). Counting is
    per *matching* call (``methods`` filters which count), so a schedule
    like ``drop_calls={0, 2}`` means "sever the 1st and 3rd query".
    """

    def __init__(
        self,
        backend,
        *,
        drop_calls: Iterable[int] = (),
        delay_calls: Iterable[int] = (),
        delay_seconds: float = 0.0,
        methods: Optional[Iterable[str]] = None,
    ) -> None:
        self._backend = backend
        self._drop: FrozenSet[int] = frozenset(int(i) for i in drop_calls)
        self._delay: FrozenSet[int] = frozenset(int(i) for i in delay_calls)
        self._delay_seconds = float(delay_seconds)
        self._methods: Optional[FrozenSet[str]] = (
            None if methods is None else frozenset(methods)
        )
        self.calls = 0
        self.dropped = 0
        self.delayed = 0

    def _flaky(self, name: str):
        inner = getattr(self._backend, name)

        def call(*args, **kwargs):
            index = self.calls
            self.calls += 1
            if index in self._delay and self._delay_seconds > 0.0:
                self.delayed += 1
                time.sleep(self._delay_seconds)
            if index in self._drop:
                self.dropped += 1
                raise DropResponse(
                    f"injected drop: call {index} ({name})"
                )
            return inner(*args, **kwargs)

        return call

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        value = getattr(self._backend, name)
        if callable(value) and (self._methods is None or name in self._methods):
            return self._flaky(name)
        return value
