"""Pipeline snapshots: freeze a commissioned site, restore it bit-identically.

A crashed or re-sharded worker must come back *warm* without re-running the
one expensive commissioning survey, and — because the serving layer's whole
identity story is "the shard layout is invisible in the answers" — the
restored pipeline has to answer (and keep updating) with exactly the same
bits as the original. A snapshot therefore captures every piece of mutable
pipeline state:

* the :class:`~repro.core.fingerprint.FingerprintDatabase` epochs (values,
  empty-room calibration, day, provenance), plus which epoch the
  :class:`~repro.core.reconstruction.Reconstructor` was learned from —
  the reconstructor itself is a *deterministic* function of
  ``(deployment, initial epoch, config, seed)``, so it is rebuilt on
  restore rather than serialized;
* the collector's PCG64 generator state and sample counter, so the *next*
  update after a restore draws the same randomness the original pipeline
  would have (queries draw no collector randomness — matching is
  deterministic — but refreshes do);
* the interference model's generator state when it does not share the
  collector's stream, and the solver's warm-start factors when
  ``warm_start`` is enabled.

The on-disk format is one ``np.savez_compressed`` archive: a UTF-8 JSON
``meta`` blob (format version, spec/config/protocol fingerprints, epoch
manifest, RNG states) plus one array entry per epoch matrix. Every array is
covered by a SHA-256 recorded in the manifest and verified on load, and the
meta blob carries its own digest, so a truncated or bit-flipped snapshot
raises :class:`SnapshotError` instead of silently serving corrupt
fingerprints. Writes go to a temp file in the same directory followed by an
atomic rename; snapshot bytes are deterministic functions of pipeline state,
so two replicas racing to save the same state is benign.

Restore-vs-rebuild identity is gated the same way ``serve/check.py`` gates
the wire path: ``tests/serve/test_snapshot.py`` asserts snapshot→restore
answers equal rebuild-from-scratch answers bit for bit across every
registered scenario, including post-restore updates.

Two PR-7 additions turn snapshots from a durability mechanism into the
*authority* of the anti-entropy layer:

* **State digests** — :func:`epochs_digest` folds the per-epoch SHA-256s
  (the same ones the manifest records) into one hex digest of the whole
  fingerprint database, and :func:`read_snapshot_digest` computes the
  identical digest straight from a snapshot's meta block without loading
  a single epoch array. A replica whose live digest disagrees with the
  last verified snapshot is the diverged one — that is how the sharded
  router's scrub arbitrates which copy to trust.
* **Lifecycle** — :class:`SnapshotStore` manages a snapshot directory as
  a first-class artifact: optional keep-last-K versioned retention (the
  default, ``keep_last=None``, preserves the PR-6 single-file-per-site
  layout byte for byte), a digest-verifying :meth:`SnapshotStore.scrub`
  that quarantines corrupt files out of the restore path, and
  :meth:`SnapshotStore.compact` reporting the bytes it reclaimed. The
  update scheduler drives all three on a cadence
  (``SchedulerConfig.snapshot_cadence_days``).
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.fingerprint import FingerprintMatrix
from repro.core.pipeline import TafLoc
from repro.core.reconstruction import Reconstructor

__all__ = [
    "SNAPSHOT_VERSION",
    "SiteSnapshot",
    "SnapshotError",
    "SnapshotStore",
    "epochs_digest",
    "load_snapshot",
    "read_snapshot_digest",
    "restore_into",
    "save_snapshot",
    "snapshot_state",
]

#: On-disk format version; bumped whenever the layout changes shape.
SNAPSHOT_VERSION = 1

_MAGIC = "tafloc-snapshot"


class SnapshotError(RuntimeError):
    """A snapshot is unreadable, corrupt, or from a mismatched context."""


@dataclass(frozen=True)
class SiteSnapshot:
    """A loaded snapshot: validated epochs plus the restore context.

    Attributes:
        version: Format version of the file this was read from.
        spec_name: Human-readable scenario name (diagnostics only).
        spec_fingerprint: Structural fingerprint of the scenario spec the
            pipeline was built from — restore *must* match it.
        config_fingerprint: Fingerprint of the ``TafLocConfig``.
        protocol_fingerprint: Fingerprint of the ``CollectionProtocol``.
        seed_key: Identification key derived from the manager seed.
        epochs: The fingerprint database content, in day-sorted order.
        initial_index: Index (into ``epochs``) of the survey epoch the
            reconstructor was learned from.
        collector_rng_state: ``bit_generator.state`` of the collector.
        samples_taken: Collector sample counter at snapshot time.
        interference_rng_state: State of a *separate* interference stream
            (``None`` when the model shares the collector's generator, the
            manager-built default).
        warm_factors: LoLi-IR warm-start factors ``(left, right)`` or
            ``None``.
    """

    version: int
    spec_name: str
    spec_fingerprint: str
    config_fingerprint: Optional[str]
    protocol_fingerprint: Optional[str]
    seed_key: int
    epochs: List[FingerprintMatrix]
    initial_index: int
    collector_rng_state: Dict[str, Any]
    samples_taken: int
    interference_rng_state: Optional[Dict[str, Any]]
    warm_factors: Optional[tuple]


def _sha256(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


# ----------------------------------------------------------------------
# state digests (the anti-entropy layer's arbitration currency)
# ----------------------------------------------------------------------
def _fold_digest(entries) -> str:
    """One digest over ``(day, values_sha, empty_sha)`` triples, in order."""
    folded = hashlib.sha256()
    for day, values_sha, empty_sha in entries:
        folded.update(f"{float(day)!r}|{values_sha}|{empty_sha};".encode())
    return folded.hexdigest()


def epochs_digest(epochs: Iterable[FingerprintMatrix]) -> str:
    """Digest of a fingerprint database's full content, in epoch order.

    Folds each epoch's day and array SHA-256s — the same quantities
    :func:`save_snapshot` records in its manifest — so the digest of a
    live pipeline's ``database.epochs()`` equals
    :func:`read_snapshot_digest` of a snapshot of that exact state. A
    single flipped bit in any epoch changes it.
    """
    return _fold_digest(
        (epoch.day, _sha256(epoch.values), _sha256(epoch.empty_rss))
        for epoch in epochs
    )


def read_snapshot_digest(path: Union[str, Path]) -> str:
    """The :func:`epochs_digest` a snapshot's state would hash to.

    Reads only the meta block (the manifest already carries every per-
    epoch SHA-256), so arbitrating a replica divergence costs one small
    decompression, not a full state load. The meta envelope's own
    checksum is verified; raises :class:`SnapshotError` on any damage.
    """
    meta = _read_meta(Path(path))
    try:
        return _fold_digest(
            (entry["day"], entry["values_sha256"], entry["empty_sha256"])
            for entry in meta["epochs"]
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotError(
            f"snapshot {path} manifest is corrupt: {error}"
        ) from error


def snapshot_state(
    system: TafLoc,
    *,
    spec_name: str,
    spec_fingerprint: str,
    config_fingerprint: Optional[str],
    protocol_fingerprint: Optional[str],
    seed_key: int,
) -> SiteSnapshot:
    """Capture a commissioned pipeline's state as a :class:`SiteSnapshot`."""
    reconstructor = system.reconstructor
    if reconstructor is None:
        raise SnapshotError("cannot snapshot an uncommissioned pipeline")
    epochs = system.database.epochs()
    initial_index = next(
        (
            index
            for index, epoch in enumerate(epochs)
            if epoch is reconstructor.initial
        ),
        None,
    )
    if initial_index is None:
        raise SnapshotError(
            "reconstructor's initial epoch is not in the database; "
            "the pipeline state is inconsistent"
        )
    collector = system.collector
    interference_state = None
    interference = collector.interference
    if interference is not None and interference._rng is not collector._rng:
        interference_state = interference._rng.bit_generator.state
    warm = getattr(reconstructor, "_warm_factors", None)
    return SiteSnapshot(
        version=SNAPSHOT_VERSION,
        spec_name=spec_name,
        spec_fingerprint=spec_fingerprint,
        config_fingerprint=config_fingerprint,
        protocol_fingerprint=protocol_fingerprint,
        seed_key=int(seed_key),
        epochs=epochs,
        initial_index=initial_index,
        collector_rng_state=collector._rng.bit_generator.state,
        samples_taken=int(collector.samples_taken),
        interference_rng_state=interference_state,
        warm_factors=None if warm is None else (warm[0], warm[1]),
    )


def save_snapshot(
    path: Union[str, Path], snapshot: SiteSnapshot
) -> Path:
    """Write ``snapshot`` to ``path`` atomically (temp file + rename)."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    manifest = []
    for index, epoch in enumerate(snapshot.epochs):
        values_key, empty_key = f"values_{index}", f"empty_{index}"
        arrays[values_key] = epoch.values
        arrays[empty_key] = epoch.empty_rss
        manifest.append(
            {
                "day": float(epoch.day),
                "source": str(epoch.source),
                "values_key": values_key,
                "empty_key": empty_key,
                "values_sha256": _sha256(epoch.values),
                "empty_sha256": _sha256(epoch.empty_rss),
            }
        )
    warm_meta = None
    if snapshot.warm_factors is not None:
        left, right = snapshot.warm_factors
        arrays["warm_left"] = np.asarray(left)
        arrays["warm_right"] = np.asarray(right)
        warm_meta = {
            "left_sha256": _sha256(arrays["warm_left"]),
            "right_sha256": _sha256(arrays["warm_right"]),
        }
    meta = {
        "format": _MAGIC,
        "version": snapshot.version,
        "spec_name": snapshot.spec_name,
        "spec_fingerprint": snapshot.spec_fingerprint,
        "config_fingerprint": snapshot.config_fingerprint,
        "protocol_fingerprint": snapshot.protocol_fingerprint,
        "seed_key": snapshot.seed_key,
        "epochs": manifest,
        "initial_index": snapshot.initial_index,
        "collector_rng_state": snapshot.collector_rng_state,
        "samples_taken": snapshot.samples_taken,
        "interference_rng_state": snapshot.interference_rng_state,
        "warm": warm_meta,
    }
    meta_text = json.dumps(meta, sort_keys=True)
    envelope = {
        "meta": meta_text,
        "meta_sha256": hashlib.sha256(meta_text.encode("utf-8")).hexdigest(),
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(envelope).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path


def _parse_meta(path: Path, meta_array: np.ndarray) -> Dict[str, Any]:
    """Validate and decode the ``meta`` envelope of one snapshot archive."""
    try:
        envelope = json.loads(bytes(meta_array.tobytes()).decode("utf-8"))
        meta_text = envelope["meta"]
        if (
            hashlib.sha256(meta_text.encode("utf-8")).hexdigest()
            != envelope["meta_sha256"]
        ):
            raise SnapshotError(f"snapshot {path} meta checksum mismatch")
        meta = json.loads(meta_text)
    except SnapshotError:
        raise
    except (ValueError, KeyError, TypeError) as error:
        raise SnapshotError(
            f"snapshot {path} meta block is corrupt: {error}"
        ) from error
    if meta.get("format") != _MAGIC:
        raise SnapshotError(f"{path} is not a {_MAGIC} file")
    if meta.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {path} has format version {meta.get('version')}, "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    return meta


def _read_meta(path: Path) -> Dict[str, Any]:
    """Load only the meta block (npz members decompress lazily)."""
    try:
        with np.load(path) as archive:
            if "meta" not in archive.files:
                raise SnapshotError(f"snapshot {path} has no meta block")
            meta_array = archive["meta"]
    except SnapshotError:
        raise
    except (
        OSError,
        ValueError,
        KeyError,
        EOFError,
        zipfile.BadZipFile,
        zlib.error,
    ) as error:
        raise SnapshotError(f"unreadable snapshot {path}: {error}") from error
    return _parse_meta(path, meta_array)


def load_snapshot(path: Union[str, Path]) -> SiteSnapshot:
    """Read and fully validate a snapshot; raises :class:`SnapshotError`."""
    path = Path(path)
    try:
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
    except (
        OSError,
        ValueError,
        KeyError,
        EOFError,
        zipfile.BadZipFile,
        zlib.error,
    ) as error:
        raise SnapshotError(f"unreadable snapshot {path}: {error}") from error
    if "meta" not in data:
        raise SnapshotError(f"snapshot {path} has no meta block")
    meta = _parse_meta(path, data["meta"])
    epochs: List[FingerprintMatrix] = []
    for entry in meta["epochs"]:
        try:
            values = data[entry["values_key"]]
            empty = data[entry["empty_key"]]
        except KeyError as error:
            raise SnapshotError(
                f"snapshot {path} is missing array {error}"
            ) from None
        if _sha256(values) != entry["values_sha256"] or _sha256(empty) != (
            entry["empty_sha256"]
        ):
            raise SnapshotError(
                f"snapshot {path} epoch day {entry['day']:g} failed its "
                "checksum — refusing to serve corrupt fingerprints"
            )
        epochs.append(
            FingerprintMatrix(
                values=values,
                empty_rss=empty,
                day=float(entry["day"]),
                source=str(entry["source"]),
            )
        )
    warm_factors = None
    if meta.get("warm") is not None:
        for key, digest in (
            ("warm_left", meta["warm"]["left_sha256"]),
            ("warm_right", meta["warm"]["right_sha256"]),
        ):
            if key not in data or _sha256(data[key]) != digest:
                raise SnapshotError(
                    f"snapshot {path} warm-start factors failed validation"
                )
        warm_factors = (data["warm_left"], data["warm_right"])
    initial_index = int(meta["initial_index"])
    if not 0 <= initial_index < len(epochs):
        raise SnapshotError(
            f"snapshot {path} initial epoch index {initial_index} out of "
            f"range for {len(epochs)} epochs"
        )
    return SiteSnapshot(
        version=int(meta["version"]),
        spec_name=str(meta["spec_name"]),
        spec_fingerprint=str(meta["spec_fingerprint"]),
        config_fingerprint=meta.get("config_fingerprint"),
        protocol_fingerprint=meta.get("protocol_fingerprint"),
        seed_key=int(meta["seed_key"]),
        epochs=epochs,
        initial_index=initial_index,
        collector_rng_state=meta["collector_rng_state"],
        samples_taken=int(meta["samples_taken"]),
        interference_rng_state=meta.get("interference_rng_state"),
        warm_factors=warm_factors,
    )


def restore_into(system: TafLoc, snapshot: SiteSnapshot) -> TafLoc:
    """Load ``snapshot`` into a freshly built, *uncommissioned* pipeline.

    The caller (the :class:`~repro.serve.manager.SiteManager`) builds the
    pipeline exactly as it would for a cold materialization — same scenario
    realization, same derived collector/reconstructor seeds — and this
    function replays the saved state onto it: database epochs, the
    deterministically rebuilt reconstructor, warm-start factors, and the
    collector's generator position. No survey is run; restoring costs
    milliseconds where commissioning costs a full survey plus a solve.
    """
    if system.database.epoch_count != 0 or system.reconstructor is not None:
        raise SnapshotError(
            "restore target must be a virgin pipeline (no epochs, "
            "not commissioned)"
        )
    for epoch in snapshot.epochs:
        system.database.add(epoch)
    # ``add`` keeps day order with ties inserted after existing entries, and
    # the saved list was already day-sorted, so indices are preserved.
    initial = system.database.epochs()[snapshot.initial_index]
    system.reconstructor = Reconstructor(
        system.deployment,
        initial,
        system.config.reconstruction,
        seed=system._seed,
    )
    if snapshot.warm_factors is not None:
        system.reconstructor._warm_factors = (
            snapshot.warm_factors[0],
            snapshot.warm_factors[1],
        )
    collector = system.collector
    try:
        collector._rng.bit_generator.state = snapshot.collector_rng_state
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotError(
            f"collector RNG state does not fit this build: {error}"
        ) from error
    collector._samples_taken = snapshot.samples_taken
    interference = collector.interference
    if snapshot.interference_rng_state is not None:
        if interference is None or interference._rng is collector._rng:
            raise SnapshotError(
                "snapshot carries a separate interference stream but the "
                "rebuilt pipeline has none"
            )
        interference._rng.bit_generator.state = snapshot.interference_rng_state
    return system


# ----------------------------------------------------------------------
# lifecycle: versioned retention, scrub, compaction
# ----------------------------------------------------------------------
_SNAP_SUFFIX = ".snap.npz"
_QUARANTINE_SUFFIX = ".corrupt"


def _split_snapshot_name(name: str) -> Tuple[str, Optional[int]]:
    """``(base, version)`` for a snapshot filename; version ``None`` when
    the file uses the unversioned (PR-6 single-file) layout."""
    core = name[: -len(_SNAP_SUFFIX)]
    base, sep, tail = core.rpartition(".v")
    if sep and tail.isdigit():
        return base, int(tail)
    return core, None


class SnapshotStore:
    """A snapshot directory as a managed artifact: retention, scrub, compaction.

    With ``keep_last=None`` (the default) the store is a thin pass-through
    over the PR-6 layout — one stable ``<base>.snap.npz`` file per site,
    overwritten in place — so existing directories and their naming
    contract are untouched. With ``keep_last=K`` every save writes a new
    ``<base>.v<NNNNNN>.snap.npz`` version and prunes the site's history to
    the newest ``K``; restores try newest-first, so one bad write cannot
    take out a site's warm path.

    Multiple replicas of one fleet share a directory by design: snapshot
    bytes are deterministic functions of pipeline state, so racing saves
    are benign, and racing prunes tolerate already-deleted files.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        keep_last: Optional[int] = None,
    ) -> None:
        if keep_last is not None and keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.keep_last = keep_last
        #: Lifetime prune totals across every compact (inline prunes on
        #: save included) — maintenance reports per-pass deltas of these.
        self.pruned_files = 0
        self.pruned_bytes = 0

    # ------------------------------------------------------------------
    def _versions(self, base: str) -> List[Tuple[int, Path]]:
        """The base's files as ``(sort_key, path)``, oldest first.

        An unversioned file sorts before every versioned one: in
        retention mode it is a PR-6 leftover, strictly older than any
        version the store wrote.
        """
        found = []
        for path in self.directory.glob(f"{base}*{_SNAP_SUFFIX}"):
            file_base, version = _split_snapshot_name(path.name)
            if file_base != base:
                continue
            found.append((-1 if version is None else version, path))
        return sorted(found)

    def candidates(self, base_path: Union[str, Path]) -> List[Path]:
        """Restore candidates for ``base_path``'s site, newest first."""
        base_path = Path(base_path)
        base, _ = _split_snapshot_name(base_path.name)
        return [path for _, path in reversed(self._versions(base))]

    def latest(self, base_path: Union[str, Path]) -> Optional[Path]:
        """The newest snapshot file for ``base_path``'s site, if any."""
        candidates = self.candidates(base_path)
        return candidates[0] if candidates else None

    def save(self, base_path: Union[str, Path], snapshot: SiteSnapshot) -> Path:
        """Persist ``snapshot``; returns the path actually written.

        Unversioned mode overwrites ``base_path`` in place; retention
        mode writes the next version and prunes the site's history.
        """
        base_path = Path(base_path)
        if self.keep_last is None:
            return save_snapshot(base_path, snapshot)
        base, _ = _split_snapshot_name(base_path.name)
        versions = self._versions(base)
        next_version = versions[-1][0] + 1 if versions else 1
        path = save_snapshot(
            self.directory / f"{base}.v{next_version:06d}{_SNAP_SUFFIX}",
            snapshot,
        )
        self.compact(bases=[base])
        return path

    # ------------------------------------------------------------------
    def files(self) -> List[Path]:
        """Every snapshot file in the directory, sorted by name."""
        return sorted(self.directory.glob(f"*{_SNAP_SUFFIX}"))

    def total_bytes(self) -> int:
        """Bytes the directory's snapshot files currently occupy."""
        total = 0
        for path in self.files():
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - raced with a prune
                pass
        return total

    def scrub(self) -> Dict[str, object]:
        """Verify every snapshot's checksums; quarantine the corrupt ones.

        A file whose meta envelope or array digests fail validation is
        renamed to ``<name>.corrupt`` so it can never win a restore, and
        reported — silently deleting evidence of corruption would hide
        exactly the events this layer exists to surface.
        """
        checked = 0
        quarantined: List[str] = []
        for path in self.files():
            checked += 1
            try:
                load_snapshot(path)
            except SnapshotError:
                target = path.with_name(path.name + _QUARANTINE_SUFFIX)
                try:
                    path.rename(target)
                except OSError:  # pragma: no cover - raced with a prune
                    continue
                quarantined.append(path.name)
        return {
            "checked": checked,
            "corrupt": len(quarantined),
            "quarantined": quarantined,
        }

    def compact(
        self,
        *,
        keep_last: Optional[int] = None,
        bases: Optional[Iterable[str]] = None,
    ) -> Dict[str, object]:
        """Prune each site's history to its newest ``keep_last`` files.

        ``keep_last`` defaults to the store's policy (``None`` = keep
        everything — compaction is a no-op without a retention policy).
        Returns what was reclaimed; racing deletes (another replica
        compacting the shared directory) are tolerated.
        """
        keep = self.keep_last if keep_last is None else int(keep_last)
        if keep is None:
            return {"files_removed": 0, "bytes_reclaimed": 0}
        if keep < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep}")
        if bases is None:
            grouped = sorted(
                {_split_snapshot_name(path.name)[0] for path in self.files()}
            )
        else:
            grouped = sorted(set(bases))
        removed = 0
        reclaimed = 0
        for base in grouped:
            versions = self._versions(base)
            for _, path in versions[: max(0, len(versions) - keep)]:
                try:
                    size = path.stat().st_size
                    path.unlink()
                except OSError:  # pragma: no cover - raced with another prune
                    continue
                removed += 1
                reclaimed += size
        self.pruned_files += removed
        self.pruned_bytes += reclaimed
        return {"files_removed": removed, "bytes_reclaimed": reclaimed}
