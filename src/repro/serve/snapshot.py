"""Pipeline snapshots: freeze a commissioned site, restore it bit-identically.

A crashed or re-sharded worker must come back *warm* without re-running the
one expensive commissioning survey, and — because the serving layer's whole
identity story is "the shard layout is invisible in the answers" — the
restored pipeline has to answer (and keep updating) with exactly the same
bits as the original. A snapshot therefore captures every piece of mutable
pipeline state:

* the :class:`~repro.core.fingerprint.FingerprintDatabase` epochs (values,
  empty-room calibration, day, provenance), plus which epoch the
  :class:`~repro.core.reconstruction.Reconstructor` was learned from —
  the reconstructor itself is a *deterministic* function of
  ``(deployment, initial epoch, config, seed)``, so it is rebuilt on
  restore rather than serialized;
* the collector's PCG64 generator state and sample counter, so the *next*
  update after a restore draws the same randomness the original pipeline
  would have (queries draw no collector randomness — matching is
  deterministic — but refreshes do);
* the interference model's generator state when it does not share the
  collector's stream, and the solver's warm-start factors when
  ``warm_start`` is enabled.

The on-disk format is one ``np.savez_compressed`` archive: a UTF-8 JSON
``meta`` blob (format version, spec/config/protocol fingerprints, epoch
manifest, RNG states) plus one array entry per epoch matrix. Every array is
covered by a SHA-256 recorded in the manifest and verified on load, and the
meta blob carries its own digest, so a truncated or bit-flipped snapshot
raises :class:`SnapshotError` instead of silently serving corrupt
fingerprints. Writes go to a temp file in the same directory followed by an
atomic rename; snapshot bytes are deterministic functions of pipeline state,
so two replicas racing to save the same state is benign.

Restore-vs-rebuild identity is gated the same way ``serve/check.py`` gates
the wire path: ``tests/serve/test_snapshot.py`` asserts snapshot→restore
answers equal rebuild-from-scratch answers bit for bit across every
registered scenario, including post-restore updates.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.core.fingerprint import FingerprintMatrix
from repro.core.pipeline import TafLoc
from repro.core.reconstruction import Reconstructor

__all__ = [
    "SNAPSHOT_VERSION",
    "SiteSnapshot",
    "SnapshotError",
    "load_snapshot",
    "restore_into",
    "save_snapshot",
    "snapshot_state",
]

#: On-disk format version; bumped whenever the layout changes shape.
SNAPSHOT_VERSION = 1

_MAGIC = "tafloc-snapshot"


class SnapshotError(RuntimeError):
    """A snapshot is unreadable, corrupt, or from a mismatched context."""


@dataclass(frozen=True)
class SiteSnapshot:
    """A loaded snapshot: validated epochs plus the restore context.

    Attributes:
        version: Format version of the file this was read from.
        spec_name: Human-readable scenario name (diagnostics only).
        spec_fingerprint: Structural fingerprint of the scenario spec the
            pipeline was built from — restore *must* match it.
        config_fingerprint: Fingerprint of the ``TafLocConfig``.
        protocol_fingerprint: Fingerprint of the ``CollectionProtocol``.
        seed_key: Identification key derived from the manager seed.
        epochs: The fingerprint database content, in day-sorted order.
        initial_index: Index (into ``epochs``) of the survey epoch the
            reconstructor was learned from.
        collector_rng_state: ``bit_generator.state`` of the collector.
        samples_taken: Collector sample counter at snapshot time.
        interference_rng_state: State of a *separate* interference stream
            (``None`` when the model shares the collector's generator, the
            manager-built default).
        warm_factors: LoLi-IR warm-start factors ``(left, right)`` or
            ``None``.
    """

    version: int
    spec_name: str
    spec_fingerprint: str
    config_fingerprint: Optional[str]
    protocol_fingerprint: Optional[str]
    seed_key: int
    epochs: List[FingerprintMatrix]
    initial_index: int
    collector_rng_state: Dict[str, Any]
    samples_taken: int
    interference_rng_state: Optional[Dict[str, Any]]
    warm_factors: Optional[tuple]


def _sha256(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def snapshot_state(
    system: TafLoc,
    *,
    spec_name: str,
    spec_fingerprint: str,
    config_fingerprint: Optional[str],
    protocol_fingerprint: Optional[str],
    seed_key: int,
) -> SiteSnapshot:
    """Capture a commissioned pipeline's state as a :class:`SiteSnapshot`."""
    reconstructor = system.reconstructor
    if reconstructor is None:
        raise SnapshotError("cannot snapshot an uncommissioned pipeline")
    epochs = system.database.epochs()
    initial_index = next(
        (
            index
            for index, epoch in enumerate(epochs)
            if epoch is reconstructor.initial
        ),
        None,
    )
    if initial_index is None:
        raise SnapshotError(
            "reconstructor's initial epoch is not in the database; "
            "the pipeline state is inconsistent"
        )
    collector = system.collector
    interference_state = None
    interference = collector.interference
    if interference is not None and interference._rng is not collector._rng:
        interference_state = interference._rng.bit_generator.state
    warm = getattr(reconstructor, "_warm_factors", None)
    return SiteSnapshot(
        version=SNAPSHOT_VERSION,
        spec_name=spec_name,
        spec_fingerprint=spec_fingerprint,
        config_fingerprint=config_fingerprint,
        protocol_fingerprint=protocol_fingerprint,
        seed_key=int(seed_key),
        epochs=epochs,
        initial_index=initial_index,
        collector_rng_state=collector._rng.bit_generator.state,
        samples_taken=int(collector.samples_taken),
        interference_rng_state=interference_state,
        warm_factors=None if warm is None else (warm[0], warm[1]),
    )


def save_snapshot(
    path: Union[str, Path], snapshot: SiteSnapshot
) -> Path:
    """Write ``snapshot`` to ``path`` atomically (temp file + rename)."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    manifest = []
    for index, epoch in enumerate(snapshot.epochs):
        values_key, empty_key = f"values_{index}", f"empty_{index}"
        arrays[values_key] = epoch.values
        arrays[empty_key] = epoch.empty_rss
        manifest.append(
            {
                "day": float(epoch.day),
                "source": str(epoch.source),
                "values_key": values_key,
                "empty_key": empty_key,
                "values_sha256": _sha256(epoch.values),
                "empty_sha256": _sha256(epoch.empty_rss),
            }
        )
    warm_meta = None
    if snapshot.warm_factors is not None:
        left, right = snapshot.warm_factors
        arrays["warm_left"] = np.asarray(left)
        arrays["warm_right"] = np.asarray(right)
        warm_meta = {
            "left_sha256": _sha256(arrays["warm_left"]),
            "right_sha256": _sha256(arrays["warm_right"]),
        }
    meta = {
        "format": _MAGIC,
        "version": snapshot.version,
        "spec_name": snapshot.spec_name,
        "spec_fingerprint": snapshot.spec_fingerprint,
        "config_fingerprint": snapshot.config_fingerprint,
        "protocol_fingerprint": snapshot.protocol_fingerprint,
        "seed_key": snapshot.seed_key,
        "epochs": manifest,
        "initial_index": snapshot.initial_index,
        "collector_rng_state": snapshot.collector_rng_state,
        "samples_taken": snapshot.samples_taken,
        "interference_rng_state": snapshot.interference_rng_state,
        "warm": warm_meta,
    }
    meta_text = json.dumps(meta, sort_keys=True)
    envelope = {
        "meta": meta_text,
        "meta_sha256": hashlib.sha256(meta_text.encode("utf-8")).hexdigest(),
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(envelope).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path


def load_snapshot(path: Union[str, Path]) -> SiteSnapshot:
    """Read and fully validate a snapshot; raises :class:`SnapshotError`."""
    path = Path(path)
    try:
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as error:
        raise SnapshotError(f"unreadable snapshot {path}: {error}") from error
    if "meta" not in data:
        raise SnapshotError(f"snapshot {path} has no meta block")
    try:
        envelope = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        meta_text = envelope["meta"]
        if (
            hashlib.sha256(meta_text.encode("utf-8")).hexdigest()
            != envelope["meta_sha256"]
        ):
            raise SnapshotError(f"snapshot {path} meta checksum mismatch")
        meta = json.loads(meta_text)
    except SnapshotError:
        raise
    except (ValueError, KeyError, TypeError) as error:
        raise SnapshotError(
            f"snapshot {path} meta block is corrupt: {error}"
        ) from error
    if meta.get("format") != _MAGIC:
        raise SnapshotError(f"{path} is not a {_MAGIC} file")
    if meta.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {path} has format version {meta.get('version')}, "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    epochs: List[FingerprintMatrix] = []
    for entry in meta["epochs"]:
        try:
            values = data[entry["values_key"]]
            empty = data[entry["empty_key"]]
        except KeyError as error:
            raise SnapshotError(
                f"snapshot {path} is missing array {error}"
            ) from None
        if _sha256(values) != entry["values_sha256"] or _sha256(empty) != (
            entry["empty_sha256"]
        ):
            raise SnapshotError(
                f"snapshot {path} epoch day {entry['day']:g} failed its "
                "checksum — refusing to serve corrupt fingerprints"
            )
        epochs.append(
            FingerprintMatrix(
                values=values,
                empty_rss=empty,
                day=float(entry["day"]),
                source=str(entry["source"]),
            )
        )
    warm_factors = None
    if meta.get("warm") is not None:
        for key, digest in (
            ("warm_left", meta["warm"]["left_sha256"]),
            ("warm_right", meta["warm"]["right_sha256"]),
        ):
            if key not in data or _sha256(data[key]) != digest:
                raise SnapshotError(
                    f"snapshot {path} warm-start factors failed validation"
                )
        warm_factors = (data["warm_left"], data["warm_right"])
    initial_index = int(meta["initial_index"])
    if not 0 <= initial_index < len(epochs):
        raise SnapshotError(
            f"snapshot {path} initial epoch index {initial_index} out of "
            f"range for {len(epochs)} epochs"
        )
    return SiteSnapshot(
        version=int(meta["version"]),
        spec_name=str(meta["spec_name"]),
        spec_fingerprint=str(meta["spec_fingerprint"]),
        config_fingerprint=meta.get("config_fingerprint"),
        protocol_fingerprint=meta.get("protocol_fingerprint"),
        seed_key=int(meta["seed_key"]),
        epochs=epochs,
        initial_index=initial_index,
        collector_rng_state=meta["collector_rng_state"],
        samples_taken=int(meta["samples_taken"]),
        interference_rng_state=meta.get("interference_rng_state"),
        warm_factors=warm_factors,
    )


def restore_into(system: TafLoc, snapshot: SiteSnapshot) -> TafLoc:
    """Load ``snapshot`` into a freshly built, *uncommissioned* pipeline.

    The caller (the :class:`~repro.serve.manager.SiteManager`) builds the
    pipeline exactly as it would for a cold materialization — same scenario
    realization, same derived collector/reconstructor seeds — and this
    function replays the saved state onto it: database epochs, the
    deterministically rebuilt reconstructor, warm-start factors, and the
    collector's generator position. No survey is run; restoring costs
    milliseconds where commissioning costs a full survey plus a solve.
    """
    if system.database.epoch_count != 0 or system.reconstructor is not None:
        raise SnapshotError(
            "restore target must be a virgin pipeline (no epochs, "
            "not commissioned)"
        )
    for epoch in snapshot.epochs:
        system.database.add(epoch)
    # ``add`` keeps day order with ties inserted after existing entries, and
    # the saved list was already day-sorted, so indices are preserved.
    initial = system.database.epochs()[snapshot.initial_index]
    system.reconstructor = Reconstructor(
        system.deployment,
        initial,
        system.config.reconstruction,
        seed=system._seed,
    )
    if snapshot.warm_factors is not None:
        system.reconstructor._warm_factors = (
            snapshot.warm_factors[0],
            snapshot.warm_factors[1],
        )
    collector = system.collector
    try:
        collector._rng.bit_generator.state = snapshot.collector_rng_state
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotError(
            f"collector RNG state does not fit this build: {error}"
        ) from error
    collector._samples_taken = snapshot.samples_taken
    interference = collector.interference
    if snapshot.interference_rng_state is not None:
        if interference is None or interference._rng is collector._rng:
            raise SnapshotError(
                "snapshot carries a separate interference stream but the "
                "rebuilt pipeline has none"
            )
        interference._rng.bit_generator.state = snapshot.interference_rng_state
    return system
