"""The query front-end: route ``(site, day, RSS)`` to the right pipeline.

:class:`LocalizationService` is the serving layer's public surface. It owns a
:class:`~repro.serve.manager.SiteManager` and answers localization queries by
routing them to the site's commissioned pipeline, whose epoch-keyed matcher
cache (see :meth:`repro.core.pipeline.TafLoc.matcher_for_day`) makes the warm
query path allocation-free: a steady stream of same-day queries reuses one
matcher object and runs straight through the batch matching kernels.

Error contract (what a front-end can rely on for input validation):

* unknown site → :class:`KeyError` (from the manager);
* queries against a site whose pipeline is not commissioned →
  :class:`RuntimeError` (from :class:`~repro.core.pipeline.TafLoc`);
* a query day before the site's first fingerprint epoch, or an empty
  database → :class:`LookupError` (from
  :meth:`repro.core.fingerprint.FingerprintDatabase.at`);
* malformed RSS vectors → :class:`ValueError` (from the matcher);
* :meth:`LocalizationService.update` on a *cold* site (pipeline never
  materialized/commissioned) → :class:`RuntimeError` unless the caller
  opts into ``cold="commission"`` (the cold-update contract; see
  :meth:`repro.serve.manager.SiteManager.update`).

The wire front-end (:mod:`repro.serve.frontend`) maps this contract onto
HTTP-style status codes: ``ValueError``/``TypeError`` → 400, ``KeyError``
→ 404, other ``LookupError`` → 409, ``RuntimeError`` → 503.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Union

import numpy as np

from repro.core.matching import BatchMatchResult, MatchResult
from repro.core.pipeline import TafLoc, UpdateReport
from repro.eval.engine import task_fingerprint
from repro.serve.manager import SiteManager
from repro.serve.sentinel import measure_drift, probe_seed
from repro.sim.specs import ScenarioSpec
from repro.sim.trace import LiveTrace

__all__ = ["LocalizationService", "ServiceStats"]


@dataclass
class ServiceStats:
    """Per-service query accounting (what the bench reports qps from)."""

    queries: int = 0
    frames: int = 0
    frames_by_site: Dict[str, int] = field(default_factory=dict)

    def record(self, site: str, frames: int) -> None:
        self.queries += 1
        self.frames += frames
        self.frames_by_site[site] = self.frames_by_site.get(site, 0) + frames


class LocalizationService:
    """Routes localization queries across the manager's sites.

    Construct over an existing manager, or use :meth:`from_specs` to stand
    up a service from a plain ``{site: spec}`` mapping in one call. All
    query entry points resolve the site through the manager (materializing
    its pipeline on first touch) and answer through the batch matcher
    kernels; results are bit-identical to calling the site's
    :class:`~repro.core.pipeline.TafLoc` directly.
    """

    #: Hint for event-loop front-ends (:mod:`repro.serve.aio`): warm
    #: queries against this backend are µs-scale numpy calls that never
    #: block on I/O, so dispatching inline on the loop is cheaper than a
    #: thread-pool handoff. Anything that can park a call on a pipe or
    #: lock (the sharded router) must say ``"offload"`` instead.
    wire_dispatch = "inline"

    def __init__(self, manager: Optional[SiteManager] = None, **manager_kwargs) -> None:
        if manager is not None and manager_kwargs:
            raise ValueError(
                "pass either a manager or manager kwargs, not both"
            )
        self.manager = manager if manager is not None else SiteManager(**manager_kwargs)
        self.stats = ServiceStats()

    @classmethod
    def from_specs(
        cls,
        specs: Mapping[str, Union[ScenarioSpec, dict, str]],
        **manager_kwargs,
    ) -> "LocalizationService":
        """Build a service serving every ``{site: spec}`` entry."""
        service = cls(**manager_kwargs)
        for site, spec in specs.items():
            service.manager.register(site, spec)
        return service

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def sites(self) -> List[str]:
        return self.manager.sites()

    def register(self, site: str, spec) -> None:
        """Register a new site on the live service (resize handoff path)."""
        self.manager.register(site, spec)

    def deregister(self, site: str) -> None:
        """Drop a site (and its pipeline, when unshared) from the service."""
        self.manager.deregister(site)

    def pipeline(self, site: str) -> TafLoc:
        return self.manager.pipeline(site)

    def warm(self, sites: Optional[Iterable[str]] = None) -> List[str]:
        """Materialize (and commission) pipelines ahead of traffic.

        Returns the warmed site names — the cold-start control for the
        serving benchmark's cold-vs-warm comparison.
        """
        names = list(sites) if sites is not None else self.manager.sites()
        for site in names:
            self.manager.pipeline(site)
        return names

    def update(
        self, site: str, day: float, *, cold: str = "raise"
    ) -> Optional[UpdateReport]:
        """Refresh the site's fingerprints (appends an epoch; the site's
        matcher cache invalidates automatically).

        Follows the manager's cold-update contract: a site with no
        commissioned pipeline raises :class:`RuntimeError` by default, or
        is commissioned at ``day`` (returning ``None``) with
        ``cold="commission"`` — see :meth:`SiteManager.update
        <repro.serve.manager.SiteManager.update>`.
        """
        return self.manager.update(site, day, cold=cold)

    def commission(self, site: str, day: float) -> None:
        """Run the site's commissioning survey at ``day`` (cold sites only;
        an already-commissioned site raises ``RuntimeError``)."""
        self.manager.commission(site, day)

    def staleness(self, site: str, day: float) -> Optional[float]:
        """Days since the epoch serving queries at ``day``, or ``None``.

        ``None`` means the site is *cold* — its pipeline was never
        materialized or never commissioned — so there is nothing to
        refresh, only to commission. A site whose epochs all lie after
        ``day`` reports ``0.0`` (nothing older to refresh). This is the
        signal the update scheduler ranks sites by; it never materializes
        a pipeline.
        """
        if not self.manager.materialized(site):  # KeyError for unknown site
            return None
        system = self.manager.pipeline(site)
        if not system.commissioned or system.database.epoch_count == 0:
            return None
        try:
            return system.database.staleness(day)
        except LookupError:
            return 0.0

    def drift(
        self, site: str, day: float, frames: int = 32
    ) -> Optional[Dict[str, float]]:
        """Measured model drift for ``site`` at ``day``, or ``None`` cold.

        Wraps :func:`~repro.serve.sentinel.measure_drift` with a probe
        stream derived per pipeline identity (spec fingerprint, mirroring
        the serving-seed recipe) so the measurement is deterministic,
        held-out, and independent of the model being judged — see the
        sentinel module docstring for why that independence matters.
        ``None`` mirrors :meth:`staleness`: a cold site has nothing to
        measure, only to commission. The body is JSON-plain (the wire
        ``drift`` method forwards it unchanged).
        """
        if not self.manager.materialized(site):  # KeyError when unknown
            return None
        system = self.manager.pipeline(site)
        if not system.commissioned or system.database.epoch_count == 0:
            return None
        spec = self.manager.spec(site)
        identity = site if spec is None else task_fingerprint(spec)
        reading = measure_drift(
            system,
            day,
            frames=frames,
            seed=probe_seed(self.manager.seed, identity),
        )
        return {"site": site, **reading.to_dict()}

    def verify_site(self, site: str) -> Dict[str, object]:
        """Compare the site's live state digest against its snapshot's.

        The arbitration primitive of the anti-entropy scrub: ``matches``
        is ``True``/``False`` when both digests exist, ``None`` when
        either side is unavailable (cold site, no snapshot directory, or
        no readable snapshot). Never materializes a pipeline.
        """
        live = self.manager.live_digest(site)
        snapshot = self.manager.snapshot_digest(site)
        matches = (
            None if live is None or snapshot is None else live == snapshot
        )
        return {
            "site": site,
            "live_digest": live,
            "snapshot_digest": snapshot,
            "matches": matches,
        }

    def repair(self, site: str) -> Dict[str, object]:
        """Rebuild the site's pipeline from authoritative state (see
        :meth:`SiteManager.repair_site
        <repro.serve.manager.SiteManager.repair_site>`)."""
        return self.manager.repair_site(site)

    def snapshot_maintenance(self) -> Dict[str, object]:
        """Run one snapshot lifecycle pass (save + scrub + compact)."""
        return self.manager.snapshot_maintenance()

    def service_stats(self) -> ServiceStats:
        """The query counters (one method shared with the sharded router,
        whose counters live in its worker processes)."""
        return self.stats

    def health(self) -> Dict[str, object]:
        """Liveness report (the wire ``health`` method's body).

        The in-process service is trivially "ok" when reachable; the
        interesting fields are the manager counters — in particular
        ``snapshots_restored``, which is how the resilience gate proves a
        respawned worker warmed from disk instead of re-surveying.
        """
        stats = self.manager.stats
        return {
            "status": "ok",
            "sites": len(self.manager.sites()),
            "pipelines_built": stats.pipelines_built,
            "pipelines_shared": stats.pipelines_shared,
            "snapshots_saved": stats.snapshots_saved,
            "snapshots_restored": stats.snapshots_restored,
            "snapshots_rejected": stats.snapshots_rejected,
        }

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, site: str, live_rss: np.ndarray, day: float) -> MatchResult:
        """Localize one live RSS vector measured at ``site`` on ``day``."""
        result = self.pipeline(site).localize(live_rss, day)
        self.stats.record(site, 1)
        return result

    def query_batch(
        self, site: str, frames: np.ndarray, day: float
    ) -> BatchMatchResult:
        """Localize a whole ``(frames, links)`` RSS batch in one pass."""
        result = self.pipeline(site).localize_batch(frames, day)
        self.stats.record(site, result.frame_count)
        return result

    def query_trace(self, site: str, trace: LiveTrace) -> BatchMatchResult:
        """Localize every frame of a live trace (uses the trace's day)."""
        result = self.pipeline(site).localize_trace(trace)
        self.stats.record(site, result.frame_count)
        return result

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def site_summary(self, site: str) -> Dict[str, object]:
        """Small status record for one site (CLI ``serve`` table rows)."""
        materialized = self.manager.materialized(site)
        record: Dict[str, object] = {
            "site": site,
            "materialized": materialized,
        }
        spec = self.manager.spec(site)
        if spec is not None:
            record["scenario"] = spec.name
        if materialized:
            system = self.manager.pipeline(site)
            record["commissioned"] = system.commissioned
            record["links"] = system.deployment.link_count
            record["cells"] = system.deployment.cell_count
            record["epochs"] = system.database.epoch_count
            if system.database.epoch_count:
                epochs = system.database.epochs()
                record["first_day"] = float(epochs[0].day)
                record["last_day"] = float(epochs[-1].day)
        return record

    def summary(self) -> List[Dict[str, object]]:
        return [self.site_summary(site) for site in self.sites()]
