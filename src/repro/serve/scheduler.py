"""Staleness-driven fingerprint refresh, off the query path.

The paper's whole point is that fingerprints age: a site whose database
was last refreshed 45 days ago answers with ~3.6 dB of reconstruction
error where a fresh one sits at ~2.7 (Fig. 3). In a serving deployment
that refresh has to happen *continuously and cheaply* — someone walks the
``n`` reference cells, the service reconstructs — and deciding *which*
site gets the next refresh budget is a scheduling problem. This module
makes that policy explicit:

* :class:`UpdateScheduler` tracks per-site **staleness** (days since the
  epoch serving current queries, via
  :meth:`~repro.serve.service.LocalizationService.staleness`) and turns it
  into update decisions. Planning is a pure function of ``(service state,
  day)`` — :meth:`UpdateScheduler.plan` — so tests drive it with explicit
  days and get deterministic answers; :meth:`UpdateScheduler.tick`
  executes a plan.
* Three policies: ``"interval"`` (every site whose staleness crossed the
  threshold, stalest first), ``"round-robin"`` (budget-limited fair
  rotation over the stale sites), ``"priority"`` (stale sites ranked by
  query traffic since their last refresh — the busiest fingerprints age
  fastest in user-visible error, so they get the budget first).
* **Cold sites** (pipeline never materialized/commissioned) cannot be
  *updated* at all — the cold-update contract in
  :meth:`repro.serve.manager.SiteManager.update` — so the scheduler
  commissions them at the tick day (``cold="commission"``), skips them
  (``cold="skip"``), or surfaces the error (``cold="raise"``).
* :meth:`UpdateScheduler.start` runs ticks on a daemon thread against a
  day clock (e.g. :class:`SimClock`), while queries keep flowing on the
  front-end threads: the refresh path appends an epoch and bumps the
  database version, and the query path's matcher cache tolerates the
  concurrent flip (see :meth:`repro.core.pipeline.TafLoc.matcher_for_day`).

The scheduler only ever talks to the public service surface, so it runs
unchanged over an in-process :class:`~repro.serve.service.LocalizationService`
or a :class:`~repro.serve.shard.ShardedService` router.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.pipeline import UpdateReport

__all__ = ["SchedulerConfig", "SimClock", "UpdateAction", "UpdateScheduler"]

_POLICIES = ("interval", "round-robin", "priority")
_COLD_MODES = ("commission", "skip", "raise")


@dataclass(frozen=True)
class SchedulerConfig:
    """Update policy knobs.

    Attributes:
        policy: ``"interval"``, ``"round-robin"`` or ``"priority"``.
        interval_days: Staleness threshold (days): a site becomes
            *eligible* for refresh once the epoch serving current queries
            is at least this old. All three policies share the threshold;
            they differ in how they order and cap the eligible set.
        budget: Max refresh actions per tick (``None`` = unlimited). This
            is the person-time knob: one budget unit is one walk of a
            site's reference cells (or one commissioning survey for a
            cold site).
        cold: What a tick does with cold sites: ``"commission"`` them at
            the tick day (default — a site registered mid-flight gets its
            survey on the next tick), ``"skip"`` them, or ``"raise"``.
    """

    policy: str = "interval"
    interval_days: float = 30.0
    budget: Optional[int] = None
    cold: str = "commission"

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ValueError(
                f"policy must be one of {_POLICIES}, got {self.policy!r}"
            )
        if self.cold not in _COLD_MODES:
            raise ValueError(
                f"cold must be one of {_COLD_MODES}, got {self.cold!r}"
            )
        if self.interval_days <= 0:
            raise ValueError(
                f"interval_days must be > 0, got {self.interval_days}"
            )
        if self.budget is not None and self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")


@dataclass(frozen=True)
class UpdateAction:
    """One executed (or planned) refresh decision."""

    site: str
    day: float
    action: str  # "update" | "commission"
    staleness: Optional[float]
    report: Optional[UpdateReport] = None


@dataclass
class SchedulerStats:
    """Counters over the scheduler's lifetime."""

    ticks: int = 0
    updates: int = 0
    commissions: int = 0
    last_day: Optional[float] = None
    errors: int = 0


class SimClock:
    """Map wall time to simulation days: ``start_day + rate * elapsed``.

    The CLI's ``serve --listen`` uses this to drive background refresh in
    demos (e.g. ``--days-per-second 30`` ages the fleet a month per wall
    second); tests and deployments with a real calendar pass their own
    zero-argument callable instead.
    """

    def __init__(
        self, start_day: float = 0.0, days_per_second: float = 1.0
    ) -> None:
        self.start_day = float(start_day)
        self.days_per_second = float(days_per_second)
        self._anchor = time.monotonic()

    def __call__(self) -> float:
        elapsed = time.monotonic() - self._anchor
        return self.start_day + elapsed * self.days_per_second


class UpdateScheduler:
    """Plan and run staleness-driven refreshes over a service's sites.

    ``service`` is anything exposing the serving surface (``sites``,
    ``staleness``, ``update``, ``commission``, ``service_stats``) — the
    in-process service or the sharded router.
    """

    def __init__(self, service, config: Optional[SchedulerConfig] = None) -> None:
        self.service = service
        self.config = config if config is not None else SchedulerConfig()
        self.stats = SchedulerStats()
        self._cursor = 0  # round-robin rotation point (site-list index)
        self._frames_at_refresh: Dict[str, int] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # planning (pure: no service mutation)
    # ------------------------------------------------------------------
    def plan(self, day: float) -> List[Tuple[str, str, Optional[float]]]:
        """The refresh actions a tick at ``day`` would run, in order.

        Returns ``(site, action, staleness)`` tuples, ``action`` being
        ``"update"`` or ``"commission"``. Cold sites come first — an
        uncommissioned site serves *nothing*, which is strictly worse
        than any staleness — then eligible stale sites in policy order,
        the whole list capped by the budget.
        """
        sites = list(self.service.sites())
        staleness = {site: self.service.staleness(site, day) for site in sites}
        planned: List[Tuple[str, str, Optional[float]]] = []
        if self.config.cold == "commission":
            planned.extend(
                (site, "commission", None)
                for site in sites
                if staleness[site] is None
            )
        elif self.config.cold == "raise":
            cold = [site for site in sites if staleness[site] is None]
            if cold:
                raise RuntimeError(
                    f"cold site(s) at day {day:g}: {', '.join(cold)}; "
                    "commission them or configure cold='commission'/'skip'"
                )
        eligible = [
            site
            for site in sites
            if staleness[site] is not None
            and staleness[site] >= self.config.interval_days
        ]
        planned.extend(
            (site, "update", staleness[site])
            for site in self._order(eligible, sites, staleness)
        )
        if self.config.budget is not None:
            planned = planned[: self.config.budget]
        return planned

    def _order(
        self,
        eligible: List[str],
        sites: List[str],
        staleness: Dict[str, Optional[float]],
    ) -> List[str]:
        index = {site: rank for rank, site in enumerate(sites)}
        if self.config.policy == "interval":
            # Stalest first; registration order breaks ties.
            return sorted(
                eligible, key=lambda site: (-staleness[site], index[site])
            )
        if self.config.policy == "round-robin":
            # Fair rotation: start after the last site this policy
            # refreshed, wrapping around the registration order.
            return sorted(
                eligible,
                key=lambda site: (index[site] - self._cursor) % len(sites),
            )
        # priority: the most query traffic since last refresh goes first —
        # a stale fingerprint under heavy traffic costs the most answers.
        served = dict(self.service.service_stats().frames_by_site)

        def pressure(site: str) -> int:
            return served.get(site, 0) - self._frames_at_refresh.get(site, 0)

        return sorted(
            eligible, key=lambda site: (-pressure(site), index[site])
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def tick(self, day: float) -> List[UpdateAction]:
        """Execute the plan for ``day``; returns what actually ran."""
        planned = self.plan(day)
        actions: List[UpdateAction] = []
        served: Optional[Dict[str, int]] = None
        for site, action, staleness in planned:
            if action == "commission":
                self.service.commission(site, day)
                self.stats.commissions += 1
                report = None
            else:
                report = self.service.update(site, day)
                self.stats.updates += 1
            if self.config.policy == "priority":
                if served is None:
                    served = dict(self.service.service_stats().frames_by_site)
                self._frames_at_refresh[site] = served.get(site, 0)
            actions.append(
                UpdateAction(
                    site=site,
                    day=day,
                    action=action,
                    staleness=staleness,
                    report=report,
                )
            )
        if actions and self.config.policy == "round-robin":
            sites = list(self.service.sites())
            last = actions[-1].site
            if last in sites:
                self._cursor = (sites.index(last) + 1) % len(sites)
        self.stats.ticks += 1
        self.stats.last_day = float(day)
        return actions

    # ------------------------------------------------------------------
    # background driving
    # ------------------------------------------------------------------
    def start(
        self,
        clock: Callable[[], float],
        *,
        period_seconds: float = 1.0,
    ) -> "UpdateScheduler":
        """Tick against ``clock()`` every ``period_seconds`` on a daemon
        thread until :meth:`stop`. Exceptions are counted
        (``stats.errors``) and do not kill the loop — a failed refresh
        must not take background maintenance down with it."""
        if self._thread is not None:
            raise RuntimeError("scheduler is already running")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(period_seconds):
                try:
                    self.tick(clock())
                except Exception:  # noqa: BLE001 - keep maintenance alive
                    self.stats.errors += 1

        self._thread = threading.Thread(
            target=loop, daemon=True, name="UpdateScheduler"
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background thread (idempotent).

        A tick stuck in a long survey can outlive the join timeout; the
        escalation is surfaced as a warning rather than silently leaking
        the daemon thread.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            if self._thread.is_alive():  # pragma: no cover - defensive
                warnings.warn(
                    "UpdateScheduler thread did not stop within 5s "
                    "(tick still running); it will die with the process",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self._thread = None

    def __enter__(self) -> "UpdateScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
