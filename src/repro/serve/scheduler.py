"""Staleness-driven fingerprint refresh, off the query path.

The paper's whole point is that fingerprints age: a site whose database
was last refreshed 45 days ago answers with ~3.6 dB of reconstruction
error where a fresh one sits at ~2.7 (Fig. 3). In a serving deployment
that refresh has to happen *continuously and cheaply* — someone walks the
``n`` reference cells, the service reconstructs — and deciding *which*
site gets the next refresh budget is a scheduling problem. This module
makes that policy explicit:

* :class:`UpdateScheduler` tracks per-site **staleness** (days since the
  epoch serving current queries, via
  :meth:`~repro.serve.service.LocalizationService.staleness`) and turns it
  into update decisions. Planning is a pure function of ``(service state,
  day)`` — :meth:`UpdateScheduler.plan` — so tests drive it with explicit
  days and get deterministic answers; :meth:`UpdateScheduler.tick`
  executes a plan.
* Four policies: ``"interval"`` (every site whose staleness crossed the
  threshold, stalest first), ``"round-robin"`` (budget-limited fair
  rotation over the stale sites), ``"priority"`` (stale sites ranked by
  query traffic since their last refresh — the busiest fingerprints age
  fastest in user-visible error, so they get the budget first), and
  ``"drift"`` (refresh on *measured* degradation, not age: each warm
  site is probed via
  :meth:`~repro.serve.service.LocalizationService.drift` and becomes
  eligible when held-out localization error has degraded by at least
  ``drift_threshold_m`` meters — a volatile site gets refreshed days
  before an age-only policy would notice, and a quiet one is left
  alone past its nominal interval).
* An optional **snapshot cadence**: with ``snapshot_cadence_days`` set,
  the tick that crosses each cadence boundary also runs one snapshot
  lifecycle pass (save + digest scrub + keep-last-K compaction) through
  ``service.snapshot_maintenance()``, so durable state stays fresh and
  the snapshot directory stays bounded without a second daemon.
* **Cold sites** (pipeline never materialized/commissioned) cannot be
  *updated* at all — the cold-update contract in
  :meth:`repro.serve.manager.SiteManager.update` — so the scheduler
  commissions them at the tick day (``cold="commission"``), skips them
  (``cold="skip"``), or surfaces the error (``cold="raise"``).
* :meth:`UpdateScheduler.start` runs ticks on a daemon thread against a
  day clock (e.g. :class:`SimClock`), while queries keep flowing on the
  front-end threads: the refresh path appends an epoch and bumps the
  database version, and the query path's matcher cache tolerates the
  concurrent flip (see :meth:`repro.core.pipeline.TafLoc.matcher_for_day`).

The scheduler only ever talks to the public service surface, so it runs
unchanged over an in-process :class:`~repro.serve.service.LocalizationService`
or a :class:`~repro.serve.shard.ShardedService` router.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.pipeline import UpdateReport

__all__ = ["SchedulerConfig", "SimClock", "UpdateAction", "UpdateScheduler"]

_POLICIES = ("interval", "round-robin", "priority", "drift")
_COLD_MODES = ("commission", "skip", "raise")


@dataclass(frozen=True)
class SchedulerConfig:
    """Update policy knobs.

    Attributes:
        policy: ``"interval"``, ``"round-robin"``, ``"priority"`` or
            ``"drift"``.
        interval_days: Staleness threshold (days): a site becomes
            *eligible* for refresh once the epoch serving current queries
            is at least this old. The age-based policies share the
            threshold; they differ in how they order and cap the eligible
            set. The ``"drift"`` policy ignores it — eligibility there is
            measured, not aged.
        budget: Max refresh actions per tick (``None`` = unlimited). This
            is the person-time knob: one budget unit is one walk of a
            site's reference cells (or one commissioning survey for a
            cold site).
        cold: What a tick does with cold sites: ``"commission"`` them at
            the tick day (default — a site registered mid-flight gets its
            survey on the next tick), ``"skip"`` them, or ``"raise"``.
        drift_threshold_m: ``"drift"`` policy only — a site is eligible
            once its held-out probe error has degraded by at least this
            many meters over its fresh-conditions baseline (see
            :mod:`repro.serve.sentinel`). The 0.75 m default sits between
            a quiet site's measurement noise (≲0.5 m) and the ≳1 m
            degradation a genuinely drifted database shows.
        drift_frames: Probe frames per drift measurement (cost knob; the
            measurement is a small held-out batch per warm site per
            plan).
        snapshot_cadence_days: When set, run one snapshot lifecycle pass
            (``service.snapshot_maintenance()``) on the first tick at or
            past each cadence boundary. ``None`` (default) disables the
            hook. Works with any policy.
    """

    policy: str = "interval"
    interval_days: float = 30.0
    budget: Optional[int] = None
    cold: str = "commission"
    drift_threshold_m: float = 0.75
    drift_frames: int = 32
    snapshot_cadence_days: Optional[float] = None

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ValueError(
                f"policy must be one of {_POLICIES}, got {self.policy!r}"
            )
        if self.cold not in _COLD_MODES:
            raise ValueError(
                f"cold must be one of {_COLD_MODES}, got {self.cold!r}"
            )
        if self.interval_days <= 0:
            raise ValueError(
                f"interval_days must be > 0, got {self.interval_days}"
            )
        if self.budget is not None and self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.drift_threshold_m <= 0:
            raise ValueError(
                f"drift_threshold_m must be > 0, got {self.drift_threshold_m}"
            )
        if self.drift_frames < 1:
            raise ValueError(
                f"drift_frames must be >= 1, got {self.drift_frames}"
            )
        if (
            self.snapshot_cadence_days is not None
            and self.snapshot_cadence_days <= 0
        ):
            raise ValueError(
                "snapshot_cadence_days must be > 0, got "
                f"{self.snapshot_cadence_days}"
            )


@dataclass(frozen=True)
class UpdateAction:
    """One executed (or planned) refresh decision.

    ``staleness`` carries the eligibility metric that triggered the
    action: days-since-epoch for the age-based policies, measured
    degradation in meters for ``policy="drift"`` (``None`` for
    commissions).
    """

    site: str
    day: float
    action: str  # "update" | "commission"
    staleness: Optional[float]
    report: Optional[UpdateReport] = None


@dataclass
class SchedulerStats:
    """Counters over the scheduler's lifetime."""

    ticks: int = 0
    updates: int = 0
    commissions: int = 0
    last_day: Optional[float] = None
    errors: int = 0
    snapshot_runs: int = 0
    snapshot_files_removed: int = 0
    snapshot_bytes_reclaimed: int = 0
    last_snapshot_day: Optional[float] = None


class SimClock:
    """Map wall time to simulation days: ``start_day + rate * elapsed``.

    The CLI's ``serve --listen`` uses this to drive background refresh in
    demos (e.g. ``--days-per-second 30`` ages the fleet a month per wall
    second); tests and deployments with a real calendar pass their own
    zero-argument callable instead.
    """

    def __init__(
        self, start_day: float = 0.0, days_per_second: float = 1.0
    ) -> None:
        self.start_day = float(start_day)
        self.days_per_second = float(days_per_second)
        self._anchor = time.monotonic()

    def __call__(self) -> float:
        elapsed = time.monotonic() - self._anchor
        return self.start_day + elapsed * self.days_per_second


class UpdateScheduler:
    """Plan and run staleness-driven refreshes over a service's sites.

    ``service`` is anything exposing the serving surface (``sites``,
    ``staleness``, ``update``, ``commission``, ``service_stats``) — the
    in-process service or the sharded router.
    """

    def __init__(self, service, config: Optional[SchedulerConfig] = None) -> None:
        self.service = service
        self.config = config if config is not None else SchedulerConfig()
        self.stats = SchedulerStats()
        self._cursor = 0  # round-robin rotation point (site-list index)
        self._frames_at_refresh: Dict[str, int] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # planning (pure: no service mutation)
    # ------------------------------------------------------------------
    def plan(self, day: float) -> List[Tuple[str, str, Optional[float]]]:
        """The refresh actions a tick at ``day`` would run, in order.

        Returns ``(site, action, metric)`` tuples, ``action`` being
        ``"update"`` or ``"commission"`` and ``metric`` the eligibility
        signal (staleness in days, or measured degradation in meters for
        ``policy="drift"``). Cold sites come first — an uncommissioned
        site serves *nothing*, which is strictly worse than any
        staleness — then eligible sites in policy order, the whole list
        capped by the budget.
        """
        sites = list(self.service.sites())
        staleness = {site: self.service.staleness(site, day) for site in sites}
        planned: List[Tuple[str, str, Optional[float]]] = []
        if self.config.cold == "commission":
            planned.extend(
                (site, "commission", None)
                for site in sites
                if staleness[site] is None
            )
        elif self.config.cold == "raise":
            cold = [site for site in sites if staleness[site] is None]
            if cold:
                raise RuntimeError(
                    f"cold site(s) at day {day:g}: {', '.join(cold)}; "
                    "commission them or configure cold='commission'/'skip'"
                )
        if self.config.policy == "drift":
            planned.extend(self._plan_drift(day, sites, staleness))
        else:
            eligible = [
                site
                for site in sites
                if staleness[site] is not None
                and staleness[site] >= self.config.interval_days
            ]
            planned.extend(
                (site, "update", staleness[site])
                for site in self._order(eligible, sites, staleness)
            )
        if self.config.budget is not None:
            planned = planned[: self.config.budget]
        return planned

    def _plan_drift(
        self,
        day: float,
        sites: List[str],
        staleness: Dict[str, Optional[float]],
    ) -> List[Tuple[str, str, Optional[float]]]:
        """Eligibility by *measured* degradation: probe every warm site
        and refresh the ones whose held-out error grew past the
        threshold, worst first. Probing reads the service but mutates
        nothing, so planning stays side-effect free."""
        degradation: Dict[str, float] = {}
        for site in sites:
            if staleness[site] is None:
                continue  # cold: handled by the cold policy above
            try:
                reading = self.service.drift(
                    site, day, frames=self.config.drift_frames
                )
            except LookupError:
                continue  # every epoch is after `day`: nothing to refresh
            if reading is not None:
                degradation[site] = float(reading["degradation_m"])
        index = {site: rank for rank, site in enumerate(sites)}
        eligible = sorted(
            (
                site
                for site, worsened in degradation.items()
                if worsened >= self.config.drift_threshold_m
            ),
            key=lambda site: (-degradation[site], index[site]),
        )
        return [(site, "update", degradation[site]) for site in eligible]

    def _order(
        self,
        eligible: List[str],
        sites: List[str],
        staleness: Dict[str, Optional[float]],
    ) -> List[str]:
        index = {site: rank for rank, site in enumerate(sites)}
        if self.config.policy == "interval":
            # Stalest first; registration order breaks ties.
            return sorted(
                eligible, key=lambda site: (-staleness[site], index[site])
            )
        if self.config.policy == "round-robin":
            # Fair rotation: start after the last site this policy
            # refreshed, wrapping around the registration order.
            return sorted(
                eligible,
                key=lambda site: (index[site] - self._cursor) % len(sites),
            )
        # priority: the most query traffic since last refresh goes first —
        # a stale fingerprint under heavy traffic costs the most answers.
        served = dict(self.service.service_stats().frames_by_site)

        def pressure(site: str) -> int:
            return served.get(site, 0) - self._frames_at_refresh.get(site, 0)

        return sorted(
            eligible, key=lambda site: (-pressure(site), index[site])
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def tick(self, day: float) -> List[UpdateAction]:
        """Execute the plan for ``day``; returns what actually ran."""
        planned = self.plan(day)
        actions: List[UpdateAction] = []
        served: Optional[Dict[str, int]] = None
        for site, action, staleness in planned:
            if action == "commission":
                self.service.commission(site, day)
                self.stats.commissions += 1
                report = None
            else:
                report = self.service.update(site, day)
                self.stats.updates += 1
            if self.config.policy == "priority":
                if served is None:
                    served = dict(self.service.service_stats().frames_by_site)
                self._frames_at_refresh[site] = served.get(site, 0)
            actions.append(
                UpdateAction(
                    site=site,
                    day=day,
                    action=action,
                    staleness=staleness,
                    report=report,
                )
            )
        if actions and self.config.policy == "round-robin":
            sites = list(self.service.sites())
            last = actions[-1].site
            if last in sites:
                self._cursor = (sites.index(last) + 1) % len(sites)
        self._maybe_snapshot(day)
        self.stats.ticks += 1
        self.stats.last_day = float(day)
        return actions

    def _maybe_snapshot(self, day: float) -> None:
        """Run the snapshot lifecycle pass when the cadence boundary has
        been crossed (first tick counts as crossing it — durable state
        should exist as soon as maintenance starts)."""
        cadence = self.config.snapshot_cadence_days
        if cadence is None:
            return
        last = self.stats.last_snapshot_day
        if last is not None and float(day) - last < cadence:
            return
        maintenance = getattr(self.service, "snapshot_maintenance", None)
        if maintenance is None:
            return  # plain service without the lifecycle surface
        report = maintenance()
        self.stats.snapshot_runs += 1
        self.stats.snapshot_files_removed += int(report.get("files_removed", 0))
        self.stats.snapshot_bytes_reclaimed += int(
            report.get("bytes_reclaimed", 0)
        )
        self.stats.last_snapshot_day = float(day)

    # ------------------------------------------------------------------
    # background driving
    # ------------------------------------------------------------------
    def start(
        self,
        clock: Callable[[], float],
        *,
        period_seconds: float = 1.0,
    ) -> "UpdateScheduler":
        """Tick against ``clock()`` every ``period_seconds`` on a daemon
        thread until :meth:`stop`. Exceptions are counted
        (``stats.errors``) and do not kill the loop — a failed refresh
        must not take background maintenance down with it."""
        if self._thread is not None:
            raise RuntimeError("scheduler is already running")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(period_seconds):
                try:
                    self.tick(clock())
                except Exception:  # noqa: BLE001 - keep maintenance alive
                    self.stats.errors += 1

        self._thread = threading.Thread(
            target=loop, daemon=True, name="UpdateScheduler"
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the background thread (idempotent).

        Blocks until the in-flight tick (if any) finishes or ``timeout``
        seconds pass. A tick stuck in a long survey can outlive the join
        timeout; the escalation is surfaced as a warning rather than
        silently leaking the daemon thread. A tick that *does* finish is
        never half-applied: ``stop()`` only interrupts the sleep between
        ticks, not the epoch appends inside one.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                warnings.warn(
                    f"UpdateScheduler thread did not stop within {timeout:g}s "
                    "(tick still running); it will die with the process",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self._thread = None

    def __enter__(self) -> "UpdateScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
