"""Wire front-ends for the serving layer, stdlib only.

Two transports carry the JSON protocol of :mod:`repro.serve.protocol`:

* :class:`HttpFrontend` — a threaded HTTP server
  (:class:`http.server.ThreadingHTTPServer`): ``POST /<method>`` with a
  JSON params body, status codes per the serving error contract, HTTP/1.1
  keep-alive so a steady client pays one TCP handshake, not one per query.
  Parameterless read-only methods are also reachable as ``GET`` (handy for
  ``curl http://host:port/health``).
* :class:`UnixFrontend` — newline-delimited JSON over a unix domain
  socket: one ``{"method", "params"}`` line in, one ``{"status", "body"}``
  line out, persistent connections. The lower-overhead local transport.

A third transport lives in :mod:`repro.serve.aio`: an asyncio event-loop
server speaking the same NDJSON framing over TCP and unix sockets, with
request pipelining and streamed ``query_trace``. Its sync-client face is
the ``tcp://host:port`` scheme below — the NDJSON line transport over a
TCP socket with ``TCP_NODELAY``.

Both servers bound the bytes they will buffer for one request
(``max_request_bytes``, default 16 MiB): the HTTP front-end refuses an
oversized ``Content-Length`` with 400 before reading the body, and the
unix front-end answers 400 and severs when a request line exceeds the
cap (the stream is mid-line and cannot resync). A misbehaving client
cannot make a handler thread buffer unbounded bytes.

:class:`ServiceClient` speaks all three (``http://host:port``,
``unix:///path``, ``tcp://host:port``) and reverses the status mapping,
so remote errors arrive
as the same exception types the in-process
:class:`~repro.serve.service.LocalizationService` raises, and batch
results come back as numpy arrays that are bit-identical to the
in-process answers (float64 survives JSON round-trip exactly; the CI
frontend smoke gate in :mod:`repro.serve.check` asserts it).

**Retry policy lives in the client, not the transports.** Each transport
makes exactly one attempt per call and poisons its cached connection on
any failure; :meth:`ServiceClient.call` retries *idempotent* methods with
capped exponential backoff plus jitter (a thundering herd of clients
reconnecting to a restarted server should not arrive in lockstep) and
raises :class:`~repro.serve.protocol.ServiceUnavailable` — chaining the
last transport error — once the budget is exhausted. ``update`` and
``commission`` are never re-sent (a duplicate execution would append a
second epoch), and a ``TimeoutError`` is never retried for *any* method:
the first copy may still be executing server-side.

Both servers serve requests on handler threads; the backend's warm query
path is read-only and the matcher cache tolerates a concurrent scheduler
update (see :meth:`repro.core.pipeline.TafLoc.matcher_for_day`), so
queries never block behind a background refresh.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import socket
import socketserver
import threading
import time
import warnings
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qsl, urlsplit

import numpy as np

from repro.serve.protocol import (
    ERROR_TYPES,
    DropResponse,
    ServiceUnavailable,
    decode,
    dispatch,
    encode,
)
from repro.sim.trace import LiveTrace

__all__ = [
    "DEFAULT_MAX_REQUEST_BYTES",
    "HttpFrontend",
    "RemoteBatchResult",
    "RemoteMatchResult",
    "ServiceClient",
    "UnixFrontend",
]

#: Largest request body (HTTP) / request line (NDJSON) a front-end will
#: buffer, bytes. Generous — a 16 MiB JSON body is ~200k frames — but
#: finite, so a misbehaving client cannot exhaust server memory.
DEFAULT_MAX_REQUEST_BYTES = 16 * 1024 * 1024

#: Methods reachable via GET (no body, optional query-string params).
_GET_METHODS = ("health", "sites", "summary", "stats", "site_summary",
                "staleness", "drift")

#: Methods the client may transparently re-send after a stale-connection
#: failure. update/commission are deliberately absent: re-sending one
#: whose first copy may still execute could append a duplicate epoch (or
#: turn a succeeded commission into an "already commissioned" error).
_IDEMPOTENT_METHODS = frozenset(
    {
        "query",
        "query_batch",
        "query_trace",
        "site_summary",
        "summary",
        "sites",
        "warm",
        "staleness",
        "stats",
        "health",
        "drift",
    }
)


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class _HttpHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "tafloc-serve"
    # Small request/response pairs on a keep-alive connection hit the
    # Nagle + delayed-ACK interaction (~40 ms per round trip) unless
    # TCP_NODELAY is set on both ends; see also _HttpTransport._connect.
    disable_nagle_algorithm = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the caller's business, not stderr's

    def _respond(self, status: int, body: Dict[str, Any]) -> None:
        payload = encode(body)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _method(self) -> Tuple[str, Dict[str, Any]]:
        parts = urlsplit(self.path)
        return parts.path.strip("/"), dict(parse_qsl(parts.query))

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch-by-name
        method, params = self._method()
        length = int(self.headers.get("Content-Length") or 0)
        cap = self.server.max_request_bytes
        if length > cap:
            # Refuse before reading a single body byte, and drop the
            # connection: the unread body would desync keep-alive.
            self.close_connection = True
            self._respond(
                400,
                {
                    "error": "ValueError",
                    "message": f"request body of {length} bytes exceeds "
                    f"the {cap}-byte limit",
                },
            )
            return
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = decode(raw) if raw.strip() else {}
        except ValueError as error:
            self._respond(400, {"error": "ValueError", "message": str(error)})
            return
        body_params = body.get("params", body) or {}
        if not isinstance(body_params, dict):
            self._respond(
                400,
                {
                    "error": "ValueError",
                    "message": "params must be a JSON object, got "
                    f"{type(body_params).__name__}",
                },
            )
            return
        params.update(body_params)
        try:
            status, body = dispatch(self.server.backend, method, params)
        except DropResponse:
            # Fault injection: sever the connection instead of replying —
            # the client must see a dead socket, not a status code.
            self.close_connection = True
            return
        self._respond(status, body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch-by-name
        method, params = self._method()
        if method not in _GET_METHODS:
            self._respond(
                404,
                {
                    "error": "KeyError",
                    "message": f"GET {self.path!r} is not routable; POST "
                    f"/<method> (GET serves: {', '.join(_GET_METHODS)})",
                },
            )
            return
        try:
            status, body = dispatch(self.server.backend, method, params)
        except DropResponse:
            self.close_connection = True
            return
        self._respond(status, body)


class _HttpServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, backend, max_request_bytes) -> None:
        super().__init__(address, _HttpHandler)
        self.backend = backend
        self.max_request_bytes = int(max_request_bytes)


class _Frontend:
    """Start/stop plumbing shared by the HTTP and unix front-ends."""

    _server: socketserver.BaseServer

    def __init__(self) -> None:
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "_Frontend":
        """Serve on a daemon thread; returns self (so ``with X().start()``)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.05},
                daemon=True,
                name=f"{type(self).__name__}",
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI ``serve --listen`` path)."""
        self._server.serve_forever(poll_interval=0.5)

    def close(self) -> None:
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            if self._thread.is_alive():  # pragma: no cover - defensive
                # A daemon thread cannot be force-killed; surface the
                # escalation instead of silently leaking the server.
                warnings.warn(
                    f"{type(self).__name__} serve thread did not stop "
                    "within 5s; it will die with the process",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "_Frontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


class HttpFrontend(_Frontend):
    """HTTP front-end over a service backend (in-process or sharded).

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction. The server runs on daemon handler threads — call
    :meth:`start` for a background server (tests, benchmarks) or
    :meth:`serve_forever` to donate the calling thread (the CLI).
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    ) -> None:
        super().__init__()
        self._server = _HttpServer((host, port), backend, max_request_bytes)

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"


# ----------------------------------------------------------------------
# unix-socket transport
# ----------------------------------------------------------------------
class _UnixHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        cap = self.server.max_request_bytes
        while True:
            # Bounded read: a request line longer than the cap gets a 400
            # and a severed connection (the stream is mid-line, so it
            # cannot resync), never an unbounded buffer.
            line = self.rfile.readline(cap + 1)
            if not line:
                return
            if len(line) > cap:
                self.wfile.write(
                    encode(
                        {
                            "status": 400,
                            "body": {
                                "error": "ValueError",
                                "message": "request line exceeds the "
                                f"{cap}-byte limit",
                            },
                        }
                    )
                )
                self.wfile.flush()
                return
            if not line.strip():
                continue
            try:
                request = decode(line)
            except ValueError as error:
                status, body = 400, {
                    "error": "ValueError",
                    "message": str(error),
                }
            else:
                try:
                    status, body = dispatch(
                        self.server.backend,
                        str(request.get("method", "")),
                        request.get("params"),
                    )
                except DropResponse:
                    return  # fault injection: sever instead of replying
            self.wfile.write(encode({"status": status, "body": body}))
            self.wfile.flush()


class UnixFrontend(_Frontend):
    """Unix-domain-socket front-end: NDJSON requests over ``path``."""

    def __init__(
        self,
        backend,
        path: str,
        *,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    ) -> None:
        if not hasattr(socketserver, "ThreadingUnixStreamServer"):
            raise RuntimeError(
                "unix-socket serving requires AF_UNIX support (POSIX)"
            )
        super().__init__()
        self.path = str(path)
        if os.path.exists(self.path):
            os.unlink(self.path)

        class _Server(socketserver.ThreadingUnixStreamServer):
            daemon_threads = True

        self._server = _Server(self.path, _UnixHandler)
        self._server.backend = backend
        self._server.max_request_bytes = int(max_request_bytes)

    @property
    def address(self) -> str:
        return f"unix://{self.path}"

    def close(self) -> None:
        super().close()
        if os.path.exists(self.path):
            os.unlink(self.path)


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RemoteMatchResult:
    """One localization answer received over the wire.

    ``stale`` mirrors the wire marker a degraded-mode backend attaches
    when it answered from the last verified snapshot because every live
    replica of the site was down (see
    :class:`~repro.serve.shard.StaleAnswer`). Fresh answers omit the
    marker, so the field defaults to ``False``.
    """

    cell: int
    position: Tuple[float, float]
    score: float
    stale: bool = False


@dataclass(frozen=True)
class RemoteBatchResult:
    """A batch of localization answers received over the wire.

    Mirrors the columnar fields of
    :class:`~repro.core.matching.BatchMatchResult` so bit-identity checks
    can compare ``cells``/``positions`` (and ``scores`` when requested)
    directly with ``np.array_equal``.
    """

    cells: np.ndarray
    positions: np.ndarray
    scores: Optional[np.ndarray] = None
    #: True when the answer came from a degraded-mode snapshot replica.
    stale: bool = False

    @property
    def frame_count(self) -> int:
        return int(self.cells.shape[0])


class _HttpTransport:
    def __init__(self, host: str, port: int, timeout: float) -> None:
        self._host, self._port, self._timeout = host, port, timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._connection.connect()
            # The server's half is disable_nagle_algorithm; without the
            # client half, every query pays a ~40 ms Nagle/delayed-ACK
            # stall instead of a sub-millisecond round trip.
            self._connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._connection

    def call(self, method: str, params: Dict[str, Any]) -> Tuple[int, Dict]:
        """One attempt; any failure poisons the cached connection.

        Retry policy (which failures re-send, how many times, how long
        between) belongs to :meth:`ServiceClient.call`.
        """
        payload = json.dumps({"params": params})
        headers = {"Content-Type": "application/json"}
        connection = self._connect()
        try:
            connection.request("POST", f"/{method}", payload, headers)
            response = connection.getresponse()
            return response.status, json.loads(response.read() or b"{}")
        except BaseException:
            self.close()  # the keep-alive stream is desynced; re-dial lazily
            raise

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None


class _LineTransport:
    """NDJSON request/response over a stream socket.

    The shared body of the ``unix://`` and ``tcp://`` transports — one
    ``{"method", "params"}`` line out, one ``{"status", "body"}`` line
    back, persistent connection, poison-on-failure. Subclasses supply
    :meth:`_dial`. (The aio server also echoes a request ``"id"`` when
    one is sent; this one-at-a-time transport never sends one, so
    responses arrive strictly in request order.)
    """

    def __init__(self, timeout: float) -> None:
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    def _dial(self) -> socket.socket:
        raise NotImplementedError

    def _connect(self):
        if self._sock is None:
            self._sock = self._dial()
            self._sock.settimeout(self._timeout)
            self._file = self._sock.makefile("rb")
        return self._sock, self._file

    def call(self, method: str, params: Dict[str, Any]) -> Tuple[int, Dict]:
        """One attempt; see :meth:`_HttpTransport.call` for the contract."""
        sock, reader = self._connect()
        try:
            sock.sendall(encode({"method": method, "params": params}))
            line = reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = decode(line)
            return int(response["status"]), response.get("body", {})
        except BaseException:
            self.close()  # the stream is desynced; re-dial lazily
            raise

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None


class _UnixTransport(_LineTransport):
    def __init__(self, path: str, timeout: float) -> None:
        super().__init__(timeout)
        self._path = path

    def _dial(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self._timeout)
        sock.connect(self._path)
        return sock


class _TcpTransport(_LineTransport):
    """The sync-client face of the aio front-end: NDJSON over TCP."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        super().__init__(timeout)
        self._host, self._port = host, port

    def _dial(self) -> socket.socket:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        # Same Nagle/delayed-ACK reasoning as the HTTP transport: small
        # request/response pairs stall ~40 ms without TCP_NODELAY.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock


class ServiceClient:
    """Client for a serving front-end; mirrors the in-process contract.

    ``address`` is ``"http://host:port"``, ``"tcp://host:port"`` (the
    aio front-end's NDJSON port), or ``"unix:///path"``. The
    connection is persistent (keep-alive / stream) and guarded by a lock,
    so one client may be shared across threads; per-thread clients avoid
    the lock when throughput matters. Contract errors raised by the remote
    service re-raise locally as their original types (``KeyError`` for an
    unknown site, ``ValueError`` for malformed RSS, ...), which is what
    makes swapping :class:`~repro.serve.service.LocalizationService` for a
    client a one-line change.

    Args:
        address: ``http://host:port``, ``tcp://host:port``, or
            ``unix:///path``.
        timeout: Socket timeout per attempt, seconds.
        retries: Transport-failure *re-sends* for idempotent methods
            (total attempts = ``retries + 1``). Non-idempotent methods
            and timeouts never retry regardless.
        backoff: Base delay before the first re-send; doubles per retry.
        max_backoff: Ceiling on any single delay. Every delay is
            jittered to 50–100% of its nominal value so restarted
            servers are not hit by synchronized client herds.
        jitter_seed: Seed for the backoff jitter source. ``None`` (the
            default) seeds a private PRNG from OS entropy — different
            clients de-synchronize naturally without sharing global
            state. Pass an int for an exact, reproducible retry
            schedule (retry-timing tests assert the sleep sequence down
            to the float).
    """

    def __init__(
        self,
        address: str,
        *,
        timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.05,
        max_backoff: float = 1.0,
        jitter_seed: Optional[int] = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        # Always a private Random instance: seeded for deterministic
        # schedules, entropy-seeded otherwise (cross-client
        # de-synchronization without sharing the module-global PRNG,
        # whose draw interleaving would couple concurrent clients).
        self._jitter = random.Random(
            jitter_seed if jitter_seed is not None else os.urandom(8)
        )
        self.address = str(address)
        parts = urlsplit(self.address)
        if parts.scheme == "http":
            if parts.hostname is None or parts.port is None:
                raise ValueError(
                    f"http address must be http://host:port, got {address!r}"
                )
            self._transport = _HttpTransport(
                parts.hostname, parts.port, timeout
            )
        elif parts.scheme == "tcp":
            if parts.hostname is None or parts.port is None:
                raise ValueError(
                    f"tcp address must be tcp://host:port, got {address!r}"
                )
            self._transport = _TcpTransport(parts.hostname, parts.port, timeout)
        elif parts.scheme == "unix":
            path = parts.path or parts.netloc
            if not path:
                raise ValueError(
                    f"unix address must be unix:///path, got {address!r}"
                )
            self._transport = _UnixTransport(path, timeout)
        else:
            raise ValueError(
                f"unsupported address {address!r} "
                "(use http://, tcp://, or unix://)"
            )
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def call(self, method: str, params: Optional[Dict[str, Any]] = None):
        """One protocol round trip; raises mapped contract errors.

        Idempotent methods survive transport failures (stale keep-alive
        connections, a server restart, an injected drop) through up to
        ``retries`` re-sends with capped exponential backoff and jitter;
        exhaustion raises :class:`ServiceUnavailable` chaining the last
        transport error. ``update``/``commission`` never re-send — a
        duplicate execution would not be harmless — so a transport error
        there surfaces raw to the caller, who knows whether repeating is
        safe. A ``TimeoutError`` is terminal for every method: the first
        copy may still be executing server-side.
        """
        idempotent = method in _IDEMPOTENT_METHODS
        attempts = (self.retries + 1) if idempotent else 1
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                delay = min(
                    self.backoff * (2 ** (attempt - 1)), self.max_backoff
                )
                # 50-100% jitter: wall-clock pacing only, never results.
                time.sleep(delay * (0.5 + self._jitter.random() / 2))
            try:
                with self._lock:
                    status, body = self._transport.call(method, params or {})
            except TimeoutError:
                raise  # may still be executing server-side: never re-send
            except (
                http.client.HTTPException,
                ConnectionError,
                OSError,
            ) as error:
                last_error = error
                if not idempotent:
                    raise
                continue
            if status >= 400:
                error = ERROR_TYPES.get(body.get("error", ""), RuntimeError)
                raise error(body.get("message", f"server returned {status}"))
            return body
        raise ServiceUnavailable(
            f"{method} failed after {attempts} attempt(s) to {self.address}"
        ) from last_error

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the service surface
    # ------------------------------------------------------------------
    def query(
        self, site: str, rss: Sequence[float], day: float
    ) -> RemoteMatchResult:
        body = self.call(
            "query",
            {"site": site, "rss": np.asarray(rss).tolist(), "day": day},
        )
        return RemoteMatchResult(
            cell=int(body["cell"]),
            position=(body["position"][0], body["position"][1]),
            score=float(body["score"]),
            stale=bool(body.get("stale", False)),
        )

    def _batch(
        self, method: str, site: str, frames, day: float, include_scores: bool
    ) -> RemoteBatchResult:
        body = self.call(
            method,
            {
                "site": site,
                "frames": np.asarray(frames).tolist(),
                "day": day,
                "include_scores": include_scores,
            },
        )
        return RemoteBatchResult(
            cells=np.asarray(body["cells"], dtype=int),
            positions=np.asarray(body["positions"], dtype=float),
            scores=(
                np.asarray(body["scores"], dtype=float)
                if "scores" in body
                else None
            ),
            stale=bool(body.get("stale", False)),
        )

    def query_batch(
        self, site: str, frames, day: float, *, include_scores: bool = False
    ) -> RemoteBatchResult:
        return self._batch("query_batch", site, frames, day, include_scores)

    def query_trace(
        self,
        site: str,
        trace: Union[LiveTrace, np.ndarray],
        day: Optional[float] = None,
        *,
        include_scores: bool = False,
    ) -> RemoteBatchResult:
        """Localize a live trace (its own day) or a frames array at ``day``."""
        if isinstance(trace, LiveTrace):
            frames, day = trace.rss, trace.day
        elif day is None:
            raise ValueError("day is required when trace is a frames array")
        else:
            frames = trace
        return self._batch("query_trace", site, frames, day, include_scores)

    def warm(self, sites: Optional[Iterable[str]] = None) -> List[str]:
        params = {} if sites is None else {"sites": list(sites)}
        return list(self.call("warm", params)["warmed"])

    def update(self, site: str, day: float, *, cold: str = "raise") -> Dict:
        return self.call("update", {"site": site, "day": day, "cold": cold})

    def commission(self, site: str, day: float) -> Dict:
        return self.call("commission", {"site": site, "day": day})

    def staleness(self, site: str, day: float) -> Optional[float]:
        return self.call("staleness", {"site": site, "day": day})["staleness"]

    def drift(
        self, site: str, day: float, frames: int = 32
    ) -> Optional[Dict[str, float]]:
        """Measured drift reading for ``site`` at ``day`` (None when cold)."""
        body = self.call(
            "drift", {"site": site, "day": day, "frames": frames}
        )
        return body.get("drift")

    def scrub(
        self, sites: Optional[Iterable[str]] = None
    ) -> Dict[str, Any]:
        """Run one anti-entropy scrub pass on a sharded backend."""
        params = {} if sites is None else {"sites": list(sites)}
        return self.call("scrub", params)

    def site_summary(self, site: str) -> Dict[str, Any]:
        return self.call("site_summary", {"site": site})

    def summary(self) -> List[Dict[str, Any]]:
        return self.call("summary")["sites"]

    def sites(self) -> List[str]:
        return self.call("sites")["sites"]

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def health(self) -> Dict[str, Any]:
        return self.call("health")

    def resize(self, shards: int) -> Dict[str, Any]:
        """Resize a sharded backend to ``shards`` workers (moved sites in
        the returned body). Non-idempotent: never auto-retried."""
        return self.call("resize", {"shards": shards})
