"""The serving wire protocol: JSON methods over any byte transport.

One request is ``{"method": <name>, "params": {...}}``; one response is a
JSON object plus an HTTP-style status code. The protocol is deliberately
transport-agnostic: the HTTP front-end carries the status in the response
line and the body as JSON, the unix-socket front-end carries both in one
newline-delimited JSON object (``{"status": ..., "body": ...}``) — either
way :func:`dispatch` is the single implementation, so the two transports
cannot drift apart.

**Bit-identity over the wire.** Results are encoded with :mod:`json`,
whose float serialization is ``repr``-based shortest round-trip: a float64
survives encode→decode exactly. That is what lets the CI frontend smoke
gate (:mod:`repro.serve.check`) assert that wire answers equal in-process
:class:`~repro.serve.service.LocalizationService` answers bit for bit.

**Error contract → status codes.** The PR-4 serving error contract maps
onto HTTP-style statuses (the order matters: ``KeyError`` is a
``LookupError`` subclass):

==================================  ======  =============================
exception                           status  meaning
==================================  ======  =============================
``ValueError`` / ``TypeError``      400     malformed request or RSS
``KeyError``                        404     unknown site / method
``LookupError`` (other)             409     no epoch serving that day
``RuntimeError``                    503     pipeline not commissioned yet
anything else                       500     bug — reported, not masked
==================================  ======  =============================

Clients reverse the mapping (:data:`ERROR_TYPES`), so an exception thrown
by a remote service arrives as the *same type* the in-process service
would raise — code written against the in-process contract works unchanged
against :class:`~repro.serve.frontend.ServiceClient`.

**Request ids + pipelining.** A request may carry an ``"id"`` (any JSON
scalar); the response echoes it. Ids exist so a pipelined connection —
many requests in flight at once on the asyncio front-end
(:mod:`repro.serve.aio`) — can match responses that complete out of
order. Requests without an id are answered strictly in request order,
which is what keeps the PR-5 one-at-a-time transports compatible with
the aio server without changes.

**Streaming ``query_trace``.** A long trace would otherwise buffer one
giant JSON array on both ends. A streaming request
(``"stream": true``) makes the server compute the trace in **one**
backend call — chunking the *compute* would change BLAS reduction order
and could break exact-distance ties differently, violating bit-identity
— and then emit the result as a header line, ``seq``-numbered chunk
lines of at most ``chunk`` frames each, and an ``{"end": true}``
terminator (:func:`iter_trace_stream`). The client reassembles with
:func:`merge_trace_stream`; the merged body is byte-identical to the
non-streaming body, so bit-identity checks need no special casing.
Uploads stream symmetrically: ``"frames_follow": true`` announces that
``{"id", "frames": [...]}`` continuation lines and an ``{"id", "end":
true}`` line will follow instead of inline ``params["frames"]``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.sim.trace import LiveTrace

__all__ = [
    "ERROR_TYPES",
    "METHODS",
    "STREAM_CHUNK_FRAMES",
    "DropResponse",
    "ServiceUnavailable",
    "decode",
    "dispatch",
    "encode",
    "error_body",
    "error_status",
    "iter_trace_stream",
    "merge_trace_stream",
]


class ServiceUnavailable(ConnectionError):
    """No live replica (or wire endpoint) could answer.

    Raised by the sharded router when every replica of a site is down, and
    by :class:`~repro.serve.frontend.ServiceClient` after its retry budget
    is exhausted. Subclasses :class:`ConnectionError` (hence ``OSError``),
    so callers that already handled transport failures keep working; over
    the wire it maps to status 503 and arrives client-side as the same
    type.
    """


class DropResponse(Exception):
    """Fault-injection control flow: drop the wire response entirely.

    Raised by :class:`~repro.serve.faults.FlakyService`;
    :func:`dispatch` deliberately re-raises it (it is not a contract
    error), and the transport handlers translate it into a severed
    connection — the client sees a dead socket, not a status code. Never
    raised in production paths.
    """


#: Methods a front-end accepts, i.e. the service surface that is routable.
METHODS = (
    "query",
    "query_batch",
    "query_trace",
    "site_summary",
    "summary",
    "sites",
    "warm",
    "update",
    "commission",
    "staleness",
    "stats",
    "health",
    "resize",
    "drift",
    "scrub",
)

#: Status → exception type, the client-side inverse of :func:`error_status`.
ERROR_TYPES = {
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
    "LookupError": LookupError,
    "IndexError": IndexError,
    "RuntimeError": RuntimeError,
    "ServiceUnavailable": ServiceUnavailable,
    "ConnectionError": ServiceUnavailable,
}


def error_status(error: BaseException) -> int:
    """HTTP-style status code for one serving-contract exception."""
    if isinstance(error, (ValueError, TypeError)):
        return 400
    if isinstance(error, KeyError):
        return 404
    if isinstance(error, LookupError):
        return 409
    if isinstance(error, RuntimeError):
        return 503
    if isinstance(error, ConnectionError):
        # The router's "every replica is down" signal: unavailable, not a bug.
        return 503
    return 500


def error_body(error: BaseException) -> Dict[str, str]:
    """JSON body describing ``error`` (type name + message, no traceback)."""
    message = error.args[0] if error.args else str(error)
    return {"error": type(error).__name__, "message": str(message)}


def encode(body: Dict[str, Any]) -> bytes:
    """Canonical wire bytes for one JSON object (newline-terminated)."""
    return (json.dumps(body) + "\n").encode("utf-8")


def decode(data: bytes) -> Dict[str, Any]:
    """Parse one wire JSON object; raises ``ValueError`` on junk."""
    try:
        body = json.loads(data.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as err:
        raise ValueError(f"malformed JSON request: {err}") from None
    if not isinstance(body, dict):
        raise ValueError(
            f"request must be a JSON object, got {type(body).__name__}"
        )
    return body


def dispatch(
    backend: Any, method: str, params: Optional[Dict[str, Any]]
) -> Tuple[int, Dict[str, Any]]:
    """Apply one wire request to ``backend``; returns ``(status, body)``.

    ``backend`` is anything with the :class:`LocalizationService` query
    surface — the in-process service itself or a
    :class:`~repro.serve.shard.ShardedService` router. Never raises for
    contract errors: they come back as ``(status, error_body)`` so every
    transport reports them the same way.
    """
    params = params if params is not None else {}
    try:
        if method not in METHODS:
            raise KeyError(
                f"unknown method {method!r}; known: {', '.join(METHODS)}"
            )
        if not isinstance(params, dict):
            raise TypeError(
                f"params must be a JSON object, got {type(params).__name__}"
            )
        return 200, _HANDLERS[method](backend, params)
    except DropResponse:
        raise  # fault injection: the transport must sever the connection
    except Exception as error:  # noqa: BLE001 - the protocol boundary
        return error_status(error), error_body(error)


# ----------------------------------------------------------------------
# per-method handlers (wire params -> service call -> JSON body)
# ----------------------------------------------------------------------
def _require(params: Dict[str, Any], *names: str) -> list:
    missing = [name for name in names if name not in params]
    if missing:
        raise ValueError(f"missing required param(s): {', '.join(missing)}")
    return [params[name] for name in names]


def _as_day(value: Any) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValueError(f"day must be a number, got {value!r}") from None


def _as_frames(value: Any) -> np.ndarray:
    try:
        frames = np.asarray(value, dtype=float)
    except (TypeError, ValueError):
        raise ValueError("frames must be a numeric array") from None
    if frames.ndim != 2:
        raise ValueError(
            f"frames must be a (frames, links) array, got shape {frames.shape}"
        )
    return frames


def _as_rss(value: Any) -> np.ndarray:
    try:
        rss = np.asarray(value, dtype=float)
    except (TypeError, ValueError):
        raise ValueError("rss must be a numeric vector") from None
    if rss.ndim != 1:
        raise ValueError(f"rss must be a vector, got shape {rss.shape}")
    return rss


def _batch_body(
    site: str, day: float, result: Any, include_scores: bool
) -> Dict[str, Any]:
    body = {
        "site": site,
        "day": day,
        "frame_count": int(result.cells.shape[0]),
        "cells": result.cells.tolist(),
        "positions": result.positions.tolist(),
    }
    if include_scores:
        body["scores"] = result.scores.tolist()
    if getattr(result, "stale", False):
        # Degraded-mode serving: answered from the last verified snapshot
        # because no live replica could. Absent on fresh answers.
        body["stale"] = True
    return body


def _per_frame_batch_body(
    backend: Any, site: str, frames: Any, day: float
) -> Dict[str, Any]:
    cells: List[int] = []
    positions: List[List[float]] = []
    best: List[float] = []
    stale = False
    for frame in np.asarray(frames, dtype=float):
        result = backend.query(site, frame, day)
        cell = int(result.cell)
        cells.append(cell)
        positions.append(
            [float(result.position.x), float(result.position.y)]
        )
        best.append(float(result.scores[cell]))
        stale = stale or bool(getattr(result, "stale", False))
    body = {
        "site": site,
        "day": day,
        "frame_count": len(cells),
        "cells": cells,
        "positions": positions,
        "best": best,
    }
    if stale:
        body["stale"] = True
    return body


def _handle_query(backend: Any, params: Dict[str, Any]) -> Dict[str, Any]:
    """Localize one RSS frame.

    Errors: 400 (malformed params/RSS), 404 (unknown site), 409 (no
    epoch serving that day), 503 (not commissioned / no live replica).
    """
    site, rss, day = _require(params, "site", "rss", "day")
    result = backend.query(str(site), _as_rss(rss), _as_day(day))
    cell = int(result.cell)
    body = {
        "site": site,
        "day": _as_day(day),
        "cell": cell,
        "position": [float(result.position.x), float(result.position.y)],
        "score": float(result.scores[cell]),
    }
    if getattr(result, "stale", False):
        body["stale"] = True
    return body


def _handle_query_batch(
    backend: Any, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Localize a batch of frames (optionally per-frame for bit-identity).

    Errors: 400 (malformed params/frames), 404 (unknown site), 409 (no
    epoch serving that day), 503 (not commissioned / no live replica).
    """
    site, frames, day = _require(params, "site", "frames", "day")
    day = _as_day(day)
    if params.get("per_frame"):
        # Transparent client-side micro-batching rides on this: each frame
        # goes through the exact single-query code path (batch-of-one GEMM)
        # so the answers are bit-identical to N separate ``query`` calls.
        # A true batched GEMM uses a different BLAS reduction order and can
        # flip the last mantissa bits at realistic link/cell counts.
        return _per_frame_batch_body(backend, str(site), _as_frames(frames), day)
    result = backend.query_batch(str(site), _as_frames(frames), day)
    body = _batch_body(site, day, result, bool(params.get("include_scores")))
    if params.get("best_scores") and result.scores is not None:
        # Per-frame matched score (``scores[i, cells[i]]``) without the
        # full N x cells matrix — what a transparently-batched single
        # query needs to reconstruct its ``score`` field bit-exactly.
        scores = np.asarray(result.scores)
        body["best"] = [
            float(scores[index, cell])
            for index, cell in enumerate(result.cells)
        ]
    return body


def _handle_query_trace(
    backend: Any, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Localize a live trace in one backend call (streamable encoding).

    Errors: 400 (malformed params/frames), 404 (unknown site), 409 (no
    epoch serving that day), 503 (not commissioned / no live replica).
    """
    site, frames, day = _require(params, "site", "frames", "day")
    day = _as_day(day)
    trace = LiveTrace(day=day, rss=_as_frames(frames))
    result = backend.query_trace(str(site), trace)
    return _batch_body(site, day, result, bool(params.get("include_scores")))


def _handle_site_summary(
    backend: Any, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Per-site serving metadata.

    Errors: 400 (missing site param), 404 (unknown site).
    """
    (site,) = _require(params, "site")
    return dict(backend.site_summary(str(site)))


def _handle_summary(backend: Any, params: Dict[str, Any]) -> Dict[str, Any]:
    """Summary rows for every registered site.

    Errors: none.
    """
    return {"sites": [dict(row) for row in backend.summary()]}


def _handle_sites(backend: Any, params: Dict[str, Any]) -> Dict[str, Any]:
    """Registered site names.

    Errors: none.
    """
    return {"sites": list(backend.sites())}


def _handle_warm(backend: Any, params: Dict[str, Any]) -> Dict[str, Any]:
    """Materialize (and commission) the named sites, or all of them.

    Errors: 400 (sites not a list), 404 (unknown site).
    """
    sites = params.get("sites")
    if sites is not None and not isinstance(sites, (list, tuple)):
        raise ValueError("sites must be a list of site names")
    warmed = backend.warm(None if sites is None else [str(s) for s in sites])
    return {"warmed": list(warmed)}


def _handle_update(backend: Any, params: Dict[str, Any]) -> Dict[str, Any]:
    """Run one fingerprint update at ``day`` (never auto-retried).

    Errors: 400 (malformed params / bad cold policy), 404 (unknown
    site), 503 (cold site with cold="raise", or a replica down during
    fan-out).
    """
    site, day = _require(params, "site", "day")
    day = _as_day(day)
    cold = str(params.get("cold", "raise"))
    report = backend.update(str(site), day, cold=cold)
    if report is None:
        return {"site": site, "day": day, "action": "commissioned"}
    return {
        "site": site,
        "day": day,
        "action": "updated",
        "samples_taken": int(report.samples_taken),
        "seconds_spent": float(report.seconds_spent),
        "full_survey_seconds": float(report.full_survey_seconds),
        "savings_factor": float(report.savings_factor),
    }


def _handle_commission(
    backend: Any, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Survey and commission a site at ``day`` (never auto-retried).

    Errors: 400 (malformed params), 404 (unknown site), 503 (already
    commissioned, or a replica down during fan-out).
    """
    site, day = _require(params, "site", "day")
    day = _as_day(day)
    backend.commission(str(site), day)
    return {"site": site, "day": day, "action": "commissioned"}


def _handle_staleness(
    backend: Any, params: Dict[str, Any]
) -> Dict[str, Any]:
    """Days since the serving epoch (null for a cold site).

    Errors: 400 (malformed params), 404 (unknown site).
    """
    site, day = _require(params, "site", "day")
    day = _as_day(day)
    staleness = backend.staleness(str(site), day)
    return {
        "site": site,
        "day": day,
        "staleness": None if staleness is None else float(staleness),
    }


def _handle_stats(backend: Any, params: Dict[str, Any]) -> Dict[str, Any]:
    """Service-level query/frame counters.

    Errors: none.
    """
    stats = backend.service_stats()
    return {
        "queries": int(stats.queries),
        "frames": int(stats.frames),
        "frames_by_site": dict(stats.frames_by_site),
    }


def _handle_health(backend: Any, params: Dict[str, Any]) -> Dict[str, Any]:
    """Liveness report (per-shard/per-replica when the backend is sharded).

    Errors: none.
    """
    health = getattr(backend, "health", None)
    if health is None:
        return {"status": "ok", "sites": len(backend.sites())}
    # The backend's richer report (per-shard liveness, per-site replica
    # availability for the sharded router) flows through unchanged.
    return dict(health())


def _handle_drift(backend: Any, params: Dict[str, Any]) -> Dict[str, Any]:
    """Measured drift of the serving fingerprints against a fresh probe.

    Errors: 400 (malformed params), 404 (unknown site), 503 (backend
    does not measure drift).
    """
    site, day = _require(params, "site", "day")
    day = _as_day(day)
    frames = params.get("frames", 32)
    try:
        frames = int(frames)
    except (TypeError, ValueError):
        raise ValueError(f"frames must be an integer, got {frames!r}") from None
    drift = getattr(backend, "drift", None)
    if drift is None:
        raise RuntimeError("this backend does not measure drift")
    reading = drift(str(site), day, frames)
    if reading is None:
        return {"site": site, "day": day, "drift": None}
    return {"drift": dict(reading)}


def _handle_scrub(backend: Any, params: Dict[str, Any]) -> Dict[str, Any]:
    """One synchronous anti-entropy scrub pass.

    Errors: 400 (sites not a list), 404 (unknown site), 503 (backend is
    not a sharded service).
    """
    sites = params.get("sites")
    if sites is not None and not isinstance(sites, (list, tuple)):
        raise ValueError("sites must be a list of site names")
    scrub = getattr(backend, "scrub", None)
    if scrub is None:
        raise RuntimeError(
            "this backend cannot scrub: it is not a sharded service"
        )
    return dict(scrub(None if sites is None else [str(s) for s in sites]))


def _handle_resize(backend: Any, params: Dict[str, Any]) -> Dict[str, Any]:
    """Live-resize the worker fleet (never auto-retried).

    Errors: 400 (shards not a positive integer), 503 (backend is not a
    sharded service, or a replica down during the move).
    """
    (shards,) = _require(params, "shards")
    try:
        shards = int(shards)
    except (TypeError, ValueError):
        raise ValueError(f"shards must be an integer, got {shards!r}") from None
    resize = getattr(backend, "resize", None)
    if resize is None:
        raise RuntimeError(
            "this backend cannot resize: it is not a sharded service"
        )
    return dict(resize(shards))


# ----------------------------------------------------------------------
# query_trace streaming (chunked encoding of one already-computed result)
# ----------------------------------------------------------------------
#: Default frames per streamed chunk line. Chosen so one chunk line is a
#: few KiB — small enough that peak per-message buffering is flat in
#: trace length, large enough that framing overhead stays negligible.
STREAM_CHUNK_FRAMES = 64

#: Body keys that are per-frame columns (chunked); everything else is
#: scalar metadata and rides in the stream header.
_STREAM_COLUMNS = ("cells", "positions", "scores")


def iter_trace_stream(
    body: Dict[str, Any], chunk: int = STREAM_CHUNK_FRAMES
) -> Iterator[Dict[str, Any]]:
    """Yield the stream messages encoding one ``query_trace`` body.

    The first message is the header (scalar metadata + ``"stream": true``
    + ``frame_count``), then ``seq``-numbered chunk messages carrying at
    most ``chunk`` frames of each per-frame column, then ``{"end": true}``.
    The *compute* is already done — this chunks only the JSON encoding,
    which is what preserves bit-identity (batch-of-N vs batch-of-1 BLAS
    reductions may break exact-distance ties differently).
    """
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    header = {
        key: value
        for key, value in body.items()
        if key not in _STREAM_COLUMNS
    }
    header["stream"] = True
    yield header
    columns = [
        (key, body[key]) for key in _STREAM_COLUMNS if key in body
    ]
    frame_count = len(body.get("cells", ()))
    for seq, start in enumerate(range(0, frame_count, chunk)):
        part: Dict[str, Any] = {"seq": seq}
        for key, column in columns:
            part[key] = column[start : start + chunk]
        yield part
    yield {"end": True}


def merge_trace_stream(
    header: Dict[str, Any], parts: Iterable[Dict[str, Any]]
) -> Dict[str, Any]:
    """Client-side inverse of :func:`iter_trace_stream`.

    Reassembles the full response body from the header and the chunk
    messages (transport framing keys — ``id``/``status``/``stream``/
    ``seq``/``end`` — are dropped). The result is exactly the body a
    non-streaming ``query_trace`` response would have carried.
    """
    body = {
        key: value
        for key, value in header.items()
        if key not in ("id", "status", "stream")
    }
    columns: Dict[str, list] = {}
    expected_seq = 0
    for part in parts:
        if part.get("end"):
            break
        seq = part.get("seq")
        if seq != expected_seq:
            raise ValueError(
                f"stream chunk out of order: expected seq {expected_seq}, "
                f"got {seq!r}"
            )
        expected_seq += 1
        for key in _STREAM_COLUMNS:
            if key in part:
                columns.setdefault(key, []).extend(part[key])
    body.update(columns)
    return body


_HANDLERS = {
    "query": _handle_query,
    "query_batch": _handle_query_batch,
    "query_trace": _handle_query_trace,
    "site_summary": _handle_site_summary,
    "summary": _handle_summary,
    "sites": _handle_sites,
    "warm": _handle_warm,
    "update": _handle_update,
    "commission": _handle_commission,
    "staleness": _handle_staleness,
    "stats": _handle_stats,
    "health": _handle_health,
    "resize": _handle_resize,
    "drift": _handle_drift,
    "scrub": _handle_scrub,
}
