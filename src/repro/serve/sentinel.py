"""Drift measured, not assumed: score the live model on held-out probes.

The update scheduler's day-count staleness is a *proxy*: it says how old
the serving epoch is, not how wrong it has become. This module measures
the thing itself. :func:`measure_drift` draws a small batch of held-out
probe frames from the site's environment at the query day, localizes them
with the live fingerprint database, and compares against the *simulator's
ground-truth positions* — then repeats the identical draw at the serving
epoch's own day to get the fresh-conditions baseline. The difference is
the localization error the fingerprints have accrued purely by aging.

Two design rules keep the measurement honest:

* **The reference is independent of the model being judged.** Probes are
  scored against ground truth the simulator knows (``true_positions`` of
  a :class:`~repro.sim.trace.LiveTrace`), never against positions or
  fingerprints the pipeline itself reconstructed — scoring a model
  against its own outputs is the circular-reference trap (SNIPPETS.md
  snippet 1 documents a production system falling into exactly this), and
  it reports perfect health right up until the answers are garbage.
* **The probe stream is independent of the serving streams.** Probe
  randomness derives from ``task_key(seed, "drift-probe", ...)`` — a
  different stream family than the collector's survey/update draws — so
  measuring drift never perturbs the pipeline's replayable state, and the
  same ``(seed, day)`` always draws the same probe frames. Both the
  probe-day and baseline-day traces replay one identical noise/jitter
  draw (fresh collectors with the same seed), so the only thing that
  differs between the two error numbers is the day-dependent channel
  drift — the quantity being measured.

``LocalizationService.drift`` wraps this per site and the scheduler's
``policy="drift"`` refreshes on measured degradation instead of age; the
sharded router forwards ``drift`` to the owning worker like any read.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

import numpy as np

from repro.core.pipeline import TafLoc
from repro.sim.collector import RssCollector
from repro.util.rng import counter_stream, task_key

__all__ = ["DriftReading", "measure_drift", "probe_seed"]


def probe_seed(seed: int, identity) -> int:
    """The held-out probe stream's seed, independent of serving streams.

    ``identity`` is whatever names the pipeline (the manager passes the
    spec fingerprint, mirroring :func:`~repro.serve.manager.pipeline_seed`
    so twin environments still get distinct probe draws per pipeline key).
    """
    return task_key(seed, "drift-probe", identity)


@dataclass(frozen=True)
class DriftReading:
    """One drift measurement for one pipeline at one day.

    ``degradation_m`` is the headline number: median localization error
    of held-out probes at ``day`` minus the same probes' error under
    fresh conditions (drawn at ``epoch_day``, scored by the same serving
    epoch). Near zero for a just-refreshed site; grows with the channel
    drift the paper's Fig. 3 quantifies.
    """

    day: float
    epoch_day: float
    frames: int
    probe_error_m: float
    baseline_error_m: float
    degradation_m: float

    def to_dict(self) -> Dict[str, float]:
        """JSON-plain form (the wire ``drift`` method's body)."""
        return asdict(self)


def measure_drift(
    system: TafLoc, day: float, *, frames: int = 32, seed: int = 0
) -> DriftReading:
    """Measure how far ``system``'s serving epoch has drifted by ``day``.

    Raises ``RuntimeError`` for an uncommissioned pipeline and
    ``LookupError`` when no epoch serves ``day`` (the same contract as
    queries at that day). The pipeline's own RNG streams are untouched.
    """
    count = int(frames)
    if count < 1:
        raise ValueError(f"frames must be >= 1, got {frames}")
    if not system.commissioned or system.database.epoch_count == 0:
        raise RuntimeError(
            "cannot measure drift: the pipeline is not commissioned"
        )
    day = float(day)
    epoch_day = float(system.database.at(day).day)  # LookupError before t0
    scenario = system.collector.scenario
    cells = counter_stream(task_key(int(seed), "drift-cells"), 0).integers(
        0, scenario.deployment.cell_count, size=count
    )
    matcher = system.matcher_for_day(day)

    def probe_error(at_day: float) -> float:
        # A fresh collector per draw: both days replay the identical
        # jitter/noise stream, isolating the day-dependent drift term.
        collector = RssCollector(
            scenario,
            system.collector.protocol,
            seed=task_key(int(seed), "drift-frames"),
        )
        trace = collector.live_trace(at_day, cells)
        deltas = matcher.match_batch(trace.rss).positions - trace.true_positions
        return float(np.median(np.hypot(deltas[:, 0], deltas[:, 1])))

    probe = probe_error(day)
    baseline = probe_error(epoch_day)
    return DriftReading(
        day=day,
        epoch_day=epoch_day,
        frames=count,
        probe_error_m=probe,
        baseline_error_m=baseline,
        degradation_m=probe - baseline,
    )
