"""The serving smoke gates: wire identity, shard identity, resilience.

``python -m repro.serve.check`` (CI's ``frontend-smoke`` and
``resilience-smoke`` steps, also ``make frontend-smoke`` /
``make resilience-smoke``) stands up the full serving stack at toy scale
and asserts the contracts everything in this package is built around:

1. **Wire identity** — a query batch routed through a live HTTP server
   (and through the unix-socket transport, and through the asyncio
   front-end: one-at-a-time over ``tcp://``, pipelined singles, and the
   chunk-streamed ``query_trace`` — whose peak per-message bytes must
   also stay flat in trace length) returns cells/positions/scores
   bit-identical to an in-process
   :class:`~repro.serve.service.LocalizationService` built with the same
   seeds. JSON floats round-trip exactly; this gate notices if that, the
   encoding, or the routing ever stops being true.
2. **Shard identity** — a :class:`~repro.serve.shard.ShardedService` with
   N >= 2 workers answers the same query stream bit-identically to N = 1
   and to the in-process service.
3. **Error contract** — a wrong-site query comes back as 404/KeyError
   through the wire, matching the in-process contract.
4. **Resilience** — with 3 shards and R = 2 replicas over snapshots,
   ``kill -9`` of *each* worker in turn under query load loses zero
   queries and changes zero bits; every victim respawns, warms from its
   snapshots (not a re-survey — asserted via the worker's
   ``snapshots_restored`` counter), and a live grow/shrink resize keeps
   answers bit-identical throughout.
5. **Trust (anti-entropy)** — a seed-deterministic ``corrupt`` fault
   bit-flips one replica's fingerprint state; a quorum-read fleet must
   deliver **zero mismatched answers** while alarming
   (``read_divergences``), quarantining, and read-repairing the liar
   from its snapshot. A corrupted *secondary* (no query traffic touches
   it) must be found by the background scrub instead. Killing every
   replica of a site with degraded mode on must answer from the last
   verified snapshot — bit-identical, marked ``stale`` — rather than
   raise. Finally a snapshot-lifecycle soak (update + maintenance per
   day) must keep the snapshot directory bounded by keep-last-K.

``--only wire|shards|resilience`` runs a subset (CI splits the fast
identity gates from the process-killing one; ``resilience`` includes the
trust gates). On failure the workload seed is printed — and written as
JSON via ``--seed-out`` — so CI uploads the exact fault schedule to
replay locally. Exit code 0 means every check held; 1 names what broke.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.eval.engine import cached_scenario
from repro.serve.aio import AioFrontend, AsyncServiceClient
from repro.serve.faults import FaultInjector
from repro.serve.frontend import HttpFrontend, ServiceClient, UnixFrontend
from repro.serve.service import LocalizationService
from repro.serve.shard import ShardedService
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import build_scenario, get_scenario_spec
from repro.sim.trace import LiveTrace
from repro.util.rng import counter_stream, task_key

__all__ = ["main", "run_check", "run_resilience_check", "run_trust_check"]

_DEFAULT_SITES = ("square-3m", "square-4m")
_RESILIENCE_SITES = ("square-3m", "square-4m", "square-5m")
_SECTIONS = ("wire", "shards", "resilience")


def _workloads(
    specs: Dict[str, object],
    protocol: CollectionProtocol,
    frames: int,
    seed: int,
) -> Dict[str, np.ndarray]:
    out = {}
    for index, (site, spec) in enumerate(specs.items()):
        scenario = cached_scenario(spec, build_scenario)
        cells = counter_stream(seed, 500 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        out[site] = RssCollector(
            scenario, protocol, seed=task_key(seed, "frontend-check", site)
        ).live_trace(0.0, cells).rss
    return out


def _identical(wire, reference) -> bool:
    return bool(
        np.array_equal(wire.cells, reference.cells)
        and np.array_equal(wire.positions, reference.positions)
        and (
            wire.scores is None
            or np.array_equal(wire.scores, reference.scores)
        )
    )


async def _aio_pipeline_rows(
    address: str,
    service: LocalizationService,
    workloads: Dict[str, np.ndarray],
    reference: Dict[str, object],
) -> List[Tuple[str, bool, str]]:
    """Async-client gates: pipelined singles + streamed-trace identity.

    Pipelined single queries (8 in flight, responses matched by id, may
    complete out of order) must each equal the sequential in-process
    single query; a chunk-streamed ``query_trace`` must reassemble
    bit-identically to the in-process answer, with the client's peak
    per-message bytes flat between a short trace and one 8x longer.
    """
    rows: List[Tuple[str, bool, str]] = []
    async with AsyncServiceClient(address) as client:
        for site, rss in workloads.items():
            results = await client.pipeline_queries(site, rss, 0.0, depth=8)
            singles = [service.query(site, row, 0.0) for row in rss]
            ok = all(
                wire.cell == int(one.cell)
                and wire.position
                == (float(one.position.x), float(one.position.y))
                and wire.score == float(one.scores[one.cell])
                for wire, one in zip(results, singles)
            )
            rows.append(
                (
                    f"aio-pipelined:{site}",
                    ok,
                    f"{len(results)} singles, depth 8",
                )
            )
        site, rss = next(iter(workloads.items()))
        long_rss = np.concatenate([rss] * 8, axis=0)
        trace_reference = service.query_trace(
            site, LiveTrace(day=0.0, rss=long_rss)
        )
        client.reset_peak()
        streamed = await client.query_trace(site, long_rss, 0.0, chunk=16)
        long_peak = client.peak_message_bytes
        client.reset_peak()
        await client.query_trace(site, rss, 0.0, chunk=16)
        short_peak = client.peak_message_bytes
        identical = bool(
            np.array_equal(streamed.cells, trace_reference.cells)
            and np.array_equal(streamed.positions, trace_reference.positions)
        )
        # Flat buffering: peak per-message bytes is set by the chunk
        # size, so an 8x longer trace must not (meaningfully) grow it.
        flat = long_peak <= 2 * short_peak
        rows.append(
            (
                f"aio-stream-trace:{site}",
                identical and flat,
                f"{long_rss.shape[0]} frames, peak msg {long_peak} B "
                f"(vs {short_peak} B for {rss.shape[0]} frames)",
            )
        )
    return rows


def run_check(
    *,
    sites: Tuple[str, ...] = _DEFAULT_SITES,
    frames: int = 16,
    shards: int = 2,
    samples_per_cell: int = 2,
    seed: int = 2016,
    only: Optional[Sequence[str]] = None,
) -> List[Tuple[str, bool, str]]:
    """Run the gates; returns ``(name, passed, detail)`` rows.

    ``only`` restricts to a subset of ``("wire", "shards", "resilience")``;
    ``None`` runs everything.
    """
    sections = tuple(only) if only is not None else _SECTIONS
    for section in sections:
        if section not in _SECTIONS:
            raise ValueError(
                f"unknown section {section!r}; known: {', '.join(_SECTIONS)}"
            )
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=5
    )
    rows: List[Tuple[str, bool, str]] = []
    if not ({"wire", "shards"} & set(sections)):
        if "resilience" in sections:
            rows.extend(run_resilience_check(seed=seed, frames=frames))
            rows.extend(run_trust_check(seed=seed, frames=frames))
        return rows
    specs = {name: get_scenario_spec(name) for name in sites}
    service = LocalizationService.from_specs(specs, protocol=protocol, seed=seed)
    service.warm()
    workloads = _workloads(specs, protocol, frames, seed)
    reference = {
        site: service.query_batch(site, rss, 0.0)
        for site, rss in workloads.items()
    }

    if "wire" in sections:
        # 1. HTTP wire identity (+ error contract through the wire).
        with HttpFrontend(service) as frontend:
            with ServiceClient(frontend.address) as client:
                for site, rss in workloads.items():
                    wire = client.query_batch(
                        site, rss, 0.0, include_scores=True
                    )
                    rows.append(
                        (
                            f"http:{site}",
                            _identical(wire, reference[site]),
                            f"{frontend.address} {wire.frame_count} frames",
                        )
                    )
                try:
                    client.query_batch("nowhere", workloads[sites[0]], 0.0)
                    rows.append(("http:error-contract", False, "no KeyError"))
                except KeyError:
                    rows.append(
                        ("http:error-contract", True, "404 -> KeyError")
                    )

        # 2. Unix-socket wire identity.
        with tempfile.TemporaryDirectory() as tmp:
            path = str(Path(tmp) / "serve.sock")
            with UnixFrontend(service, path) as frontend:
                with ServiceClient(frontend.address) as client:
                    for site, rss in workloads.items():
                        wire = client.query_batch(
                            site, rss, 0.0, include_scores=True
                        )
                        rows.append(
                            (
                                f"unix:{site}",
                                _identical(wire, reference[site]),
                                f"{frames} frames",
                            )
                        )

        # 3. Asyncio front-end: the same protocol on an event loop. The
        # sync client (tcp://) covers one-at-a-time identity plus the
        # error contract; the async client covers pipelined singles and
        # the chunk-streamed trace (identity + flat peak buffering).
        with AioFrontend(service) as frontend:
            with ServiceClient(frontend.address) as client:
                for site, rss in workloads.items():
                    wire = client.query_batch(
                        site, rss, 0.0, include_scores=True
                    )
                    rows.append(
                        (
                            f"aio:{site}",
                            _identical(wire, reference[site]),
                            f"{frontend.address} {wire.frame_count} frames",
                        )
                    )
                try:
                    client.query_batch("nowhere", workloads[sites[0]], 0.0)
                    rows.append(("aio:error-contract", False, "no KeyError"))
                except KeyError:
                    rows.append(
                        ("aio:error-contract", True, "404 -> KeyError")
                    )
            rows.extend(
                asyncio.run(
                    _aio_pipeline_rows(
                        frontend.address, service, workloads, reference
                    )
                )
            )

    if "shards" in sections:
        # 3. Shard identity: N workers vs one worker vs in-process.
        for count in sorted({1, shards}):
            with ShardedService(
                specs, shards=count, protocol=protocol, seed=seed
            ) as sharded:
                sharded.warm()
                results = sharded.map_query_batch(
                    [(site, rss, 0.0) for site, rss in workloads.items()]
                )
                for (site, _), result in zip(workloads.items(), results):
                    rows.append(
                        (
                            f"shards={count}:{site}",
                            _identical(result, reference[site]),
                            "worker process" if count == 1 else "fan-out",
                        )
                    )

    if "resilience" in sections:
        rows.extend(run_resilience_check(seed=seed, frames=frames))
        rows.extend(run_trust_check(seed=seed, frames=frames))
    return rows


def run_resilience_check(
    *,
    sites: Tuple[str, ...] = _RESILIENCE_SITES,
    frames: int = 12,
    samples_per_cell: int = 2,
    seed: int = 2016,
    recovery_timeout: float = 60.0,
) -> List[Tuple[str, bool, str]]:
    """The fault gate: kill -9 every worker under load, lose nothing.

    A 3-shard, R = 2 fleet over a snapshot directory serves |sites|
    distinct-scenario sites. For each shard in turn: SIGKILL its worker,
    immediately push the full query workload (every answer must come back
    — zero failed queries — and match the undisturbed in-process
    reference bit for bit), then wait for the background respawn and
    assert the replacement warmed from snapshots rather than re-surveying
    (its manager's ``snapshots_restored`` > 0). Finally a live resize up
    to 4 shards and back down to 2 must keep every answer bit-identical.
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=5
    )
    specs = {f"site-{name}": get_scenario_spec(name) for name in sites}
    reference_service = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed, share_pipelines=False
    )
    reference_service.warm()
    workloads = _workloads(specs, protocol, frames, seed)
    reference = {
        site: reference_service.query_batch(site, rss, 0.0)
        for site, rss in workloads.items()
    }
    rows: List[Tuple[str, bool, str]] = []
    with tempfile.TemporaryDirectory() as tmp:
        with ShardedService(
            specs,
            shards=3,
            replicas=2,
            snapshot_dir=Path(tmp) / "snapshots",
            call_timeout=30.0,
            protocol=protocol,
            seed=seed,
        ) as fleet:
            fleet.warm()
            injector = FaultInjector(fleet)
            for victim in range(3):
                injector.kill(victim)
                failed = 0
                mismatched = 0
                for site, rss in workloads.items():
                    try:
                        result = fleet.query_batch(site, rss, 0.0)
                    except Exception:  # noqa: BLE001 - counted, not raised
                        failed += 1
                        continue
                    if not _identical(result, reference[site]):
                        mismatched += 1
                started = time.monotonic()
                deadline = started + recovery_timeout
                while (
                    not fleet._shards[victim].alive()
                    and time.monotonic() < deadline
                ):
                    fleet.health()  # the monitoring poll drives recovery
                    time.sleep(0.05)
                recovered = fleet._shards[victim].alive()
                recovery_ms = (time.monotonic() - started) * 1e3
                restored = 0
                if recovered:
                    restored = int(
                        fleet._shards[victim]
                        .call("health")
                        .get("snapshots_restored", 0)
                    )
                rows.append(
                    (
                        f"resilience:kill-shard-{victim}",
                        failed == 0 and mismatched == 0 and recovered,
                        f"{failed} failed, {mismatched} mismatched, "
                        f"respawned in {recovery_ms:.0f} ms",
                    )
                )
                rows.append(
                    (
                        f"resilience:snapshot-warm-{victim}",
                        restored > 0,
                        f"{restored} site(s) restored from snapshots",
                    )
                )
            # Post-recovery identity: the full fleet answers like new.
            results = fleet.map_query_batch(
                [(site, rss, 0.0) for site, rss in workloads.items()]
            )
            rows.append(
                (
                    "resilience:post-recovery-identity",
                    all(
                        _identical(result, reference[site])
                        for (site, _), result in zip(
                            workloads.items(), results
                        )
                    ),
                    f"{len(results)} sites, "
                    f"{fleet.router_stats.respawns} respawns",
                )
            )
            # Live resize keeps answering, bit-identically.
            grown = fleet.resize(4)
            grow_ok = all(
                _identical(fleet.query_batch(site, rss, 0.0), reference[site])
                for site, rss in workloads.items()
            )
            shrunk = fleet.resize(2)
            shrink_ok = all(
                _identical(fleet.query_batch(site, rss, 0.0), reference[site])
                for site, rss in workloads.items()
            )
            rows.append(
                (
                    "resilience:resize",
                    grow_ok and shrink_ok,
                    f"3->4 moved {len(grown['moved_sites'])}, "
                    f"4->2 moved {len(shrunk['moved_sites'])}",
                )
            )
    return rows


def run_trust_check(
    *,
    sites: Tuple[str, ...] = ("square-3m", "square-4m"),
    frames: int = 12,
    samples_per_cell: int = 2,
    seed: int = 2016,
) -> List[Tuple[str, bool, str]]:
    """The anti-entropy gate: corruption must never reach a client.

    A 3-shard, R = 2 quorum-read fleet with degraded mode serves two
    distinct-scenario sites. The episode: bit-flip the *primary*
    replica's fingerprint state (seed-deterministic ``corrupt`` fault) —
    every subsequent answer must still match the undisturbed in-process
    reference bit for bit while the router alarms
    (``read_divergences``), quarantines the liar, and repairs it from
    the authoritative snapshot. Then bit-flip a *secondary* replica that
    no read quorum happens to touch and assert the background scrub —
    not client traffic — finds and repairs it. Then kill every replica
    of one site and assert degraded mode answers from the last verified
    snapshot (bit-identical, ``stale`` marked) instead of raising.
    Separately, a snapshot-lifecycle soak (update + maintenance per day
    with keep-last-K retention) must hold the snapshot directory
    bounded.
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=5
    )
    specs = {f"site-{name}": get_scenario_spec(name) for name in sites}
    reference_service = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed, share_pipelines=False
    )
    reference_service.warm()
    workloads = _workloads(specs, protocol, frames, seed)
    reference = {
        site: reference_service.query_batch(site, rss, 0.0)
        for site, rss in workloads.items()
    }
    rows: List[Tuple[str, bool, str]] = []
    site_names = sorted(specs)
    with tempfile.TemporaryDirectory() as tmp:
        with ShardedService(
            specs,
            shards=3,
            replicas=2,
            snapshot_dir=Path(tmp) / "snapshots",
            snapshot_keep=3,
            read_mode="quorum",
            degraded_mode=True,
            call_timeout=30.0,
            protocol=protocol,
            seed=seed,
        ) as fleet:
            fleet.warm()
            injector = FaultInjector(fleet)
            stats = fleet.router_stats

            # 1. Corrupt the primary; quorum reads must hide + repair it.
            target = site_names[0]
            injector.corrupt(fleet.replicas[target][0], site=target, seed=seed)
            failed = mismatched = 0
            for site, rss in workloads.items():
                try:
                    result = fleet.query_batch(site, rss, 0.0)
                except Exception:  # noqa: BLE001 - counted, not raised
                    failed += 1
                    continue
                if not _identical(result, reference[site]) or getattr(
                    result, "stale", False
                ):
                    mismatched += 1
            rows.append(
                (
                    "trust:quorum-read-repair",
                    failed == 0
                    and mismatched == 0
                    and stats.read_divergences >= 1
                    and stats.quarantines >= 1
                    and stats.repairs >= 1,
                    f"{failed} failed, {mismatched} mismatched, "
                    f"{stats.read_divergences} divergence(s), "
                    f"{stats.repairs} repair(s)",
                )
            )
            report = fleet.scrub()
            rows.append(
                (
                    "trust:scrub-clean-after-repair",
                    not report["divergent_sites"]
                    and not fleet.quarantined_replicas(),
                    f"{report['sites_checked']} site(s) checked",
                )
            )

            # 2. Corrupt a secondary: only the scrub can see it.
            other = site_names[1]
            injector.corrupt(
                fleet.replicas[other][1], site=other, seed=seed + 1
            )
            report = fleet.scrub()
            rows.append(
                (
                    "trust:scrub-detects-silent-corruption",
                    other in report["divergent_sites"]
                    and report["repaired"] >= 1,
                    f"divergent={report['divergent_sites']}, "
                    f"repaired {report['repaired']}",
                )
            )
            post = fleet.query_batch(other, workloads[other], 0.0)
            rows.append(
                (
                    "trust:post-scrub-identity",
                    _identical(post, reference[other])
                    and not getattr(post, "stale", False),
                    f"{post.frame_count} frames, "
                    f"{len(fleet.quarantined_replicas())} quarantined",
                )
            )

            # 3. Kill every replica of one site: degraded mode must
            # answer from the last verified snapshot, stale-marked.
            victim = site_names[0]
            for index in set(fleet.replicas[victim]):
                injector.kill(index)
            try:
                stale_result = fleet.query_batch(victim, workloads[victim], 0.0)
            except Exception as error:  # noqa: BLE001 - reported below
                rows.append(("trust:degraded-stale-answer", False, repr(error)))
            else:
                rows.append(
                    (
                        "trust:degraded-stale-answer",
                        bool(getattr(stale_result, "stale", False))
                        and _identical(stale_result, reference[victim]),
                        f"stale={getattr(stale_result, 'stale', False)}, "
                        f"{stats.degraded_answers} degraded answer(s)",
                    )
                )

    # 4. Snapshot lifecycle soak: daily update + maintenance with
    # keep-last-K retention must keep the directory bounded.
    keep, updates = 2, 6
    with tempfile.TemporaryDirectory() as tmp:
        soak = LocalizationService.from_specs(
            {"soak": get_scenario_spec(sites[0])},
            protocol=protocol,
            seed=seed,
            snapshot_dir=tmp,
            snapshot_keep=keep,
        )
        soak.warm()
        # update() auto-snapshots, so prune work can land there rather
        # than in the maintenance pass: measure the store's lifetime
        # prune counters across the whole soak, not one pass's report.
        store = soak.manager.snapshot_store
        counts = []
        for day in range(1, updates + 1):
            soak.update("soak", float(day))
            soak.snapshot_maintenance()
            counts.append(len(list(Path(tmp).glob("*.snap.npz"))))
        removed, reclaimed = store.pruned_files, store.pruned_bytes
        rows.append(
            (
                "trust:snapshot-retention",
                max(counts) <= keep and removed > 0,
                f"max {max(counts)} file(s) on disk (keep={keep}), "
                f"{removed} pruned, {reclaimed} bytes reclaimed "
                f"over {updates} update days",
            )
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.check",
        description="Serving smoke gates: wire/shard identity + resilience.",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=_SECTIONS,
        default=None,
        help="run only this section (repeatable); default: all sections",
    )
    parser.add_argument(
        "--seed", type=int, default=2016, help="workload seed (default 2016)"
    )
    parser.add_argument(
        "--seed-out",
        default=None,
        metavar="PATH",
        help="on failure, write {seed, failed} as JSON here so CI can "
        "upload the exact fault schedule for a local replay",
    )
    args = parser.parse_args(argv)
    rows = run_check(seed=args.seed, only=args.only)
    width = max(len(name) for name, _, _ in rows)
    for name, passed, detail in rows:
        print(f"{name:<{width}}  {'ok' if passed else 'MISMATCH'}  {detail}")
    failed = [name for name, passed, _ in rows if not passed]
    if failed:
        print(
            f"FAIL: {len(failed)} check(s) broke: " + ", ".join(failed),
            file=sys.stderr,
        )
        print(
            f"replay with: python -m repro.serve.check --seed {args.seed}"
            + "".join(f" --only {s}" for s in (args.only or [])),
            file=sys.stderr,
        )
        if args.seed_out:
            Path(args.seed_out).write_text(
                json.dumps(
                    {
                        "seed": args.seed,
                        "only": list(args.only or []),
                        "failed": failed,
                    },
                    indent=2,
                )
                + "\n"
            )
            print(f"fault-schedule seed written to {args.seed_out}",
                  file=sys.stderr)
        return 1
    print(f"serve smoke: all {len(rows)} checks passed (seed {args.seed})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
