"""The frontend smoke gate: wire and shard serving must not change bits.

``python -m repro.serve.check`` (CI's ``frontend-smoke`` step, also
``make frontend-smoke``) stands up the full serving stack at toy scale
and asserts the one contract everything in this package is built around:

1. **Wire identity** — a query batch routed through a live HTTP server
   (and through the unix-socket transport) returns cells/positions/scores
   bit-identical to an in-process
   :class:`~repro.serve.service.LocalizationService` built with the same
   seeds. JSON floats round-trip exactly; this gate notices if that, the
   encoding, or the routing ever stops being true.
2. **Shard identity** — a :class:`~repro.serve.shard.ShardedService` with
   N >= 2 workers answers the same query stream bit-identically to N = 1
   and to the in-process service.
3. **Error contract** — a wrong-site query comes back as 404/KeyError
   through the wire, matching the in-process contract.

Exit code 0 means every identity held; 1 names what broke.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro.eval.engine import cached_scenario
from repro.serve.frontend import HttpFrontend, ServiceClient, UnixFrontend
from repro.serve.service import LocalizationService
from repro.serve.shard import ShardedService
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import build_scenario, get_scenario_spec
from repro.util.rng import counter_stream, task_key

__all__ = ["main", "run_check"]

_DEFAULT_SITES = ("square-3m", "square-4m")


def _workloads(
    specs: Dict[str, object],
    protocol: CollectionProtocol,
    frames: int,
    seed: int,
) -> Dict[str, np.ndarray]:
    out = {}
    for index, (site, spec) in enumerate(specs.items()):
        scenario = cached_scenario(spec, build_scenario)
        cells = counter_stream(seed, 500 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        out[site] = RssCollector(
            scenario, protocol, seed=task_key(seed, "frontend-check", site)
        ).live_trace(0.0, cells).rss
    return out


def _identical(wire, reference) -> bool:
    return bool(
        np.array_equal(wire.cells, reference.cells)
        and np.array_equal(wire.positions, reference.positions)
        and (
            wire.scores is None
            or np.array_equal(wire.scores, reference.scores)
        )
    )


def run_check(
    *,
    sites: Tuple[str, ...] = _DEFAULT_SITES,
    frames: int = 16,
    shards: int = 2,
    samples_per_cell: int = 2,
    seed: int = 2016,
) -> List[Tuple[str, bool, str]]:
    """Run every gate; returns ``(name, passed, detail)`` rows."""
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=5
    )
    specs = {name: get_scenario_spec(name) for name in sites}
    service = LocalizationService.from_specs(specs, protocol=protocol, seed=seed)
    service.warm()
    workloads = _workloads(specs, protocol, frames, seed)
    reference = {
        site: service.query_batch(site, rss, 0.0)
        for site, rss in workloads.items()
    }
    rows: List[Tuple[str, bool, str]] = []

    # 1. HTTP wire identity (+ error contract through the wire).
    with HttpFrontend(service) as frontend:
        with ServiceClient(frontend.address) as client:
            for site, rss in workloads.items():
                wire = client.query_batch(site, rss, 0.0, include_scores=True)
                rows.append(
                    (
                        f"http:{site}",
                        _identical(wire, reference[site]),
                        f"{frontend.address} {wire.frame_count} frames",
                    )
                )
            try:
                client.query_batch("nowhere", workloads[sites[0]], 0.0)
                rows.append(("http:error-contract", False, "no KeyError"))
            except KeyError:
                rows.append(("http:error-contract", True, "404 -> KeyError"))

    # 2. Unix-socket wire identity.
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "serve.sock")
        with UnixFrontend(service, path) as frontend:
            with ServiceClient(frontend.address) as client:
                for site, rss in workloads.items():
                    wire = client.query_batch(
                        site, rss, 0.0, include_scores=True
                    )
                    rows.append(
                        (
                            f"unix:{site}",
                            _identical(wire, reference[site]),
                            f"{frames} frames",
                        )
                    )

    # 3. Shard identity: N workers vs one worker vs in-process.
    for count in sorted({1, shards}):
        with ShardedService(
            specs, shards=count, protocol=protocol, seed=seed
        ) as sharded:
            sharded.warm()
            results = sharded.map_query_batch(
                [(site, rss, 0.0) for site, rss in workloads.items()]
            )
            for (site, _), result in zip(workloads.items(), results):
                rows.append(
                    (
                        f"shards={count}:{site}",
                        _identical(result, reference[site]),
                        "worker process" if count == 1 else "fan-out",
                    )
                )
    return rows


def main(argv=None) -> int:
    rows = run_check()
    width = max(len(name) for name, _, _ in rows)
    for name, passed, detail in rows:
        print(f"{name:<{width}}  {'ok' if passed else 'MISMATCH'}  {detail}")
    failed = [name for name, passed, _ in rows if not passed]
    if failed:
        print(
            f"FAIL: {len(failed)} identity check(s) broke: "
            + ", ".join(failed),
            file=sys.stderr,
        )
        return 1
    print(f"frontend smoke: all {len(rows)} identity checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
