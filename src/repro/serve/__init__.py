"""Serving layer: many scenario realizations behind one query surface.

:class:`~repro.serve.manager.SiteManager` registers named sites and lazily
materializes one commissioned :class:`~repro.core.pipeline.TafLoc` pipeline
per distinct scenario spec (shared by fingerprint);
:class:`~repro.serve.service.LocalizationService` routes
``(site, day, RSS)`` queries to the right pipeline and answers them through
the batch matching kernels. On top of the in-process service sit the
deployment pieces:

* :mod:`repro.serve.frontend` — the wire front-ends (HTTP and unix-socket
  JSON protocol) plus :class:`~repro.serve.frontend.ServiceClient`;
* :mod:`repro.serve.scheduler` — staleness-driven background fingerprint
  refresh (interval / round-robin / priority policies);
* :mod:`repro.serve.shard` — site partitioning across worker processes
  with a pure-routing front-end, bit-identical for any shard count;
* :mod:`repro.serve.check` — the CI smoke gate asserting wire and shard
  answers equal the in-process service bit for bit.

See ``tafloc-repro serve --listen`` / ``query --connect`` for the CLI
surface and ``benchmarks/bench_perf.py`` for throughput numbers.
"""

from repro.serve.frontend import (
    HttpFrontend,
    RemoteBatchResult,
    RemoteMatchResult,
    ServiceClient,
    UnixFrontend,
)
from repro.serve.manager import (
    SiteManager,
    SiteManagerStats,
    pipeline_seed,
    reconstructor_seed,
)
from repro.serve.scheduler import (
    SchedulerConfig,
    SimClock,
    UpdateAction,
    UpdateScheduler,
)
from repro.serve.service import LocalizationService, ServiceStats
from repro.serve.shard import ShardedService, shard_for_site

__all__ = [
    "HttpFrontend",
    "LocalizationService",
    "RemoteBatchResult",
    "RemoteMatchResult",
    "SchedulerConfig",
    "ServiceClient",
    "ServiceStats",
    "ShardedService",
    "SimClock",
    "SiteManager",
    "SiteManagerStats",
    "UnixFrontend",
    "UpdateAction",
    "UpdateScheduler",
    "pipeline_seed",
    "reconstructor_seed",
    "shard_for_site",
]
