"""Serving layer: many scenario realizations behind one query surface.

:class:`~repro.serve.manager.SiteManager` registers named sites and lazily
materializes one commissioned :class:`~repro.core.pipeline.TafLoc` pipeline
per distinct scenario spec (shared by fingerprint);
:class:`~repro.serve.service.LocalizationService` routes
``(site, day, RSS)`` queries to the right pipeline and answers them through
the batch matching kernels. On top of the in-process service sit the
deployment pieces:

* :mod:`repro.serve.frontend` — the threaded wire front-ends (HTTP and
  unix-socket JSON protocol) plus :class:`~repro.serve.frontend.
  ServiceClient` (``http://``, ``tcp://``, ``unix://``);
* :mod:`repro.serve.aio` — the asyncio front-end: one event loop,
  persistent pipelined NDJSON connections over TCP/unix, streamed
  ``query_trace``, plus :class:`~repro.serve.aio.AsyncServiceClient`
  (N requests in flight per connection);
* :mod:`repro.serve.scheduler` — staleness-driven background fingerprint
  refresh (interval / round-robin / priority / drift policies) plus the
  snapshot-lifecycle cadence;
* :mod:`repro.serve.sentinel` — the measured-drift probe (held-out
  frames scored against the live database, independent of the model
  being judged);
* :mod:`repro.serve.snapshot` — the on-disk fingerprint snapshot format
  and :class:`~repro.serve.snapshot.SnapshotStore` lifecycle (versioned
  writes, keep-last-K retention, digest-verifying scrub, compaction);
* :mod:`repro.serve.shard` — site partitioning across worker processes
  with a pure-routing front-end, bit-identical for any shard count, plus
  the anti-entropy trust layer (background scrub, quorum reads,
  quarantine + read-repair, degraded-mode snapshot serving);
* :mod:`repro.serve.check` — the CI smoke gate asserting wire and shard
  answers equal the in-process service bit for bit.

See ``tafloc-repro serve --listen`` / ``query --connect`` for the CLI
surface and ``benchmarks/bench_perf.py`` for throughput numbers.
"""

from repro.serve.aio import AioFrontend, AsyncServiceClient
from repro.serve.frontend import (
    HttpFrontend,
    RemoteBatchResult,
    RemoteMatchResult,
    ServiceClient,
    UnixFrontend,
)
from repro.serve.manager import (
    SiteManager,
    SiteManagerStats,
    pipeline_seed,
    reconstructor_seed,
)
from repro.serve.scheduler import (
    SchedulerConfig,
    SimClock,
    UpdateAction,
    UpdateScheduler,
)
from repro.serve.sentinel import DriftReading, measure_drift, probe_seed
from repro.serve.service import LocalizationService, ServiceStats
from repro.serve.shard import ShardedService, StaleAnswer, shard_for_site
from repro.serve.snapshot import SnapshotStore, epochs_digest

__all__ = [
    "AioFrontend",
    "AsyncServiceClient",
    "DriftReading",
    "HttpFrontend",
    "LocalizationService",
    "RemoteBatchResult",
    "RemoteMatchResult",
    "SchedulerConfig",
    "ServiceClient",
    "ServiceStats",
    "ShardedService",
    "SimClock",
    "SiteManager",
    "SiteManagerStats",
    "SnapshotStore",
    "StaleAnswer",
    "UnixFrontend",
    "UpdateAction",
    "UpdateScheduler",
    "epochs_digest",
    "measure_drift",
    "pipeline_seed",
    "probe_seed",
    "reconstructor_seed",
    "shard_for_site",
]
