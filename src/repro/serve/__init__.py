"""Multi-site serving layer: many scenario realizations, one process.

:class:`~repro.serve.manager.SiteManager` registers named sites and lazily
materializes one commissioned :class:`~repro.core.pipeline.TafLoc` pipeline
per distinct scenario spec (shared by fingerprint);
:class:`~repro.serve.service.LocalizationService` routes
``(site, day, RSS)`` queries to the right pipeline and answers them through
the batch matching kernels. See ``tafloc-repro serve`` / ``query`` for the
CLI surface and ``benchmarks/bench_perf.py`` for throughput numbers.
"""

from repro.serve.manager import (
    SiteManager,
    SiteManagerStats,
    pipeline_seed,
    reconstructor_seed,
)
from repro.serve.service import LocalizationService, ServiceStats

__all__ = [
    "LocalizationService",
    "ServiceStats",
    "SiteManager",
    "SiteManagerStats",
    "pipeline_seed",
    "reconstructor_seed",
]
