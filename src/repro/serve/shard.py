"""Sharding: partition sites across worker processes, route in-process.

A multi-core host serves disjoint site sets concurrently:
:class:`ShardedService` starts ``shards`` long-lived worker processes
(via :func:`repro.eval.engine.worker_context`, the same fork-first policy
as the experiment engine's pool), each holding a full
:class:`~repro.serve.service.LocalizationService` over *its* sites, and
routes every call from the parent process to the owning worker over a
pipe. The router exposes the same surface as the in-process service, so
the wire front-ends (:mod:`repro.serve.frontend`) and the update
scheduler (:mod:`repro.serve.scheduler`) run unchanged on top of either.

**Routing is a pure function of the site name.** :func:`shard_for_site`
is a jump consistent hash over the site's stable 64-bit
:func:`~repro.util.rng.task_key`: deterministic across processes and
runs, uniform over shards, and *minimally disruptive* under re-sharding —
growing ``n → m`` shards moves a site only if its new shard is one of the
added ones (``shard >= n``), never between surviving shards. The
hypothesis suite (``tests/property/test_shard_routing.py``) pins all
three properties.

**Bit-identity for any shard count.** Worker services derive every
pipeline seed from ``(manager seed, spec fingerprint)`` — not from the
shard layout — so the same site answers with the same bits whether it is
served in-process, by one worker, or by one of sixteen (asserted in
``tests/serve/test_shard.py`` and the CI frontend smoke gate). Sites
sharing a spec fingerprint share one pipeline *within* a worker; twins
split across shards rebuild the same bits independently.
"""

from __future__ import annotations

import threading
import weakref
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.matching import BatchMatchResult, MatchResult
from repro.core.pipeline import UpdateReport
from repro.eval.engine import worker_context
from repro.serve.service import LocalizationService, ServiceStats
from repro.sim.specs import ScenarioSpec, as_scenario_spec
from repro.sim.trace import LiveTrace
from repro.util.rng import task_key

__all__ = ["ShardedService", "shard_for_site"]

_JUMP_LCG = 2862933555777941757
_MASK64 = (1 << 64) - 1


def shard_for_site(site: str, shard_count: int) -> int:
    """The shard owning ``site`` — a pure function of ``(site, count)``.

    Jump consistent hash (Lamping & Veach) over the site name's stable
    64-bit key (:func:`~repro.util.rng.task_key`, which folds a
    process-independent FNV-1a of the name through splitmix64). Same
    inputs, same shard, in every process on every run — the property that
    lets a router and its workers agree on ownership without ever
    exchanging an assignment table.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    key = task_key(0, "serve-shard", str(site))
    shard, candidate = 0, 0
    while candidate < shard_count:
        shard = candidate
        key = (key * _JUMP_LCG + 1) & _MASK64
        candidate = int((shard + 1) * ((1 << 31) / ((key >> 33) + 1)))
    return shard


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _shard_worker_main(connection, specs: Dict[str, dict], kwargs) -> None:
    """Worker loop: one LocalizationService, request/reply over the pipe.

    Module-level so it survives a spawn start method. Replies are
    ``(True, result)`` or ``(False, exception)`` — the router re-raises
    the exception in the parent, preserving the serving error contract
    across the process boundary.
    """
    service = LocalizationService.from_specs(specs, **kwargs)
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        method, args, call_kwargs = message
        try:
            result = getattr(service, method)(*args, **call_kwargs)
            connection.send((True, result))
        except Exception as error:  # noqa: BLE001 - forwarded to the router
            connection.send((False, error))
    connection.close()


class _Shard:
    """Parent-side handle: one worker process, its pipe, and a call lock."""

    def __init__(
        self, index: int, context, specs: Dict[str, ScenarioSpec], kwargs
    ) -> None:
        self.index = index
        self.connection, child = context.Pipe()
        self.sites = list(specs)
        self.process = context.Process(
            target=_shard_worker_main,
            args=(child, specs, kwargs),
            daemon=True,
        )
        self.process.start()
        child.close()
        self.lock = threading.Lock()

    def call(self, method: str, *args, **kwargs) -> Any:
        with self.lock:
            self.connection.send((method, args, kwargs))
            ok, result = self.connection.recv()
        if not ok:
            raise result
        return result

    def send(self, method: str, *args, **kwargs) -> None:
        """Fire one request without waiting (pair with :meth:`receive`)."""
        self.connection.send((method, args, kwargs))

    def receive(self) -> Any:
        ok, result = self.connection.recv()
        if not ok:
            raise result
        return result

    def close(self, timeout: float = 5.0) -> None:
        try:
            self.connection.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=timeout)
        self.connection.close()


def _close_shards(shards: List[_Shard]) -> None:
    for shard in shards:
        shard.close()


class ShardedService:
    """Route a site fleet across worker processes, one service per worker.

    Args:
        specs: ``{site: spec}`` (anything
            :func:`~repro.sim.specs.as_scenario_spec` accepts). Resolved
            eagerly so registration errors surface in the parent, not as
            worker crashes.
        shards: Worker process count (>= 1). Workers without sites are
            still started — a router is free to re-register later.
        mp_context: Multiprocessing context override; defaults to
            :func:`repro.eval.engine.worker_context`.
        **manager_kwargs: Forwarded to every worker's
            :class:`~repro.serve.manager.SiteManager` (``seed``,
            ``protocol``, ``config``, ...) — identical kwargs are what
            makes the shard layout invisible in the answers.

    The router is thread-safe (per-shard pipe locks), so a threaded wire
    front-end can fan queries out to all workers concurrently. For batch
    fan-out from one thread, :meth:`map_query_batch` pipelines requests —
    every shard computes while the others do.
    """

    def __init__(
        self,
        specs: Mapping[str, Union[ScenarioSpec, dict, str]],
        shards: int = 2,
        *,
        mp_context=None,
        **manager_kwargs,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        resolved = {
            site: as_scenario_spec(spec) for site, spec in specs.items()
        }
        self.shard_count = int(shards)
        self.assignment: Dict[str, int] = {
            site: shard_for_site(site, shards) for site in resolved
        }
        context = mp_context if mp_context is not None else worker_context()
        by_shard: List[Dict[str, ScenarioSpec]] = [{} for _ in range(shards)]
        for site, spec in resolved.items():
            by_shard[self.assignment[site]][site] = spec
        self._site_order = list(resolved)
        self._shards = [
            _Shard(index, context, shard_specs, dict(manager_kwargs))
            for index, shard_specs in enumerate(by_shard)
        ]
        self._finalizer = weakref.finalize(self, _close_shards, self._shards)

    # ------------------------------------------------------------------
    def _shard(self, site: str) -> _Shard:
        shard = self.assignment.get(site)
        if shard is None:
            known = ", ".join(self._site_order) or "<none>"
            raise KeyError(f"unknown site {site!r}; registered: {known}")
        return self._shards[shard]

    def close(self) -> None:
        """Stop every worker (idempotent; also runs at garbage collection)."""
        if self._finalizer.detach() is not None:
            _close_shards(self._shards)

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the service surface (same names the protocol dispatches on)
    # ------------------------------------------------------------------
    def sites(self) -> List[str]:
        return list(self._site_order)

    def _pipelined(self, calls: Sequence[Tuple[_Shard, str, tuple]]) -> List[Any]:
        """Fan ``(shard, method, args)`` calls out, replies in call order.

        The careful part is failure behavior: locks are acquired in shard
        index order (so two concurrent multi-shard fan-outs cannot
        deadlock on lock-order inversion), every request is sent before
        any reply is awaited (shards overlap compute), and when one call
        fails every *other* healthy reply is still drained before the
        first failure is raised — otherwise a stale reply would desync
        the pipe and every later call on that shard would return the
        previous call's result. A shard whose pipe breaks mid-fan-out is
        marked dead and skipped for the rest of the round.
        """
        involved = sorted(
            {shard.index: shard for shard, _, _ in calls}.values(),
            key=lambda shard: shard.index,
        )
        for shard in involved:
            shard.lock.acquire()
        try:
            failure: Optional[BaseException] = None
            dead: set = set()
            pending: List[Optional[_Shard]] = []
            for shard, method, args in calls:
                if shard.index in dead:
                    pending.append(None)
                    continue
                try:
                    shard.send(method, *args)
                    pending.append(shard)
                except OSError as error:
                    dead.add(shard.index)
                    failure = failure if failure is not None else error
                    pending.append(None)
            results: List[Any] = []
            for shard in pending:
                if shard is None or shard.index in dead:
                    results.append(None)
                    continue
                try:
                    results.append(shard.receive())
                except (EOFError, OSError) as error:
                    # Broken pipe: the shard's remaining replies will
                    # never arrive — stop waiting for them.
                    dead.add(shard.index)
                    failure = failure if failure is not None else error
                    results.append(None)
                except Exception as error:  # noqa: BLE001 - drain first
                    failure = failure if failure is not None else error
                    results.append(None)
            if failure is not None:
                raise failure
            return results
        finally:
            for shard in involved:
                shard.lock.release()

    def warm(self, sites: Optional[Iterable[str]] = None) -> List[str]:
        """Materialize pipelines on every owning worker, concurrently.

        Requests are pipelined — each shard commissions its own sites
        while the others do the same — so warm-up wall time scales with
        the busiest shard, not the site count (the shard scaling lever
        the benchmark measures).
        """
        names = list(sites) if sites is not None else self.sites()
        per_shard: Dict[int, List[str]] = {}
        for site in names:
            shard = self._shard(site)  # raises KeyError for unknown sites
            per_shard.setdefault(shard.index, []).append(site)
        self._pipelined(
            [
                (self._shards[index], "warm", (batch,))
                for index, batch in sorted(per_shard.items())
            ]
        )
        return names

    def query(self, site: str, live_rss: np.ndarray, day: float) -> MatchResult:
        return self._shard(site).call("query", site, live_rss, day)

    def query_batch(
        self, site: str, frames: np.ndarray, day: float
    ) -> BatchMatchResult:
        return self._shard(site).call("query_batch", site, frames, day)

    def query_trace(self, site: str, trace: LiveTrace) -> BatchMatchResult:
        return self._shard(site).call("query_trace", site, trace)

    def map_query_batch(
        self, requests: Sequence[Tuple[str, np.ndarray, float]]
    ) -> List[BatchMatchResult]:
        """Answer many ``(site, frames, day)`` batches, shards in parallel.

        Requests are sent to every owning worker before any reply is
        awaited, so shards overlap their compute; within one shard,
        requests keep their relative order. Results come back in request
        order. One bad request raises after every shard has drained (see
        :meth:`_pipelined`), so the pipes stay in sync.
        """
        return self._pipelined(
            [
                (self._shard(site), "query_batch", (site, frames, day))
                for site, frames, day in requests
            ]
        )

    def update(
        self, site: str, day: float, *, cold: str = "raise"
    ) -> Optional[UpdateReport]:
        return self._shard(site).call("update", site, day, cold=cold)

    def commission(self, site: str, day: float) -> None:
        return self._shard(site).call("commission", site, day)

    def staleness(self, site: str, day: float) -> Optional[float]:
        return self._shard(site).call("staleness", site, day)

    def site_summary(self, site: str) -> Dict[str, object]:
        return self._shard(site).call("site_summary", site)

    def summary(self) -> List[Dict[str, object]]:
        return [self.site_summary(site) for site in self.sites()]

    def service_stats(self) -> ServiceStats:
        """Aggregated query counters across every worker."""
        totals = ServiceStats()
        for shard in self._shards:
            stats = shard.call("service_stats")
            totals.queries += stats.queries
            totals.frames += stats.frames
            for site, frames in stats.frames_by_site.items():
                totals.frames_by_site[site] = (
                    totals.frames_by_site.get(site, 0) + frames
                )
        return totals
