"""Sharding: partition sites across worker processes, route in-process.

A multi-core host serves disjoint site sets concurrently:
:class:`ShardedService` starts ``shards`` long-lived worker processes
(via :func:`repro.eval.engine.worker_context`, the same fork-first policy
as the experiment engine's pool), each holding a full
:class:`~repro.serve.service.LocalizationService` over *its* sites, and
routes every call from the parent process to the owning worker over a
pipe. The router exposes the same surface as the in-process service, so
the wire front-ends (:mod:`repro.serve.frontend`) and the update
scheduler (:mod:`repro.serve.scheduler`) run unchanged on top of either.

**Routing is a pure function of the site name.** :func:`shard_for_site`
is a jump consistent hash over the site's stable 64-bit
:func:`~repro.util.rng.task_key`: deterministic across processes and
runs, uniform over shards, and *minimally disruptive* under re-sharding —
growing ``n → m`` shards moves a site only if its new shard is one of the
added ones (``shard >= n``), never between surviving shards. The
hypothesis suite (``tests/property/test_shard_routing.py``) pins all
three properties.

**R-way replication.** :func:`replica_shards` extends the primary
placement to the first ``R`` *distinct* shards in a salted jump-hash
probe sequence: probe 0 is :func:`shard_for_site` itself (so ``R=1`` is
exactly the old layout), and each further probe is an independent jump
hash, which keeps every individual probe minimally-moving under resize.
Reads go to the primary and fail over down the replica list when a
worker is dead or times out; updates and commissions fan out to *every*
owning replica in the same order, which — together with per-site
pipelines in the workers (see
:class:`~repro.serve.manager.SiteManager` ``share_pipelines``) — keeps
replicas bit-identical.

**Crash recovery, not just crash detection.** A worker that dies (or
hangs past ``call_timeout``) is marked down, queries fail over to its
replicas, and a background thread respawns it; with a ``snapshot_dir``
the replacement warms from checksummed snapshots in milliseconds instead
of re-surveying. :meth:`ShardedService.resize` grows or shrinks the
fleet live, handing off only the jump-hash-moved sites while queries
keep answering. :meth:`ShardedService.health` reports per-shard liveness
and per-site replica availability through the wire ``health`` method.

**Bit-identity for any shard count.** Worker services derive every
pipeline seed from ``(manager seed, spec fingerprint)`` — not from the
shard layout — so the same site answers with the same bits whether it is
served in-process, by one worker, or by one of sixteen (asserted in
``tests/serve/test_shard.py`` and the CI frontend smoke gate).

**Anti-entropy (PR 7): trust, but verify the replicas.** Crash recovery
handles workers that *stop*; this layer handles workers that keep
answering with *wrong bits* (a flipped fingerprint value corrupts every
score it touches, silently). Three defenses, all leaning on the
bit-identity contract — any two honest replicas of a site answer
byte-for-byte identically, so a single differing bit is proof of
divergence, not noise:

* :meth:`ShardedService.scrub` samples registered sites, sends one
  identical probe batch to *every* live owning replica, and compares the
  answers bit-for-bit. On divergence it arbitrates via state digests
  (each replica's live fingerprint digest vs. the authoritative snapshot
  digest — see :func:`repro.serve.snapshot.epochs_digest`), **quarantines**
  the diverged replica out of the read rotation, and **read-repairs** it
  from the snapshot, all surfaced through :class:`RouterStats` and
  ``health()``. :meth:`ShardedService.start_scrub` runs this on a
  background cadence.
* ``read_mode="quorum"`` moves the same cross-check onto the query path:
  reads fan out to all live replicas and only a bit-agreed (or
  digest-verified) answer is returned — a diverged replica can be
  *detected and repaired* without ever serving a wrong answer to a
  client.
* ``degraded_mode=True`` (requires ``snapshot_dir``) keeps answering when
  every replica of a site is down: the router restores the last verified
  snapshot parent-side and serves from it, wrapping results in
  :class:`StaleAnswer` (``result.stale`` is ``True``; the wire layer
  forwards the marker) instead of raising ``ServiceUnavailable``.
"""

from __future__ import annotations

import threading
import warnings
import weakref
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.core.matching import BatchMatchResult, MatchResult
from repro.core.pipeline import UpdateReport
from repro.eval.engine import cached_scenario, worker_context
from repro.serve.manager import SiteManager
from repro.serve.protocol import ServiceUnavailable
from repro.serve.service import LocalizationService, ServiceStats
from repro.serve.snapshot import SnapshotError
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import ScenarioSpec, as_scenario_spec, build_scenario
from repro.sim.trace import LiveTrace
from repro.util.rng import counter_stream, task_key

__all__ = [
    "RouterStats",
    "ShardedService",
    "StaleAnswer",
    "WorkerTimeout",
    "replica_shards",
    "shard_for_site",
]

_READ_MODES = ("failover", "quorum")

_JUMP_LCG = 2862933555777941757
_MASK64 = (1 << 64) - 1


class WorkerTimeout(TimeoutError):
    """A worker gave no reply within the router's call timeout.

    The pipe is desynchronized once a reply is abandoned (a late reply
    would be mis-attributed to the next call), so a timed-out worker is
    treated exactly like a dead one: marked down, failed over, respawned.
    """


class _ShardConnectionError(ConnectionError):
    """Internal: the pipe to a worker broke (send or receive).

    Distinct from exceptions the worker *returned* (contract errors
    re-raised verbatim), so the router never mistakes a service-level
    ``OSError`` for a transport failure.
    """


def _jump(key: int, shard_count: int) -> int:
    """Jump consistent hash (Lamping & Veach) of a 64-bit key."""
    shard, candidate = 0, 0
    while candidate < shard_count:
        shard = candidate
        key = (key * _JUMP_LCG + 1) & _MASK64
        candidate = int((shard + 1) * ((1 << 31) / ((key >> 33) + 1)))
    return shard


def shard_for_site(site: str, shard_count: int) -> int:
    """The shard owning ``site`` — a pure function of ``(site, count)``.

    Jump consistent hash (Lamping & Veach) over the site name's stable
    64-bit key (:func:`~repro.util.rng.task_key`, which folds a
    process-independent FNV-1a of the name through splitmix64). Same
    inputs, same shard, in every process on every run — the property that
    lets a router and its workers agree on ownership without ever
    exchanging an assignment table.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    return _jump(task_key(0, "serve-shard", str(site)), shard_count)


def replica_shards(site: str, shard_count: int, replicas: int) -> Tuple[int, ...]:
    """The first ``min(replicas, shard_count)`` distinct shards for ``site``.

    Probe 0 is :func:`shard_for_site` (the primary — unchanged from the
    unreplicated layout); probe ``k >= 1`` is a jump hash of the site key
    salted with ``("replica", k)``, skipping shards already chosen. Each
    salted probe is itself a jump consistent hash, so under a resize every
    replica slot independently either stays put or moves to a shard that
    could not have held it before — the fleet never reshuffles wholesale.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    want = min(int(replicas), int(shard_count))
    chosen = [shard_for_site(site, shard_count)]
    salt = 0
    while len(chosen) < want:
        salt += 1
        if salt > 64 * shard_count:  # pragma: no cover - astronomically rare
            # Deterministic fallback: fill from the lowest unused indices.
            for index in range(shard_count):
                if index not in chosen:
                    chosen.append(index)
                if len(chosen) == want:
                    break
            break
        candidate = _jump(
            task_key(0, "serve-shard", str(site), "replica", salt), shard_count
        )
        if candidate not in chosen:
            chosen.append(candidate)
    return tuple(chosen)


@dataclass
class RouterStats:
    """Router-side fault accounting (surfaced through ``health``)."""

    failovers: int = 0
    timeouts: int = 0
    respawns: int = 0
    respawn_failures: int = 0
    resizes: int = 0
    scrubs: int = 0
    scrub_divergences: int = 0
    scrub_errors: int = 0
    read_divergences: int = 0
    quarantines: int = 0
    repairs: int = 0
    degraded_answers: int = 0


class StaleAnswer:
    """A query result answered from the last verified snapshot.

    Wraps a :class:`~repro.core.matching.MatchResult` or
    :class:`~repro.core.matching.BatchMatchResult` transparently
    (attribute access, indexing, iteration and ``len`` all delegate) and
    adds ``stale = True`` — the explicit marker degraded-mode serving
    must carry so a client can tell "fresh answer" from "best effort off
    the last snapshot". The wire layer forwards the flag as a ``stale``
    field in the response body.
    """

    stale = True

    def __init__(self, result: Any) -> None:
        self._result = result

    def __getattr__(self, name: str) -> Any:
        return getattr(self._result, name)

    def __len__(self) -> int:
        return len(self._result)

    def __getitem__(self, index):
        return self._result[index]

    def __iter__(self):
        return iter(self._result)

    def __repr__(self) -> str:
        return f"StaleAnswer({self._result!r})"


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _shard_worker_main(connection, specs: Dict[str, dict], kwargs) -> None:
    """Worker loop: one LocalizationService, request/reply over the pipe.

    Module-level so it survives a spawn start method. Replies are
    ``(True, result)`` or ``(False, exception)`` — the router re-raises
    the exception in the parent, preserving the serving error contract
    across the process boundary.

    ``("__fault__", (action, seconds), {})`` messages are the
    fault-injection control channel (see :mod:`repro.serve.faults`):
    ``hang`` stalls the worker before acknowledging (the reply then
    desyncs the pipe — exactly the failure the router's timeout handling
    must absorb), ``delay`` adds latency before every later reply.
    """
    import time as _time

    service = LocalizationService.from_specs(specs, **kwargs)
    reply_delay = 0.0
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        method, args, call_kwargs = message
        if method == "__fault__":
            action = args[0] if args else None
            if action == "hang":
                _time.sleep(float(args[1]) if len(args) > 1 else 0.0)
                connection.send((True, "hung"))
            elif action == "delay":
                reply_delay = float(args[1]) if len(args) > 1 else 0.0
                connection.send((True, "delayed"))
            elif action == "corrupt":
                # Lazy import: faults.py imports this module.
                from repro.serve.faults import corrupt_pipeline_state

                site = args[1] if len(args) > 1 else None
                fault_seed = int(args[2]) if len(args) > 2 else 0
                try:
                    detail = corrupt_pipeline_state(service, site, fault_seed)
                    connection.send((True, detail))
                except Exception as error:  # noqa: BLE001 - forwarded
                    connection.send((False, error))
            else:
                connection.send(
                    (False, ValueError(f"unknown fault action {action!r}"))
                )
            continue
        try:
            result = getattr(service, method)(*args, **call_kwargs)
            if reply_delay > 0.0:
                _time.sleep(reply_delay)
            connection.send((True, result))
        except Exception as error:  # noqa: BLE001 - forwarded to the router
            connection.send((False, error))
    connection.close()


class _Shard:
    """Parent-side handle: one worker process, its pipe, and a call lock.

    Unlike the PR-5 handle this one is *restartable*: :meth:`respawn`
    replaces a dead or hung worker with a fresh process (same sites, same
    manager kwargs — and therefore, with a snapshot directory, the same
    state), and :meth:`close` escalates join → terminate → kill and
    reports which stage finally fired instead of silently falling through
    the timeout.
    """

    def __init__(
        self, index: int, context, specs: Dict[str, ScenarioSpec], kwargs
    ) -> None:
        self.index = index
        self._context = context
        self.specs: Dict[str, ScenarioSpec] = dict(specs)
        self.kwargs = dict(kwargs)
        self.lock = threading.Lock()
        self.respawn_lock = threading.Lock()
        self.generation = 0
        self.restarts = 0
        self.dead = False
        self.close_stage: Optional[str] = None
        self._spawn()

    @property
    def sites(self) -> List[str]:
        return list(self.specs)

    def _spawn(self) -> None:
        self.connection, child = self._context.Pipe()
        self.process = self._context.Process(
            target=_shard_worker_main,
            args=(child, dict(self.specs), dict(self.kwargs)),
            daemon=True,
        )
        self.process.start()
        child.close()
        self.dead = False

    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()

    def call(
        self, method: str, *args, timeout: Optional[float] = None, **kwargs
    ) -> Any:
        with self.lock:
            try:
                self.connection.send((method, args, kwargs))
                if timeout is not None and not self.connection.poll(timeout):
                    self.dead = True  # a late reply would desync the pipe
                    raise WorkerTimeout(
                        f"shard {self.index} gave no reply to {method!r} "
                        f"within {timeout:g}s"
                    )
                ok, result = self.connection.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError) as error:
                self.dead = True
                raise _ShardConnectionError(
                    f"shard {self.index} pipe failed during {method!r}: "
                    f"{error!r}"
                ) from error
            except WorkerTimeout:
                raise
            except OSError as error:
                self.dead = True
                raise _ShardConnectionError(
                    f"shard {self.index} pipe failed during {method!r}: "
                    f"{error!r}"
                ) from error
        if not ok:
            raise result
        return result

    def send(self, method: str, *args, **kwargs) -> None:
        """Fire one request without waiting (pair with :meth:`receive`)."""
        self.connection.send((method, args, kwargs))

    def receive(self) -> Any:
        ok, result = self.connection.recv()
        if not ok:
            raise result
        return result

    def respawn(self) -> None:
        """Replace the worker process (caller must hold :attr:`lock`)."""
        self._shutdown(timeout=1.0)
        self._spawn()
        self.generation += 1
        self.restarts += 1

    def close(self, timeout: float = 5.0) -> str:
        """Stop the worker; returns the escalation stage that ended it.

        ``"clean"`` — exited on the shutdown message; ``"terminate"`` —
        needed SIGTERM; ``"kill"`` — needed SIGKILL; ``"leaked"`` — still
        alive after all three (surfaced, never silent).
        """
        stage = self._shutdown(timeout=timeout)
        self.close_stage = stage
        self.dead = True
        return stage

    def _shutdown(self, timeout: float) -> str:
        stage = "clean"
        try:
            self.connection.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            stage = "terminate"
            self.process.terminate()
            self.process.join(timeout=timeout)
            if self.process.is_alive():  # pragma: no cover - defensive
                stage = "kill"
                self.process.kill()
                self.process.join(timeout=timeout)
                if self.process.is_alive():
                    stage = "leaked"
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - already closed
            pass
        return stage


def _close_shards(shards: List[_Shard]) -> Dict[int, str]:
    stages = {shard.index: shard.close() for shard in shards}
    escalated = {
        index: stage for index, stage in stages.items() if stage != "clean"
    }
    if escalated:
        warnings.warn(
            f"shard shutdown escalated past the clean path: {escalated}",
            RuntimeWarning,
            stacklevel=2,
        )
    return stages


class ShardedService:
    """Route a site fleet across worker processes, one service per worker.

    Args:
        specs: ``{site: spec}`` (anything
            :func:`~repro.sim.specs.as_scenario_spec` accepts). Resolved
            eagerly so registration errors surface in the parent, not as
            worker crashes.
        shards: Worker process count (>= 1). Workers without sites are
            still started — a router is free to re-register later.
        replicas: Replication factor ``R``: every site is owned by the
            first ``min(R, shards)`` shards of its probe sequence
            (:func:`replica_shards`). Reads fail over down the list;
            updates fan out to all of them.
        snapshot_dir: Forwarded to every worker's manager: commissioned
            state persists there and respawned/moved workers warm from it
            instead of re-surveying (see :mod:`repro.serve.snapshot`).
        auto_respawn: Respawn crashed or timed-out workers in the
            background (on by default). The replacement only rejoins the
            rotation once its sites are warm again.
        call_timeout: Seconds the router waits for a *query-path* reply
            before declaring the worker hung (``None`` = wait forever).
            Mutating calls (warm/update/commission) are never timed out —
            a slow survey is not a fault.
        read_mode: ``"failover"`` (default — reads go to the first live
            replica) or ``"quorum"`` — reads fan out to *every* live
            owning replica and are compared bit-for-bit before answering;
            a divergence is arbitrated against the snapshot digest, the
            diverged replica is quarantined and read-repaired, and only
            the verified answer reaches the caller. With one live replica
            quorum degenerates to failover.
        degraded_mode: Answer for a site whose replicas are *all* down
            from the last verified snapshot (restored parent-side), with
            the result wrapped in :class:`StaleAnswer` instead of raising
            ``ServiceUnavailable``. Requires ``snapshot_dir``.
        scrub_frames: Probe frames per site per scrub pass (the
            anti-entropy sampling depth).
        mp_context: Multiprocessing context override; defaults to
            :func:`repro.eval.engine.worker_context`.
        **manager_kwargs: Forwarded to every worker's
            :class:`~repro.serve.manager.SiteManager` (``seed``,
            ``protocol``, ``config``, ...) — identical kwargs are what
            makes the shard layout invisible in the answers. When
            replication or snapshots are enabled the workers default to
            ``share_pipelines=False`` so replica streams stay in sync
            (override explicitly at your own risk).

    The router is thread-safe (per-shard pipe locks), so a threaded wire
    front-end can fan queries out to all workers concurrently. For batch
    fan-out from one thread, :meth:`map_query_batch` pipelines requests —
    every shard computes while the others do.
    """

    #: Hint for event-loop front-ends (:mod:`repro.serve.aio`): every
    #: routed call can park on a worker pipe (and its per-shard lock), so
    #: an event loop must dispatch through a thread pool — running it
    #: inline would stall every pipelined request behind one worker.
    wire_dispatch = "offload"

    #: Declared lock-acquisition order, outermost first (enforced by
    #: repro-lint RL-C01): a thread may acquire a lock only while holding
    #: locks that appear *earlier* in this tuple. ``_resize_lock``
    #: serializes topology changes and is always outermost;
    #: ``respawn_lock`` (per ``_Shard``) gates one respawner at a time;
    #: ``_quarantine_lock`` guards the quarantined-replica set; ``lock``
    #: is the per-``_Shard`` pipe lock (multiple instances are only ever
    #: taken together in ascending shard-index order, see
    #: ``_pipelined``); ``_stale_lock`` guards the degraded-mode manager
    #: and is a leaf.
    _LOCK_ORDER = (
        "_resize_lock",
        "respawn_lock",
        "_quarantine_lock",
        "lock",
        "_stale_lock",
    )

    def __init__(
        self,
        specs: Mapping[str, Union[ScenarioSpec, dict, str]],
        shards: int = 2,
        *,
        replicas: int = 1,
        snapshot_dir=None,
        auto_respawn: bool = True,
        call_timeout: Optional[float] = None,
        read_mode: str = "failover",
        degraded_mode: bool = False,
        scrub_frames: int = 8,
        mp_context=None,
        **manager_kwargs,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if read_mode not in _READ_MODES:
            raise ValueError(
                f"read_mode must be one of {_READ_MODES}, got {read_mode!r}"
            )
        if scrub_frames < 1:
            raise ValueError(f"scrub_frames must be >= 1, got {scrub_frames}")
        if degraded_mode and snapshot_dir is None:
            raise ValueError(
                "degraded_mode answers from snapshots; pass a snapshot_dir"
            )
        resolved = {
            site: as_scenario_spec(spec) for site, spec in specs.items()
        }
        self.shard_count = int(shards)
        self.replica_count = int(replicas)
        self.auto_respawn = bool(auto_respawn)
        self.call_timeout = call_timeout
        self.read_mode = read_mode
        self.degraded_mode = bool(degraded_mode)
        self.scrub_frames = int(scrub_frames)
        self.snapshot_dir = snapshot_dir
        self.router_stats = RouterStats()
        self._quarantined: Set[Tuple[str, int]] = set()
        self._quarantine_lock = threading.Lock()
        self._scrub_thread: Optional[threading.Thread] = None
        self._scrub_stop = threading.Event()
        self._stale_lock = threading.Lock()
        self._stale_manager: Optional[SiteManager] = None
        self._stale_restored: Dict[str, Tuple[str, int]] = {}
        worker_kwargs = dict(manager_kwargs)
        if snapshot_dir is not None:
            worker_kwargs["snapshot_dir"] = str(snapshot_dir)
        if self.replica_count > 1 or snapshot_dir is not None:
            # Replica (and restore) consistency needs per-site streams.
            worker_kwargs.setdefault("share_pipelines", False)
        self._worker_kwargs = worker_kwargs
        self._specs = resolved
        self.assignment: Dict[str, int] = {
            site: shard_for_site(site, shards) for site in resolved
        }
        self.replicas: Dict[str, Tuple[int, ...]] = {
            site: replica_shards(site, shards, self.replica_count)
            for site in resolved
        }
        self._site_order = list(resolved)
        self._resize_lock = threading.Lock()
        self._closed = False
        context = mp_context if mp_context is not None else worker_context()
        self._context = context
        by_shard: List[Dict[str, ScenarioSpec]] = [{} for _ in range(shards)]
        for site, spec in resolved.items():
            for index in self.replicas[site]:
                by_shard[index][site] = spec
        self._shards = [
            _Shard(index, context, shard_specs, dict(worker_kwargs))
            for index, shard_specs in enumerate(by_shard)
        ]
        self._finalizer = weakref.finalize(self, _close_shards, self._shards)

    # ------------------------------------------------------------------
    # routing + failover
    # ------------------------------------------------------------------
    def _replica_order(self, site: str) -> Tuple[int, ...]:
        order = self.replicas.get(site)
        if order is None:
            known = ", ".join(self._site_order) or "<none>"
            raise KeyError(f"unknown site {site!r}; registered: {known}")
        return order

    # ------------------------------------------------------------------
    # quarantine bookkeeping (anti-entropy)
    # ------------------------------------------------------------------
    def _is_quarantined(self, site: str, index: int) -> bool:
        with self._quarantine_lock:
            return (site, index) in self._quarantined

    def _quarantine(self, site: str, index: int) -> bool:
        """Pull one replica of one site out of the read rotation."""
        with self._quarantine_lock:
            if (site, index) in self._quarantined:
                return False
            self._quarantined.add((site, index))
        self.router_stats.quarantines += 1
        return True

    def _unquarantine(self, site: str, index: int) -> None:
        with self._quarantine_lock:
            self._quarantined.discard((site, index))

    def quarantined_replicas(self) -> List[Tuple[str, int]]:
        """``(site, shard_index)`` pairs currently held out of reads."""
        with self._quarantine_lock:
            return sorted(self._quarantined)

    def _shard(self, site: str) -> _Shard:
        """First *live, trusted* replica for ``site`` (primary when healthy)."""
        order = self._replica_order(site)
        for position, index in enumerate(order):
            shard = self._shards[index]
            if not shard.alive():
                self._ensure_respawn(shard)
                continue
            if self._is_quarantined(site, index):
                continue
            if position:
                self.router_stats.failovers += 1
            return shard
        raise ServiceUnavailable(
            f"site {site!r}: all {len(order)} replica shard(s) "
            f"{list(order)} are down or quarantined (recovery in progress)"
        )

    def _call_route(
        self, site: str, method: str, *args, timeout: Optional[float] = None
    ) -> Any:
        """A read call with transparent failover across the replica list.

        Quarantined replicas are skipped — a replica known to have
        diverged must not serve reads until its repair verifies.
        """
        order = self._replica_order(site)
        last_error: Optional[BaseException] = None
        for position, index in enumerate(order):
            shard = self._shards[index]
            if not shard.alive():
                self._ensure_respawn(shard)
                continue
            if self._is_quarantined(site, index):
                continue
            try:
                if position:
                    self.router_stats.failovers += 1
                return shard.call(method, *args, timeout=timeout)
            except _ShardConnectionError as error:
                last_error = error
                self._ensure_respawn(shard)
            except WorkerTimeout as error:
                last_error = error
                self.router_stats.timeouts += 1
                self._ensure_respawn(shard)
        raise ServiceUnavailable(
            f"site {site!r}: all {len(order)} replica shard(s) "
            f"{list(order)} are unavailable"
        ) from last_error

    def _call_all_replicas(self, site: str, method: str, *args, **kwargs) -> Any:
        """A mutating call applied to *every* owning replica, in order.

        Returns the first replica's result. Requires the full replica set
        to be up and trusted: applying an update to a subset would let
        the missing replica drift (without snapshots, a later respawn
        could not recover the skipped epochs), and applying it to a
        *quarantined* replica would layer a fresh epoch on top of
        corrupted state — so a degraded site refuses refreshes until its
        respawn or repair completes; the scheduler just retries on its
        next tick.

        Serialized against :meth:`resize` (shared ``_resize_lock``): a
        refresh racing a resize could otherwise land on the old replica
        set and silently miss a shard that just gained the site.
        """
        with self._resize_lock:
            order = self._replica_order(site)
            down = [i for i in order if not self._shards[i].alive()]
            if down:
                for index in down:
                    self._ensure_respawn(self._shards[index])
                raise ServiceUnavailable(
                    f"cannot {method} site {site!r}: replica shard(s) {down} "
                    "are down (respawn in progress); retry once recovered"
                )
            held = [i for i in order if self._is_quarantined(site, i)]
            if held:
                raise ServiceUnavailable(
                    f"cannot {method} site {site!r}: replica shard(s) "
                    f"{held} are quarantined pending read-repair; scrub "
                    "or repair them first"
                )
            result: Any = None
            for position, index in enumerate(order):
                shard = self._shards[index]
                try:
                    out = shard.call(method, *args, **kwargs)
                except (_ShardConnectionError, WorkerTimeout) as error:
                    self._ensure_respawn(shard)
                    raise ServiceUnavailable(
                        f"replica shard {index} failed mid-{method} for site "
                        f"{site!r}; its respawn will restore the last "
                        f"snapshotted state"
                    ) from error
                if position == 0:
                    result = out
            return result

    # ------------------------------------------------------------------
    # respawn
    # ------------------------------------------------------------------
    def _ensure_respawn(self, shard: _Shard) -> None:
        if not self.auto_respawn or self._closed:
            return
        if shard.respawn_lock.acquire(blocking=False):
            thread = threading.Thread(
                target=self._respawn_shard,
                args=(shard,),
                daemon=True,
                name=f"shard-{shard.index}-respawn",
            )
            thread.start()

    def _respawn_shard(self, shard: _Shard) -> None:
        """Background recovery: new process, warm it, then rejoin rotation.

        The replacement stays marked down while it warms (queries keep
        failing over to replicas), and only starts taking traffic once
        every one of its sites is materialized — from snapshots in
        milliseconds when a ``snapshot_dir`` is configured, from a
        re-survey otherwise.
        """
        try:
            if self._closed or shard.alive():
                return
            with shard.lock:
                shard.respawn()
                shard.dead = True  # not ready until warm
            try:
                with shard.lock:
                    shard.connection.send(("warm", (list(shard.specs),), {}))
                    ok, result = shard.connection.recv()
                if not ok:
                    raise result
            except Exception:  # noqa: BLE001 - recovery is best-effort
                self.router_stats.respawn_failures += 1
                shard.dead = True
                return
            shard.dead = False
            self.router_stats.respawns += 1
            if self._closed:  # closed while we were warming
                shard.close(timeout=1.0)
        finally:
            shard.respawn_lock.release()

    def close(self) -> None:
        """Stop every worker (idempotent; also runs at garbage collection)."""
        self._closed = True
        self.stop_scrub(timeout=1.0)
        if self._finalizer.detach() is not None:
            _close_shards(self._shards)

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # elasticity
    # ------------------------------------------------------------------
    def resize(self, shards: int) -> Dict[str, object]:
        """Grow or shrink the fleet to ``shards`` workers, live.

        Jump-consistent placement keeps the move set minimal: only sites
        whose replica set actually changes are handed off. New workers are
        spawned and *warmed first* (snapshot restores make this
        milliseconds), surviving workers register and warm the sites they
        gain, and only then does the routing table flip — queries keep
        answering against the old layout for the whole transition. Lost
        ownership is deregistered after the flip and surplus workers are
        retired through the escalating close path.
        """
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        with self._resize_lock:
            if self._closed:
                raise ServiceUnavailable("service is closed")
            old_count = self.shard_count
            if shards == old_count:
                return {
                    "shards": shards,
                    "moved_sites": [],
                    "spawned": 0,
                    "retired": 0,
                }
            new_replicas = {
                site: replica_shards(site, shards, self.replica_count)
                for site in self._specs
            }
            new_owned: List[Dict[str, ScenarioSpec]] = [
                {} for _ in range(shards)
            ]
            for site, spec in self._specs.items():
                for index in new_replicas[site]:
                    new_owned[index][site] = spec
            moved = sorted(
                site
                for site in self._specs
                if set(new_replicas[site]) != set(self.replicas[site])
            )
            spawned = 0
            for index in range(old_count, shards):
                self._shards.append(
                    _Shard(
                        index,
                        self._context,
                        new_owned[index],
                        dict(self._worker_kwargs),
                    )
                )
                spawned += 1
            # Hand moved-in sites to the surviving workers.
            gained: Dict[int, List[str]] = {}
            for index in range(min(old_count, shards)):
                shard = self._shards[index]
                fresh = [s for s in new_owned[index] if s not in shard.specs]
                for site in fresh:
                    shard.call("register", site, self._specs[site])
                    shard.specs[site] = self._specs[site]
                if fresh:
                    gained[index] = fresh
            # Warm every new ownership before it takes traffic.
            warm_calls = [
                (self._shards[index], "warm", (sites,))
                for index, sites in sorted(gained.items())
            ] + [
                (self._shards[index], "warm", (list(new_owned[index]),))
                for index in range(old_count, shards)
                if new_owned[index]
            ]
            if warm_calls:
                results, failed, failure = self._pipelined_raw(warm_calls)
                if failure is not None:
                    raise failure
                if failed:
                    raise ServiceUnavailable(
                        "resize aborted: a worker died while warming the "
                        "new layout"
                    )
            # Flip the routing table — this is the atomic cutover.
            self.assignment = {
                site: new_replicas[site][0] for site in self._specs
            }
            self.replicas = new_replicas
            self.shard_count = shards
            # Release what moved away, retire surplus workers.
            for index in range(min(old_count, shards)):
                shard = self._shards[index]
                lost = [s for s in list(shard.specs) if s not in new_owned[index]]
                for site in lost:
                    try:
                        shard.call("deregister", site)
                    except (_ShardConnectionError, WorkerTimeout):
                        self._ensure_respawn(shard)
                        break
                    shard.specs.pop(site, None)
            retired = 0
            while len(self._shards) > shards:
                self._shards.pop().close()
                retired += 1
            # Quarantine entries are (site, shard) pairs against the old
            # layout; drop any that no longer name an owning replica.
            with self._quarantine_lock:
                self._quarantined = {
                    (site, index)
                    for site, index in self._quarantined
                    if site in self.replicas and index in self.replicas[site]
                }
            self.router_stats.resizes += 1
            return {
                "shards": shards,
                "moved_sites": moved,
                "spawned": spawned,
                "retired": retired,
            }

    # ------------------------------------------------------------------
    # the service surface (same names the protocol dispatches on)
    # ------------------------------------------------------------------
    def sites(self) -> List[str]:
        return list(self._site_order)

    def _pipelined_raw(
        self, calls: Sequence[Tuple[_Shard, str, tuple]]
    ) -> Tuple[List[Any], List[int], Optional[BaseException]]:
        """Fan ``(shard, method, args)`` calls out, replies in call order.

        The careful part is failure behavior: locks are acquired in shard
        index order (so two concurrent multi-shard fan-outs cannot
        deadlock on lock-order inversion), every request is sent before
        any reply is awaited (shards overlap compute), and when one call
        fails every *other* healthy reply is still drained before
        returning — otherwise a stale reply would desync the pipe and
        every later call on that shard would return the previous call's
        result. A shard whose pipe breaks mid-fan-out is marked dead and
        skipped for the rest of the round; its call indices come back in
        the *failed* list so the caller can retry them on replicas (after
        the locks are released). The first contract error (an exception
        the worker returned) comes back as *failure* for the caller to
        re-raise.
        """
        involved = sorted(
            {shard.index: shard for shard, _, _ in calls}.values(),
            key=lambda shard: shard.index,
        )
        for shard in involved:
            shard.lock.acquire()
        try:
            failure: Optional[BaseException] = None
            dead: set = set()
            failed: List[int] = []
            pending: List[Optional[_Shard]] = []
            for position, (shard, method, args) in enumerate(calls):
                if shard.index in dead or not shard.alive():
                    shard.dead = True
                    dead.add(shard.index)
                    failed.append(position)
                    pending.append(None)
                    continue
                try:
                    shard.send(method, *args)
                    pending.append(shard)
                except OSError:
                    shard.dead = True
                    dead.add(shard.index)
                    failed.append(position)
                    pending.append(None)
            results: List[Any] = []
            for position, shard in enumerate(pending):
                if shard is None or shard.index in dead:
                    results.append(None)
                    if shard is not None and position not in failed:
                        failed.append(position)
                    continue
                try:
                    results.append(shard.receive())
                except (EOFError, OSError):
                    # Broken pipe: the shard's remaining replies will
                    # never arrive — stop waiting for them.
                    shard.dead = True
                    dead.add(shard.index)
                    failed.append(position)
                    results.append(None)
                except Exception as error:  # noqa: BLE001 - drain first
                    failure = failure if failure is not None else error
                    results.append(None)
            return results, sorted(failed), failure
        finally:
            for shard in involved:
                shard.lock.release()

    def _pipelined(self, calls: Sequence[Tuple[_Shard, str, tuple]]) -> List[Any]:
        """Strict fan-out: any failure (transport or contract) raises."""
        results, failed, failure = self._pipelined_raw(calls)
        if failure is not None:
            raise failure
        if failed:
            raise ServiceUnavailable(
                f"worker died mid-fan-out; {len(failed)} call(s) lost"
            )
        return results

    def warm(self, sites: Optional[Iterable[str]] = None) -> List[str]:
        """Materialize pipelines on every owning worker, concurrently.

        Requests are pipelined — each shard commissions its own sites
        while the others do the same — so warm-up wall time scales with
        the busiest shard, not the site count (the shard scaling lever
        the benchmark measures). With replication every owning worker
        warms its copy.
        """
        names = list(sites) if sites is not None else self.sites()
        per_shard: Dict[int, List[str]] = {}
        for site in names:
            for index in self._replica_order(site):  # KeyError when unknown
                per_shard.setdefault(index, []).append(site)
        self._pipelined(
            [
                (self._shards[index], "warm", (batch,))
                for index, batch in sorted(per_shard.items())
            ]
        )
        return names

    def query(self, site: str, live_rss: np.ndarray, day: float) -> MatchResult:
        return self._read(site, "query", (site, live_rss, day))

    def query_batch(
        self, site: str, frames: np.ndarray, day: float
    ) -> BatchMatchResult:
        return self._read(site, "query_batch", (site, frames, day))

    def query_trace(self, site: str, trace: LiveTrace) -> BatchMatchResult:
        return self._read(site, "query_trace", (site, trace))

    # ------------------------------------------------------------------
    # trusted reads: quorum cross-checking + degraded-mode fallback
    # ------------------------------------------------------------------
    def _read(self, site: str, method: str, args: tuple) -> Any:
        """One query through the configured trust policy.

        ``failover``: first live replica answers. ``quorum``: every live
        replica answers and the bits must agree (divergence is arbitrated
        and repaired before returning — see :meth:`_resolve_divergence`).
        Either way, when no replica can answer and ``degraded_mode`` is
        on, the router falls back to serving from the last snapshot.
        """
        try:
            if self.read_mode == "quorum":
                return self._quorum_read(site, method, args)
            return self._call_route(
                site, method, *args, timeout=self.call_timeout
            )
        except ServiceUnavailable:
            if not self.degraded_mode:
                raise
            return self._degraded_answer(site, method, args)

    @staticmethod
    def _result_signature(result: Any) -> Tuple:
        """A hashable byte-exact fingerprint of a query result.

        Covers every array/scalar field of ``MatchResult`` and
        ``BatchMatchResult``; two results compare equal here iff a client
        could not tell them apart — the comparison quorum reads and the
        scrub both rely on.
        """
        parts = []
        for name in ("cell", "cells", "position", "positions", "scores"):
            value = getattr(result, name, None)
            if value is None:
                continue
            array = np.asarray(value)
            parts.append((name, array.dtype.str, array.shape, array.tobytes()))
        return tuple(parts)

    def _quorum_read(self, site: str, method: str, args: tuple) -> Any:
        order = self._replica_order(site)
        live = [
            index
            for index in order
            if self._shards[index].alive()
            and not self._is_quarantined(site, index)
        ]
        if len(live) <= 1:
            # Nothing to cross-check against: plain failover semantics
            # (which also handles the respawn bookkeeping).
            return self._call_route(
                site, method, *args, timeout=self.call_timeout
            )
        calls = [(self._shards[index], method, args) for index in live]
        results, failed, failure = self._pipelined_raw(calls)
        if failure is not None:
            raise failure  # contract error — identical on honest replicas
        lost = set(failed)
        good = [
            (index, results[position])
            for position, index in enumerate(live)
            if position not in lost
        ]
        for position in lost:
            self._ensure_respawn(self._shards[live[position]])
        if not good:
            return self._call_route(
                site, method, *args, timeout=self.call_timeout
            )
        signatures = {self._result_signature(result) for _, result in good}
        if len(signatures) == 1:
            return good[0][1]
        return self._resolve_divergence(site, good)

    def _verify_replicas(
        self, site: str, indices: Iterable[int]
    ) -> Dict[int, Optional[bool]]:
        """Each replica's digest verdict (its live state vs. the snapshot)."""
        verdicts: Dict[int, Optional[bool]] = {}
        for index in indices:
            shard = self._shards[index]
            try:
                verdict = shard.call(
                    "verify_site", site, timeout=self.call_timeout
                )
                verdicts[index] = verdict.get("matches")
            except (_ShardConnectionError, WorkerTimeout):
                self._ensure_respawn(shard)
                verdicts[index] = None
        return verdicts

    def _arbitrate(
        self,
        good: List[Tuple[int, Any]],
        verdicts: Dict[int, Optional[bool]],
    ) -> Tuple[int, Any]:
        """Pick the authoritative ``(replica, answer)`` among diverged ones.

        A replica whose live digest matches the snapshot digest is
        trusted outright (the snapshot is checksummed, content-addressed
        state). Without digest evidence, the largest bit-identical group
        wins; ties go to the replica earliest in probe order (the
        primary-most one).
        """
        trusted = [
            (index, result)
            for index, result in good
            if verdicts.get(index) is True
        ]
        if trusted:
            return trusted[0]
        groups: Dict[Tuple, List[int]] = {}
        for slot, (_, result) in enumerate(good):
            groups.setdefault(self._result_signature(result), []).append(slot)
        slots = min(groups.values(), key=lambda group: (-len(group), group[0]))
        return good[slots[0]]

    def _resolve_divergence(
        self, site: str, good: List[Tuple[int, Any]]
    ) -> Any:
        """Replicas disagreed bit-for-bit: arbitrate, repair, answer true.

        The client always receives the verified (or majority) answer —
        the divergence costs repair work, never a wrong response. Blame
        needs evidence: a replica is quarantined only when the chosen
        answer is digest-verified, when it holds a strict majority, or
        when the replica's own digest check failed; an unarbitrable tie
        (two replicas, no snapshot) answers primary-side and alarms only.
        """
        self.router_stats.read_divergences += 1
        verdicts = self._verify_replicas(site, [index for index, _ in good])
        answer_index, answer = self._arbitrate(good, verdicts)
        answer_sig = self._result_signature(answer)
        majority = sum(
            1
            for _, result in good
            if self._result_signature(result) == answer_sig
        )
        can_blame = (
            verdicts.get(answer_index) is True or majority * 2 > len(good)
        )
        for index, result in good:
            if index == answer_index:
                continue
            diverged = self._result_signature(result) != answer_sig
            if diverged and (can_blame or verdicts.get(index) is False):
                self._quarantine(site, index)
                self._repair_replica(site, index)
        return answer

    def _repair_replica(self, site: str, index: int) -> bool:
        """Read-repair one quarantined replica; unquarantine on success.

        The worker rebuilds the site from authoritative state (newest
        valid snapshot, else a deterministic re-survey) and the repair
        only counts — and the replica only rejoins the rotation — once
        its digest re-verifies (or there is no snapshot to verify
        against, in which case the deterministic rebuild is the best
        truth available).
        """
        shard = self._shards[index]
        try:
            shard.call("repair", site)
            verdict = shard.call("verify_site", site, timeout=self.call_timeout)
        except (_ShardConnectionError, WorkerTimeout):
            self._ensure_respawn(shard)
            return False
        if verdict.get("matches") is False:
            return False  # still diverged: stays quarantined for the scrub
        self._unquarantine(site, index)
        self.router_stats.repairs += 1
        return True

    def _degraded_answer(self, site: str, method: str, args: tuple) -> Any:
        """Serve one query from the last snapshot, marked ``stale``.

        The parent-side stale manager restores the site's newest snapshot
        (re-restoring whenever the file on disk changes, so a repair or a
        fresh maintenance pass is picked up) and answers locally. Raises
        the original ``ServiceUnavailable`` shape when no usable snapshot
        exists — degraded mode widens availability, it never invents
        answers.
        """
        try:
            with self._stale_lock:
                manager = self._stale()
                store = manager.snapshot_store
                latest = store.latest(manager.snapshot_path(site))
                if latest is None:
                    raise ServiceUnavailable(
                        f"site {site!r}: every replica is down and no "
                        "snapshot exists to answer from"
                    )
                stamp = (str(latest), latest.stat().st_mtime_ns)
                if self._stale_restored.get(site) != stamp:
                    manager.restore_site(site, refresh=True)
                    self._stale_restored[site] = stamp
                system = manager.pipeline(site)
                if method == "query":
                    _, live_rss, day = args
                    result = system.localize(live_rss, day)
                elif method == "query_batch":
                    _, frames, day = args
                    result = system.localize_batch(frames, day)
                else:
                    _, trace = args
                    result = system.localize_trace(trace)
        except SnapshotError as error:
            raise ServiceUnavailable(
                f"site {site!r}: every replica is down and its snapshot "
                f"is unusable ({error})"
            ) from error
        self.router_stats.degraded_answers += 1
        return StaleAnswer(result)

    def _stale(self) -> SiteManager:
        """The parent-side stale-serving manager (caller holds the lock)."""
        if self._stale_manager is None:
            manager = SiteManager(**self._worker_kwargs)
            for site, spec in self._specs.items():
                manager.register(site, spec)
            self._stale_manager = manager
        else:
            manager = self._stale_manager
            for site, spec in self._specs.items():
                if site not in manager:
                    manager.register(site, spec)
        return self._stale_manager

    def map_query_batch(
        self, requests: Sequence[Tuple[str, np.ndarray, float]]
    ) -> List[BatchMatchResult]:
        """Answer many ``(site, frames, day)`` batches, shards in parallel.

        Requests are sent to every owning worker before any reply is
        awaited, so shards overlap their compute; within one shard,
        requests keep their relative order. Results come back in request
        order. One bad request raises after every shard has drained (see
        :meth:`_pipelined_raw`), so the pipes stay in sync. Requests lost
        to a worker crash mid-fan-out are retried on the site's replicas
        instead of raising — with ``R >= 2`` a ``kill -9`` in the middle
        of a fan-out costs latency, not answers.
        """
        requests = list(requests)
        calls = [
            (self._shard(site), "query_batch", (site, frames, day))
            for site, frames, day in requests
        ]
        results, failed, failure = self._pipelined_raw(calls)
        if failure is not None:
            raise failure
        for position in failed:
            site, frames, day = requests[position]
            self.router_stats.failovers += 1
            results[position] = self._call_route(
                site, "query_batch", site, frames, day,
                timeout=self.call_timeout,
            )
        return results

    # ------------------------------------------------------------------
    # anti-entropy scrub
    # ------------------------------------------------------------------
    def _scrub_workload(
        self, site: str, day: float, frames: int
    ) -> np.ndarray:
        """Deterministic probe frames for ``site`` at ``day``.

        Drawn from a parent-side stream family (``"scrub-*"``) disjoint
        from every serving stream, so scrubbing never perturbs worker
        state. The frames don't need to match any survey draw — they only
        need to be byte-identical across the replicas being compared,
        which the parent guarantees by sending one array to all of them.
        """
        spec = self._specs[site]
        scenario = cached_scenario(spec, build_scenario)
        seed = int(self._worker_kwargs.get("seed", 0))
        protocol = self._worker_kwargs.get("protocol")
        if protocol is None:
            protocol = CollectionProtocol()
        cells = counter_stream(task_key(seed, "scrub-cells", site), 0).integers(
            0, scenario.deployment.cell_count, size=int(frames)
        )
        collector = RssCollector(
            scenario, protocol, seed=task_key(seed, "scrub-frames", site)
        )
        return collector.live_trace(float(day), cells).rss

    def scrub(
        self,
        sites: Optional[Iterable[str]] = None,
        frames: Optional[int] = None,
    ) -> Dict[str, object]:
        """One anti-entropy pass: probe, compare, quarantine, repair.

        For every site (or the given subset): send one identical probe
        batch to each live owning replica, compare the answers
        bit-for-bit, and digest-check each replica against the
        authoritative snapshot. Any divergence alarms
        (``router_stats.scrub_divergences``), quarantines the diverged
        replica and read-repairs it from the snapshot — then verifies the
        repair before letting the replica serve again. Sites with no live
        replica, or not yet commissioned, are reported as skipped (the
        respawn path owns dead workers; the scrub owns *lying* ones).
        """
        names = list(sites) if sites is not None else self.sites()
        depth = int(frames) if frames is not None else self.scrub_frames
        report: Dict[str, object] = {
            "sites_checked": 0,
            "skipped": [],
            "divergent_sites": [],
            "quarantined": 0,
            "repaired": 0,
        }
        for site in names:
            outcome = self._scrub_site(site, depth)
            if outcome["status"] == "skipped":
                report["skipped"].append(site)
                continue
            report["sites_checked"] += 1
            if outcome["status"] == "diverged":
                report["divergent_sites"].append(site)
                report["quarantined"] += outcome["quarantined"]
                report["repaired"] += outcome["repaired"]
        self.router_stats.scrubs += 1
        return report

    def _scrub_site(self, site: str, frames: int) -> Dict[str, object]:
        order = self._replica_order(site)
        live: List[int] = []
        for index in order:
            shard = self._shards[index]
            if shard.alive():
                live.append(index)
            else:
                self._ensure_respawn(shard)
        if not live:
            return {"site": site, "status": "skipped"}
        try:
            summary = self._shards[live[0]].call(
                "site_summary", site, timeout=self.call_timeout
            )
        except (_ShardConnectionError, WorkerTimeout):
            self._ensure_respawn(self._shards[live[0]])
            return {"site": site, "status": "skipped"}
        day = summary.get("last_day")
        if day is None:
            return {"site": site, "status": "skipped"}  # cold site
        rss = self._scrub_workload(site, float(day), frames)
        calls = [
            (self._shards[index], "query_batch", (site, rss, float(day)))
            for index in live
        ]
        results, failed, failure = self._pipelined_raw(calls)
        if failure is not None:
            raise failure
        lost = set(failed)
        good = [
            (live[position], results[position])
            for position in range(len(live))
            if position not in lost
        ]
        for position in lost:
            self._ensure_respawn(self._shards[live[position]])
        if not good:
            return {"site": site, "status": "skipped"}
        verdicts = self._verify_replicas(site, [index for index, _ in good])
        signatures = {self._result_signature(result) for _, result in good}
        bad_digest = sorted(
            index for index, verdict in verdicts.items() if verdict is False
        )
        if len(signatures) == 1 and not bad_digest:
            return {"site": site, "status": "clean", "replicas": len(good)}
        # Divergence: either the answers split, or a replica's state
        # digest failed even though the probe answers happened to agree
        # (corruption in state the probe didn't exercise).
        self.router_stats.scrub_divergences += 1
        if len(signatures) > 1:
            answer_index, answer = self._arbitrate(good, verdicts)
            answer_sig = self._result_signature(answer)
            majority = sum(
                1
                for _, result in good
                if self._result_signature(result) == answer_sig
            )
            can_blame = (
                verdicts.get(answer_index) is True
                or majority * 2 > len(good)
            )
            suspects = [
                index
                for index, result in good
                if index != answer_index
                and self._result_signature(result) != answer_sig
                and (can_blame or verdicts.get(index) is False)
            ]
        else:
            suspects = bad_digest
        quarantined = repaired = 0
        for index in suspects:
            if self._quarantine(site, index):
                quarantined += 1
            if self._repair_replica(site, index):
                repaired += 1
        return {
            "site": site,
            "status": "diverged",
            "replicas": len(good),
            "quarantined": quarantined,
            "repaired": repaired,
        }

    def start_scrub(
        self, interval_seconds: float = 30.0
    ) -> "ShardedService":
        """Run :meth:`scrub` on a daemon thread every ``interval_seconds``.

        Errors are counted (``router_stats.scrub_errors``) and do not
        kill the loop — background verification must not take the fleet
        down with it.
        """
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        if self._scrub_thread is not None:
            raise RuntimeError("scrub is already running")
        self._scrub_stop.clear()

        def loop() -> None:
            while not self._scrub_stop.wait(interval_seconds):
                try:
                    self.scrub()
                except Exception:  # noqa: BLE001 - keep the verifier alive
                    self.router_stats.scrub_errors += 1

        self._scrub_thread = threading.Thread(
            target=loop, daemon=True, name="shard-scrub"
        )
        self._scrub_thread.start()
        return self

    def stop_scrub(self, timeout: float = 5.0) -> None:
        """Stop the background scrub thread (idempotent)."""
        self._scrub_stop.set()
        thread = self._scrub_thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._scrub_thread = None

    # ------------------------------------------------------------------
    # anti-entropy surface (mirrors the in-process service's methods)
    # ------------------------------------------------------------------
    def drift(
        self, site: str, day: float, frames: int = 32
    ) -> Optional[Dict[str, float]]:
        """Measured drift for ``site`` (first trusted replica answers)."""
        return self._call_route(
            site, "drift", site, day, frames, timeout=self.call_timeout
        )

    def verify_site(self, site: str) -> Dict[str, object]:
        """Every live replica's digest verdict for ``site``."""
        rows: Dict[str, object] = {}
        for index in self._replica_order(site):
            shard = self._shards[index]
            if not shard.alive():
                self._ensure_respawn(shard)
                rows[str(index)] = None
                continue
            try:
                rows[str(index)] = shard.call(
                    "verify_site", site, timeout=self.call_timeout
                )
            except (_ShardConnectionError, WorkerTimeout):
                self._ensure_respawn(shard)
                rows[str(index)] = None
        return {"site": site, "replicas": rows}

    def repair(self, site: str) -> Dict[str, object]:
        """Rebuild ``site`` from authoritative state on every live replica."""
        rows: Dict[str, object] = {}
        for index in self._replica_order(site):
            shard = self._shards[index]
            if not shard.alive():
                self._ensure_respawn(shard)
                continue
            try:
                rows[str(index)] = shard.call("repair", site)
            except (_ShardConnectionError, WorkerTimeout):
                self._ensure_respawn(shard)
                continue
            self._unquarantine(site, index)
            self.router_stats.repairs += 1
        return {"site": site, "replicas": rows}

    def snapshot_maintenance(self) -> Dict[str, object]:
        """One snapshot lifecycle pass across every reachable worker.

        Each worker saves its commissioned sites (digest-idempotent, so
        replicas sharing the directory don't churn duplicate versions),
        scrubs the shared directory and compacts per the retention
        policy; the reports are summed.
        """
        totals: Dict[str, object] = {
            "enabled": False,
            "written": 0,
            "checked": 0,
            "corrupt": 0,
            "files_removed": 0,
            "bytes_reclaimed": 0,
            "total_bytes": 0,
        }
        for shard in self._shards:
            if not shard.alive():
                self._ensure_respawn(shard)
                continue
            try:
                report = shard.call("snapshot_maintenance")
            except (_ShardConnectionError, WorkerTimeout):
                self._ensure_respawn(shard)
                continue
            if not report.get("enabled"):
                continue
            totals["enabled"] = True
            for key in (
                "written",
                "checked",
                "corrupt",
                "files_removed",
                "bytes_reclaimed",
            ):
                totals[key] += int(report[key])
            totals["total_bytes"] = int(report["total_bytes"])
        return totals

    def update(
        self, site: str, day: float, *, cold: str = "raise"
    ) -> Optional[UpdateReport]:
        return self._call_all_replicas(site, "update", site, day, cold=cold)

    def commission(self, site: str, day: float) -> None:
        return self._call_all_replicas(site, "commission", site, day)

    def staleness(self, site: str, day: float) -> Optional[float]:
        return self._call_route(
            site, "staleness", site, day, timeout=self.call_timeout
        )

    def site_summary(self, site: str) -> Dict[str, object]:
        return self._call_route(
            site, "site_summary", site, timeout=self.call_timeout
        )

    def summary(self) -> List[Dict[str, object]]:
        return [self.site_summary(site) for site in self.sites()]

    def service_stats(self) -> ServiceStats:
        """Aggregated query counters across every *reachable* worker.

        A down worker's counters are simply absent from the aggregate (it
        cannot be asked); degraded numbers beat an exception here because
        schedulers poll this to rank refresh priorities.
        """
        totals = ServiceStats()
        for shard in self._shards:
            if not shard.alive():
                self._ensure_respawn(shard)
                continue
            try:
                stats = shard.call("service_stats", timeout=self.call_timeout)
            except (_ShardConnectionError, WorkerTimeout):
                self._ensure_respawn(shard)
                continue
            totals.queries += stats.queries
            totals.frames += stats.frames
            for site, frames in stats.frames_by_site.items():
                totals.frames_by_site[site] = (
                    totals.frames_by_site.get(site, 0) + frames
                )
        return totals

    def health(self) -> Dict[str, object]:
        """Fleet liveness: per-shard status and per-site replica cover.

        ``status`` is ``"ok"`` when every worker is up, ``"degraded"``
        when some are down but every site still has a live replica, and
        ``"unavailable"`` when at least one site has none. The body is
        JSON-plain and flows through the wire ``health`` method unchanged.
        """
        shard_rows = []
        for shard in self._shards:
            if not shard.alive():
                # Monitoring drives recovery: a crashed *secondary* is
                # invisible to the read path (reads stop at the first
                # live replica), so the health poll is what notices it.
                self._ensure_respawn(shard)
            shard_rows.append(
                {
                    "index": shard.index,
                    "alive": shard.alive(),
                    "sites": len(shard.specs),
                    "generation": shard.generation,
                    "restarts": shard.restarts,
                }
            )
        down = [row["index"] for row in shard_rows if not row["alive"]]
        quarantined = self.quarantined_replicas()
        site_rows: Dict[str, Dict[str, object]] = {}
        uncovered: List[str] = []
        for site in self._site_order:
            order = self.replicas[site]
            available = sum(
                1
                for index in order
                if self._shards[index].alive()
                and not self._is_quarantined(site, index)
            )
            if available == 0:
                uncovered.append(site)
            site_rows[site] = {
                "primary": self.assignment[site],
                "replicas": list(order),
                "available": available,
            }
        # A site with no serving replica can still answer (stale) when
        # degraded mode is on and a snapshot exists for it.
        stale_capable: List[str] = []
        if self.degraded_mode and uncovered:
            with self._stale_lock:
                manager = self._stale()
                stale_capable = [
                    site for site in uncovered if manager.has_snapshot(site)
                ]
        status = "ok"
        if uncovered:
            status = (
                "degraded"
                if len(stale_capable) == len(uncovered)
                else "unavailable"
            )
        elif down or quarantined:
            status = "degraded"
        stats = self.router_stats
        return {
            "status": status,
            "sites": len(self._site_order),
            "shard_count": self.shard_count,
            "replicas": self.replica_count,
            "down_shards": down,
            "shards": shard_rows,
            "site_replicas": site_rows,
            "router": {
                "failovers": stats.failovers,
                "timeouts": stats.timeouts,
                "respawns": stats.respawns,
                "respawn_failures": stats.respawn_failures,
                "resizes": stats.resizes,
                "scrubs": stats.scrubs,
                "scrub_divergences": stats.scrub_divergences,
                "scrub_errors": stats.scrub_errors,
                "read_divergences": stats.read_divergences,
                "quarantines": stats.quarantines,
                "repairs": stats.repairs,
                "degraded_answers": stats.degraded_answers,
            },
            "anti_entropy": {
                "read_mode": self.read_mode,
                "degraded_mode": self.degraded_mode,
                "quarantined": [
                    [site, index] for site, index in quarantined
                ],
                "stale_capable": stale_capable,
            },
        }
