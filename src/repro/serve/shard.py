"""Sharding: partition sites across worker processes, route in-process.

A multi-core host serves disjoint site sets concurrently:
:class:`ShardedService` starts ``shards`` long-lived worker processes
(via :func:`repro.eval.engine.worker_context`, the same fork-first policy
as the experiment engine's pool), each holding a full
:class:`~repro.serve.service.LocalizationService` over *its* sites, and
routes every call from the parent process to the owning worker over a
pipe. The router exposes the same surface as the in-process service, so
the wire front-ends (:mod:`repro.serve.frontend`) and the update
scheduler (:mod:`repro.serve.scheduler`) run unchanged on top of either.

**Routing is a pure function of the site name.** :func:`shard_for_site`
is a jump consistent hash over the site's stable 64-bit
:func:`~repro.util.rng.task_key`: deterministic across processes and
runs, uniform over shards, and *minimally disruptive* under re-sharding —
growing ``n → m`` shards moves a site only if its new shard is one of the
added ones (``shard >= n``), never between surviving shards. The
hypothesis suite (``tests/property/test_shard_routing.py``) pins all
three properties.

**R-way replication.** :func:`replica_shards` extends the primary
placement to the first ``R`` *distinct* shards in a salted jump-hash
probe sequence: probe 0 is :func:`shard_for_site` itself (so ``R=1`` is
exactly the old layout), and each further probe is an independent jump
hash, which keeps every individual probe minimally-moving under resize.
Reads go to the primary and fail over down the replica list when a
worker is dead or times out; updates and commissions fan out to *every*
owning replica in the same order, which — together with per-site
pipelines in the workers (see
:class:`~repro.serve.manager.SiteManager` ``share_pipelines``) — keeps
replicas bit-identical.

**Crash recovery, not just crash detection.** A worker that dies (or
hangs past ``call_timeout``) is marked down, queries fail over to its
replicas, and a background thread respawns it; with a ``snapshot_dir``
the replacement warms from checksummed snapshots in milliseconds instead
of re-surveying. :meth:`ShardedService.resize` grows or shrinks the
fleet live, handing off only the jump-hash-moved sites while queries
keep answering. :meth:`ShardedService.health` reports per-shard liveness
and per-site replica availability through the wire ``health`` method.

**Bit-identity for any shard count.** Worker services derive every
pipeline seed from ``(manager seed, spec fingerprint)`` — not from the
shard layout — so the same site answers with the same bits whether it is
served in-process, by one worker, or by one of sixteen (asserted in
``tests/serve/test_shard.py`` and the CI frontend smoke gate).
"""

from __future__ import annotations

import threading
import warnings
import weakref
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.matching import BatchMatchResult, MatchResult
from repro.core.pipeline import UpdateReport
from repro.eval.engine import worker_context
from repro.serve.protocol import ServiceUnavailable
from repro.serve.service import LocalizationService, ServiceStats
from repro.sim.specs import ScenarioSpec, as_scenario_spec
from repro.sim.trace import LiveTrace
from repro.util.rng import task_key

__all__ = [
    "RouterStats",
    "ShardedService",
    "WorkerTimeout",
    "replica_shards",
    "shard_for_site",
]

_JUMP_LCG = 2862933555777941757
_MASK64 = (1 << 64) - 1


class WorkerTimeout(TimeoutError):
    """A worker gave no reply within the router's call timeout.

    The pipe is desynchronized once a reply is abandoned (a late reply
    would be mis-attributed to the next call), so a timed-out worker is
    treated exactly like a dead one: marked down, failed over, respawned.
    """


class _ShardConnectionError(ConnectionError):
    """Internal: the pipe to a worker broke (send or receive).

    Distinct from exceptions the worker *returned* (contract errors
    re-raised verbatim), so the router never mistakes a service-level
    ``OSError`` for a transport failure.
    """


def _jump(key: int, shard_count: int) -> int:
    """Jump consistent hash (Lamping & Veach) of a 64-bit key."""
    shard, candidate = 0, 0
    while candidate < shard_count:
        shard = candidate
        key = (key * _JUMP_LCG + 1) & _MASK64
        candidate = int((shard + 1) * ((1 << 31) / ((key >> 33) + 1)))
    return shard


def shard_for_site(site: str, shard_count: int) -> int:
    """The shard owning ``site`` — a pure function of ``(site, count)``.

    Jump consistent hash (Lamping & Veach) over the site name's stable
    64-bit key (:func:`~repro.util.rng.task_key`, which folds a
    process-independent FNV-1a of the name through splitmix64). Same
    inputs, same shard, in every process on every run — the property that
    lets a router and its workers agree on ownership without ever
    exchanging an assignment table.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    return _jump(task_key(0, "serve-shard", str(site)), shard_count)


def replica_shards(site: str, shard_count: int, replicas: int) -> Tuple[int, ...]:
    """The first ``min(replicas, shard_count)`` distinct shards for ``site``.

    Probe 0 is :func:`shard_for_site` (the primary — unchanged from the
    unreplicated layout); probe ``k >= 1`` is a jump hash of the site key
    salted with ``("replica", k)``, skipping shards already chosen. Each
    salted probe is itself a jump consistent hash, so under a resize every
    replica slot independently either stays put or moves to a shard that
    could not have held it before — the fleet never reshuffles wholesale.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    want = min(int(replicas), int(shard_count))
    chosen = [shard_for_site(site, shard_count)]
    salt = 0
    while len(chosen) < want:
        salt += 1
        if salt > 64 * shard_count:  # pragma: no cover - astronomically rare
            # Deterministic fallback: fill from the lowest unused indices.
            for index in range(shard_count):
                if index not in chosen:
                    chosen.append(index)
                if len(chosen) == want:
                    break
            break
        candidate = _jump(
            task_key(0, "serve-shard", str(site), "replica", salt), shard_count
        )
        if candidate not in chosen:
            chosen.append(candidate)
    return tuple(chosen)


@dataclass
class RouterStats:
    """Router-side fault accounting (surfaced through ``health``)."""

    failovers: int = 0
    timeouts: int = 0
    respawns: int = 0
    respawn_failures: int = 0
    resizes: int = 0


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _shard_worker_main(connection, specs: Dict[str, dict], kwargs) -> None:
    """Worker loop: one LocalizationService, request/reply over the pipe.

    Module-level so it survives a spawn start method. Replies are
    ``(True, result)`` or ``(False, exception)`` — the router re-raises
    the exception in the parent, preserving the serving error contract
    across the process boundary.

    ``("__fault__", (action, seconds), {})`` messages are the
    fault-injection control channel (see :mod:`repro.serve.faults`):
    ``hang`` stalls the worker before acknowledging (the reply then
    desyncs the pipe — exactly the failure the router's timeout handling
    must absorb), ``delay`` adds latency before every later reply.
    """
    import time as _time

    service = LocalizationService.from_specs(specs, **kwargs)
    reply_delay = 0.0
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        method, args, call_kwargs = message
        if method == "__fault__":
            action = args[0] if args else None
            seconds = float(args[1]) if len(args) > 1 else 0.0
            if action == "hang":
                _time.sleep(seconds)
                connection.send((True, "hung"))
            elif action == "delay":
                reply_delay = seconds
                connection.send((True, "delayed"))
            else:
                connection.send(
                    (False, ValueError(f"unknown fault action {action!r}"))
                )
            continue
        try:
            result = getattr(service, method)(*args, **call_kwargs)
            if reply_delay > 0.0:
                _time.sleep(reply_delay)
            connection.send((True, result))
        except Exception as error:  # noqa: BLE001 - forwarded to the router
            connection.send((False, error))
    connection.close()


class _Shard:
    """Parent-side handle: one worker process, its pipe, and a call lock.

    Unlike the PR-5 handle this one is *restartable*: :meth:`respawn`
    replaces a dead or hung worker with a fresh process (same sites, same
    manager kwargs — and therefore, with a snapshot directory, the same
    state), and :meth:`close` escalates join → terminate → kill and
    reports which stage finally fired instead of silently falling through
    the timeout.
    """

    def __init__(
        self, index: int, context, specs: Dict[str, ScenarioSpec], kwargs
    ) -> None:
        self.index = index
        self._context = context
        self.specs: Dict[str, ScenarioSpec] = dict(specs)
        self.kwargs = dict(kwargs)
        self.lock = threading.Lock()
        self.respawn_lock = threading.Lock()
        self.generation = 0
        self.restarts = 0
        self.dead = False
        self.close_stage: Optional[str] = None
        self._spawn()

    @property
    def sites(self) -> List[str]:
        return list(self.specs)

    def _spawn(self) -> None:
        self.connection, child = self._context.Pipe()
        self.process = self._context.Process(
            target=_shard_worker_main,
            args=(child, dict(self.specs), dict(self.kwargs)),
            daemon=True,
        )
        self.process.start()
        child.close()
        self.dead = False

    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()

    def call(
        self, method: str, *args, timeout: Optional[float] = None, **kwargs
    ) -> Any:
        with self.lock:
            try:
                self.connection.send((method, args, kwargs))
                if timeout is not None and not self.connection.poll(timeout):
                    self.dead = True  # a late reply would desync the pipe
                    raise WorkerTimeout(
                        f"shard {self.index} gave no reply to {method!r} "
                        f"within {timeout:g}s"
                    )
                ok, result = self.connection.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError) as error:
                self.dead = True
                raise _ShardConnectionError(
                    f"shard {self.index} pipe failed during {method!r}: "
                    f"{error!r}"
                ) from error
            except WorkerTimeout:
                raise
            except OSError as error:
                self.dead = True
                raise _ShardConnectionError(
                    f"shard {self.index} pipe failed during {method!r}: "
                    f"{error!r}"
                ) from error
        if not ok:
            raise result
        return result

    def send(self, method: str, *args, **kwargs) -> None:
        """Fire one request without waiting (pair with :meth:`receive`)."""
        self.connection.send((method, args, kwargs))

    def receive(self) -> Any:
        ok, result = self.connection.recv()
        if not ok:
            raise result
        return result

    def respawn(self) -> None:
        """Replace the worker process (caller must hold :attr:`lock`)."""
        self._shutdown(timeout=1.0)
        self._spawn()
        self.generation += 1
        self.restarts += 1

    def close(self, timeout: float = 5.0) -> str:
        """Stop the worker; returns the escalation stage that ended it.

        ``"clean"`` — exited on the shutdown message; ``"terminate"`` —
        needed SIGTERM; ``"kill"`` — needed SIGKILL; ``"leaked"`` — still
        alive after all three (surfaced, never silent).
        """
        stage = self._shutdown(timeout=timeout)
        self.close_stage = stage
        self.dead = True
        return stage

    def _shutdown(self, timeout: float) -> str:
        stage = "clean"
        try:
            self.connection.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            stage = "terminate"
            self.process.terminate()
            self.process.join(timeout=timeout)
            if self.process.is_alive():  # pragma: no cover - defensive
                stage = "kill"
                self.process.kill()
                self.process.join(timeout=timeout)
                if self.process.is_alive():
                    stage = "leaked"
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - already closed
            pass
        return stage


def _close_shards(shards: List[_Shard]) -> Dict[int, str]:
    stages = {shard.index: shard.close() for shard in shards}
    escalated = {
        index: stage for index, stage in stages.items() if stage != "clean"
    }
    if escalated:
        warnings.warn(
            f"shard shutdown escalated past the clean path: {escalated}",
            RuntimeWarning,
            stacklevel=2,
        )
    return stages


class ShardedService:
    """Route a site fleet across worker processes, one service per worker.

    Args:
        specs: ``{site: spec}`` (anything
            :func:`~repro.sim.specs.as_scenario_spec` accepts). Resolved
            eagerly so registration errors surface in the parent, not as
            worker crashes.
        shards: Worker process count (>= 1). Workers without sites are
            still started — a router is free to re-register later.
        replicas: Replication factor ``R``: every site is owned by the
            first ``min(R, shards)`` shards of its probe sequence
            (:func:`replica_shards`). Reads fail over down the list;
            updates fan out to all of them.
        snapshot_dir: Forwarded to every worker's manager: commissioned
            state persists there and respawned/moved workers warm from it
            instead of re-surveying (see :mod:`repro.serve.snapshot`).
        auto_respawn: Respawn crashed or timed-out workers in the
            background (on by default). The replacement only rejoins the
            rotation once its sites are warm again.
        call_timeout: Seconds the router waits for a *query-path* reply
            before declaring the worker hung (``None`` = wait forever).
            Mutating calls (warm/update/commission) are never timed out —
            a slow survey is not a fault.
        mp_context: Multiprocessing context override; defaults to
            :func:`repro.eval.engine.worker_context`.
        **manager_kwargs: Forwarded to every worker's
            :class:`~repro.serve.manager.SiteManager` (``seed``,
            ``protocol``, ``config``, ...) — identical kwargs are what
            makes the shard layout invisible in the answers. When
            replication or snapshots are enabled the workers default to
            ``share_pipelines=False`` so replica streams stay in sync
            (override explicitly at your own risk).

    The router is thread-safe (per-shard pipe locks), so a threaded wire
    front-end can fan queries out to all workers concurrently. For batch
    fan-out from one thread, :meth:`map_query_batch` pipelines requests —
    every shard computes while the others do.
    """

    def __init__(
        self,
        specs: Mapping[str, Union[ScenarioSpec, dict, str]],
        shards: int = 2,
        *,
        replicas: int = 1,
        snapshot_dir=None,
        auto_respawn: bool = True,
        call_timeout: Optional[float] = None,
        mp_context=None,
        **manager_kwargs,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        resolved = {
            site: as_scenario_spec(spec) for site, spec in specs.items()
        }
        self.shard_count = int(shards)
        self.replica_count = int(replicas)
        self.auto_respawn = bool(auto_respawn)
        self.call_timeout = call_timeout
        self.router_stats = RouterStats()
        worker_kwargs = dict(manager_kwargs)
        if snapshot_dir is not None:
            worker_kwargs["snapshot_dir"] = str(snapshot_dir)
        if self.replica_count > 1 or snapshot_dir is not None:
            # Replica (and restore) consistency needs per-site streams.
            worker_kwargs.setdefault("share_pipelines", False)
        self._worker_kwargs = worker_kwargs
        self._specs = resolved
        self.assignment: Dict[str, int] = {
            site: shard_for_site(site, shards) for site in resolved
        }
        self.replicas: Dict[str, Tuple[int, ...]] = {
            site: replica_shards(site, shards, self.replica_count)
            for site in resolved
        }
        self._site_order = list(resolved)
        self._resize_lock = threading.Lock()
        self._closed = False
        context = mp_context if mp_context is not None else worker_context()
        self._context = context
        by_shard: List[Dict[str, ScenarioSpec]] = [{} for _ in range(shards)]
        for site, spec in resolved.items():
            for index in self.replicas[site]:
                by_shard[index][site] = spec
        self._shards = [
            _Shard(index, context, shard_specs, dict(worker_kwargs))
            for index, shard_specs in enumerate(by_shard)
        ]
        self._finalizer = weakref.finalize(self, _close_shards, self._shards)

    # ------------------------------------------------------------------
    # routing + failover
    # ------------------------------------------------------------------
    def _replica_order(self, site: str) -> Tuple[int, ...]:
        order = self.replicas.get(site)
        if order is None:
            known = ", ".join(self._site_order) or "<none>"
            raise KeyError(f"unknown site {site!r}; registered: {known}")
        return order

    def _shard(self, site: str) -> _Shard:
        """First *live* replica for ``site`` (primary when healthy)."""
        order = self._replica_order(site)
        for position, index in enumerate(order):
            shard = self._shards[index]
            if shard.alive():
                if position:
                    self.router_stats.failovers += 1
                return shard
            self._ensure_respawn(shard)
        raise ServiceUnavailable(
            f"site {site!r}: all {len(order)} replica shard(s) "
            f"{list(order)} are down (respawn in progress)"
        )

    def _call_route(
        self, site: str, method: str, *args, timeout: Optional[float] = None
    ) -> Any:
        """A read call with transparent failover across the replica list."""
        order = self._replica_order(site)
        last_error: Optional[BaseException] = None
        for position, index in enumerate(order):
            shard = self._shards[index]
            if not shard.alive():
                self._ensure_respawn(shard)
                continue
            try:
                if position:
                    self.router_stats.failovers += 1
                return shard.call(method, *args, timeout=timeout)
            except _ShardConnectionError as error:
                last_error = error
                self._ensure_respawn(shard)
            except WorkerTimeout as error:
                last_error = error
                self.router_stats.timeouts += 1
                self._ensure_respawn(shard)
        raise ServiceUnavailable(
            f"site {site!r}: all {len(order)} replica shard(s) "
            f"{list(order)} are unavailable"
        ) from last_error

    def _call_all_replicas(self, site: str, method: str, *args, **kwargs) -> Any:
        """A mutating call applied to *every* owning replica, in order.

        Returns the first replica's result. Requires the full replica set
        to be up: applying an update to a subset would let the missing
        replica drift (without snapshots, a later respawn could not
        recover the skipped epochs), so a degraded site refuses refreshes
        until its respawn completes — the scheduler just retries on its
        next tick.
        """
        order = self._replica_order(site)
        down = [i for i in order if not self._shards[i].alive()]
        if down:
            for index in down:
                self._ensure_respawn(self._shards[index])
            raise ServiceUnavailable(
                f"cannot {method} site {site!r}: replica shard(s) {down} "
                "are down (respawn in progress); retry once recovered"
            )
        result: Any = None
        for position, index in enumerate(order):
            shard = self._shards[index]
            try:
                out = shard.call(method, *args, **kwargs)
            except (_ShardConnectionError, WorkerTimeout) as error:
                self._ensure_respawn(shard)
                raise ServiceUnavailable(
                    f"replica shard {index} failed mid-{method} for site "
                    f"{site!r}; its respawn will restore the last "
                    f"snapshotted state"
                ) from error
            if position == 0:
                result = out
        return result

    # ------------------------------------------------------------------
    # respawn
    # ------------------------------------------------------------------
    def _ensure_respawn(self, shard: _Shard) -> None:
        if not self.auto_respawn or self._closed:
            return
        if shard.respawn_lock.acquire(blocking=False):
            thread = threading.Thread(
                target=self._respawn_shard,
                args=(shard,),
                daemon=True,
                name=f"shard-{shard.index}-respawn",
            )
            thread.start()

    def _respawn_shard(self, shard: _Shard) -> None:
        """Background recovery: new process, warm it, then rejoin rotation.

        The replacement stays marked down while it warms (queries keep
        failing over to replicas), and only starts taking traffic once
        every one of its sites is materialized — from snapshots in
        milliseconds when a ``snapshot_dir`` is configured, from a
        re-survey otherwise.
        """
        try:
            if self._closed or shard.alive():
                return
            with shard.lock:
                shard.respawn()
                shard.dead = True  # not ready until warm
            try:
                with shard.lock:
                    shard.connection.send(("warm", (list(shard.specs),), {}))
                    ok, result = shard.connection.recv()
                if not ok:
                    raise result
            except Exception:  # noqa: BLE001 - recovery is best-effort
                self.router_stats.respawn_failures += 1
                shard.dead = True
                return
            shard.dead = False
            self.router_stats.respawns += 1
            if self._closed:  # closed while we were warming
                shard.close(timeout=1.0)
        finally:
            shard.respawn_lock.release()

    def close(self) -> None:
        """Stop every worker (idempotent; also runs at garbage collection)."""
        self._closed = True
        if self._finalizer.detach() is not None:
            _close_shards(self._shards)

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # elasticity
    # ------------------------------------------------------------------
    def resize(self, shards: int) -> Dict[str, object]:
        """Grow or shrink the fleet to ``shards`` workers, live.

        Jump-consistent placement keeps the move set minimal: only sites
        whose replica set actually changes are handed off. New workers are
        spawned and *warmed first* (snapshot restores make this
        milliseconds), surviving workers register and warm the sites they
        gain, and only then does the routing table flip — queries keep
        answering against the old layout for the whole transition. Lost
        ownership is deregistered after the flip and surplus workers are
        retired through the escalating close path.
        """
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        with self._resize_lock:
            if self._closed:
                raise ServiceUnavailable("service is closed")
            old_count = self.shard_count
            if shards == old_count:
                return {
                    "shards": shards,
                    "moved_sites": [],
                    "spawned": 0,
                    "retired": 0,
                }
            new_replicas = {
                site: replica_shards(site, shards, self.replica_count)
                for site in self._specs
            }
            new_owned: List[Dict[str, ScenarioSpec]] = [
                {} for _ in range(shards)
            ]
            for site, spec in self._specs.items():
                for index in new_replicas[site]:
                    new_owned[index][site] = spec
            moved = sorted(
                site
                for site in self._specs
                if set(new_replicas[site]) != set(self.replicas[site])
            )
            spawned = 0
            for index in range(old_count, shards):
                self._shards.append(
                    _Shard(
                        index,
                        self._context,
                        new_owned[index],
                        dict(self._worker_kwargs),
                    )
                )
                spawned += 1
            # Hand moved-in sites to the surviving workers.
            gained: Dict[int, List[str]] = {}
            for index in range(min(old_count, shards)):
                shard = self._shards[index]
                fresh = [s for s in new_owned[index] if s not in shard.specs]
                for site in fresh:
                    shard.call("register", site, self._specs[site])
                    shard.specs[site] = self._specs[site]
                if fresh:
                    gained[index] = fresh
            # Warm every new ownership before it takes traffic.
            warm_calls = [
                (self._shards[index], "warm", (sites,))
                for index, sites in sorted(gained.items())
            ] + [
                (self._shards[index], "warm", (list(new_owned[index]),))
                for index in range(old_count, shards)
                if new_owned[index]
            ]
            if warm_calls:
                results, failed, failure = self._pipelined_raw(warm_calls)
                if failure is not None:
                    raise failure
                if failed:
                    raise ServiceUnavailable(
                        "resize aborted: a worker died while warming the "
                        "new layout"
                    )
            # Flip the routing table — this is the atomic cutover.
            self.assignment = {
                site: new_replicas[site][0] for site in self._specs
            }
            self.replicas = new_replicas
            self.shard_count = shards
            # Release what moved away, retire surplus workers.
            for index in range(min(old_count, shards)):
                shard = self._shards[index]
                lost = [s for s in list(shard.specs) if s not in new_owned[index]]
                for site in lost:
                    try:
                        shard.call("deregister", site)
                    except (_ShardConnectionError, WorkerTimeout):
                        self._ensure_respawn(shard)
                        break
                    shard.specs.pop(site, None)
            retired = 0
            while len(self._shards) > shards:
                self._shards.pop().close()
                retired += 1
            self.router_stats.resizes += 1
            return {
                "shards": shards,
                "moved_sites": moved,
                "spawned": spawned,
                "retired": retired,
            }

    # ------------------------------------------------------------------
    # the service surface (same names the protocol dispatches on)
    # ------------------------------------------------------------------
    def sites(self) -> List[str]:
        return list(self._site_order)

    def _pipelined_raw(
        self, calls: Sequence[Tuple[_Shard, str, tuple]]
    ) -> Tuple[List[Any], List[int], Optional[BaseException]]:
        """Fan ``(shard, method, args)`` calls out, replies in call order.

        The careful part is failure behavior: locks are acquired in shard
        index order (so two concurrent multi-shard fan-outs cannot
        deadlock on lock-order inversion), every request is sent before
        any reply is awaited (shards overlap compute), and when one call
        fails every *other* healthy reply is still drained before
        returning — otherwise a stale reply would desync the pipe and
        every later call on that shard would return the previous call's
        result. A shard whose pipe breaks mid-fan-out is marked dead and
        skipped for the rest of the round; its call indices come back in
        the *failed* list so the caller can retry them on replicas (after
        the locks are released). The first contract error (an exception
        the worker returned) comes back as *failure* for the caller to
        re-raise.
        """
        involved = sorted(
            {shard.index: shard for shard, _, _ in calls}.values(),
            key=lambda shard: shard.index,
        )
        for shard in involved:
            shard.lock.acquire()
        try:
            failure: Optional[BaseException] = None
            dead: set = set()
            failed: List[int] = []
            pending: List[Optional[_Shard]] = []
            for position, (shard, method, args) in enumerate(calls):
                if shard.index in dead or not shard.alive():
                    shard.dead = True
                    dead.add(shard.index)
                    failed.append(position)
                    pending.append(None)
                    continue
                try:
                    shard.send(method, *args)
                    pending.append(shard)
                except OSError:
                    shard.dead = True
                    dead.add(shard.index)
                    failed.append(position)
                    pending.append(None)
            results: List[Any] = []
            for position, shard in enumerate(pending):
                if shard is None or shard.index in dead:
                    results.append(None)
                    if shard is not None and position not in failed:
                        failed.append(position)
                    continue
                try:
                    results.append(shard.receive())
                except (EOFError, OSError):
                    # Broken pipe: the shard's remaining replies will
                    # never arrive — stop waiting for them.
                    shard.dead = True
                    dead.add(shard.index)
                    failed.append(position)
                    results.append(None)
                except Exception as error:  # noqa: BLE001 - drain first
                    failure = failure if failure is not None else error
                    results.append(None)
            return results, sorted(failed), failure
        finally:
            for shard in involved:
                shard.lock.release()

    def _pipelined(self, calls: Sequence[Tuple[_Shard, str, tuple]]) -> List[Any]:
        """Strict fan-out: any failure (transport or contract) raises."""
        results, failed, failure = self._pipelined_raw(calls)
        if failure is not None:
            raise failure
        if failed:
            raise ServiceUnavailable(
                f"worker died mid-fan-out; {len(failed)} call(s) lost"
            )
        return results

    def warm(self, sites: Optional[Iterable[str]] = None) -> List[str]:
        """Materialize pipelines on every owning worker, concurrently.

        Requests are pipelined — each shard commissions its own sites
        while the others do the same — so warm-up wall time scales with
        the busiest shard, not the site count (the shard scaling lever
        the benchmark measures). With replication every owning worker
        warms its copy.
        """
        names = list(sites) if sites is not None else self.sites()
        per_shard: Dict[int, List[str]] = {}
        for site in names:
            for index in self._replica_order(site):  # KeyError when unknown
                per_shard.setdefault(index, []).append(site)
        self._pipelined(
            [
                (self._shards[index], "warm", (batch,))
                for index, batch in sorted(per_shard.items())
            ]
        )
        return names

    def query(self, site: str, live_rss: np.ndarray, day: float) -> MatchResult:
        return self._call_route(
            site, "query", site, live_rss, day, timeout=self.call_timeout
        )

    def query_batch(
        self, site: str, frames: np.ndarray, day: float
    ) -> BatchMatchResult:
        return self._call_route(
            site, "query_batch", site, frames, day, timeout=self.call_timeout
        )

    def query_trace(self, site: str, trace: LiveTrace) -> BatchMatchResult:
        return self._call_route(
            site, "query_trace", site, trace, timeout=self.call_timeout
        )

    def map_query_batch(
        self, requests: Sequence[Tuple[str, np.ndarray, float]]
    ) -> List[BatchMatchResult]:
        """Answer many ``(site, frames, day)`` batches, shards in parallel.

        Requests are sent to every owning worker before any reply is
        awaited, so shards overlap their compute; within one shard,
        requests keep their relative order. Results come back in request
        order. One bad request raises after every shard has drained (see
        :meth:`_pipelined_raw`), so the pipes stay in sync. Requests lost
        to a worker crash mid-fan-out are retried on the site's replicas
        instead of raising — with ``R >= 2`` a ``kill -9`` in the middle
        of a fan-out costs latency, not answers.
        """
        requests = list(requests)
        calls = [
            (self._shard(site), "query_batch", (site, frames, day))
            for site, frames, day in requests
        ]
        results, failed, failure = self._pipelined_raw(calls)
        if failure is not None:
            raise failure
        for position in failed:
            site, frames, day = requests[position]
            self.router_stats.failovers += 1
            results[position] = self._call_route(
                site, "query_batch", site, frames, day,
                timeout=self.call_timeout,
            )
        return results

    def update(
        self, site: str, day: float, *, cold: str = "raise"
    ) -> Optional[UpdateReport]:
        return self._call_all_replicas(site, "update", site, day, cold=cold)

    def commission(self, site: str, day: float) -> None:
        return self._call_all_replicas(site, "commission", site, day)

    def staleness(self, site: str, day: float) -> Optional[float]:
        return self._call_route(
            site, "staleness", site, day, timeout=self.call_timeout
        )

    def site_summary(self, site: str) -> Dict[str, object]:
        return self._call_route(
            site, "site_summary", site, timeout=self.call_timeout
        )

    def summary(self) -> List[Dict[str, object]]:
        return [self.site_summary(site) for site in self.sites()]

    def service_stats(self) -> ServiceStats:
        """Aggregated query counters across every *reachable* worker.

        A down worker's counters are simply absent from the aggregate (it
        cannot be asked); degraded numbers beat an exception here because
        schedulers poll this to rank refresh priorities.
        """
        totals = ServiceStats()
        for shard in self._shards:
            if not shard.alive():
                self._ensure_respawn(shard)
                continue
            try:
                stats = shard.call("service_stats", timeout=self.call_timeout)
            except (_ShardConnectionError, WorkerTimeout):
                self._ensure_respawn(shard)
                continue
            totals.queries += stats.queries
            totals.frames += stats.frames
            for site, frames in stats.frames_by_site.items():
                totals.frames_by_site[site] = (
                    totals.frames_by_site.get(site, 0) + frames
                )
        return totals

    def health(self) -> Dict[str, object]:
        """Fleet liveness: per-shard status and per-site replica cover.

        ``status`` is ``"ok"`` when every worker is up, ``"degraded"``
        when some are down but every site still has a live replica, and
        ``"unavailable"`` when at least one site has none. The body is
        JSON-plain and flows through the wire ``health`` method unchanged.
        """
        shard_rows = []
        for shard in self._shards:
            if not shard.alive():
                # Monitoring drives recovery: a crashed *secondary* is
                # invisible to the read path (reads stop at the first
                # live replica), so the health poll is what notices it.
                self._ensure_respawn(shard)
            shard_rows.append(
                {
                    "index": shard.index,
                    "alive": shard.alive(),
                    "sites": len(shard.specs),
                    "generation": shard.generation,
                    "restarts": shard.restarts,
                }
            )
        down = [row["index"] for row in shard_rows if not row["alive"]]
        site_rows: Dict[str, Dict[str, object]] = {}
        uncovered = 0
        for site in self._site_order:
            order = self.replicas[site]
            available = sum(
                1 for index in order if self._shards[index].alive()
            )
            uncovered += available == 0
            site_rows[site] = {
                "primary": self.assignment[site],
                "replicas": list(order),
                "available": available,
            }
        status = "ok"
        if uncovered:
            status = "unavailable"
        elif down:
            status = "degraded"
        stats = self.router_stats
        return {
            "status": status,
            "sites": len(self._site_order),
            "shard_count": self.shard_count,
            "replicas": self.replica_count,
            "down_shards": down,
            "shards": shard_rows,
            "site_replicas": site_rows,
            "router": {
                "failovers": stats.failovers,
                "timeouts": stats.timeouts,
                "respawns": stats.respawns,
                "respawn_failures": stats.respawn_failures,
                "resizes": stats.resizes,
            },
        }
