"""Multi-site pipeline management: one process, many scenario realizations.

The registry (PR 3) made every experiment runnable on any environment; this
module is the serving-side counterpart: a :class:`SiteManager` holds a fleet
of named *sites*, each bound to a :class:`~repro.sim.specs.ScenarioSpec`
(registered name, dict, JSON file — anything
:func:`~repro.sim.specs.as_scenario_spec` accepts), and lazily materializes
one commissioned :class:`~repro.core.pipeline.TafLoc` pipeline per distinct
spec.

Materialization is deterministic and shared:

* Scenario realizations go through
  :func:`repro.eval.engine.cached_scenario`, so a spec's world is built at
  most once per process no matter how many sites or services reference it.
* Pipelines are cached by the spec's structural fingerprint
  (:func:`repro.eval.engine.task_fingerprint`), so two sites registered
  with byte-identical specs share one commissioned pipeline — commissioning
  (the expensive full survey) runs once per distinct environment.
* Collector and reconstructor seeds derive from ``(manager seed, spec
  fingerprint)`` via :func:`repro.util.rng.task_key` (see
  :func:`pipeline_seed` / :func:`reconstructor_seed`), so a manager-built
  pipeline is bit-identical to a standalone
  :class:`~repro.core.pipeline.TafLoc` constructed with the same derived
  seeds — the contract the serving tests assert, including for stochastic
  reference-selection strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.fingerprint import FingerprintMatrix
from repro.core.pipeline import TafLoc, TafLocConfig, UpdateReport
from repro.eval.engine import cached_scenario, task_fingerprint
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import ScenarioSpec, as_scenario_spec, build_scenario
from repro.util.rng import task_key

__all__ = [
    "SiteManager",
    "SiteManagerStats",
    "pipeline_seed",
    "reconstructor_seed",
]


def _spec_fingerprint(spec: ScenarioSpec) -> str:
    fingerprint = task_fingerprint(spec)
    if fingerprint is None:  # pragma: no cover - specs are always plain data
        raise ValueError(f"scenario spec {spec.name!r} is not fingerprintable")
    return fingerprint


def pipeline_seed(spec: ScenarioSpec, seed: int = 0) -> int:
    """Deterministic collector seed for the pipeline serving ``spec``.

    Keyed by the spec's structural fingerprint rather than its name, so the
    stream follows the environment (two sites sharing a spec share the
    stream along with the pipeline) and never collides across distinct
    environments or adjacent manager seeds.
    """
    return task_key(seed, "serve-pipeline", _spec_fingerprint(spec))


def reconstructor_seed(spec: ScenarioSpec, seed: int = 0) -> int:
    """Deterministic reconstructor seed for the pipeline serving ``spec``.

    The second half of the bit-identity recipe: a standalone pipeline
    equal to the manager's is
    ``TafLoc(RssCollector(scenario, protocol, seed=pipeline_seed(spec, s)),
    config, seed=reconstructor_seed(spec, s))``. The reconstructor seed
    only matters for stochastic reference-selection strategies; deriving
    it per spec keeps those streams independent across environments.
    """
    return task_key(seed, "serve-reconstructor", _spec_fingerprint(spec))


@dataclass
class SiteManagerStats:
    """Counters for one manager's lifetime."""

    pipelines_built: int = 0
    pipelines_shared: int = 0


class SiteManager:
    """Registry of sites and lazy cache of their commissioned pipelines.

    Args:
        config: :class:`~repro.core.pipeline.TafLocConfig` applied to every
            materialized pipeline.
        protocol: Collection protocol for the commissioning survey (and any
            later :meth:`update` calls).
        commission_day: Day at which lazily materialized pipelines run
            their commissioning survey.
        seed: Master seed; per-pipeline collector streams derive from it
            via :func:`pipeline_seed`.
        auto_commission: When ``False``, materialized pipelines are *not*
            commissioned — queries against them raise ``RuntimeError``
            until the caller commissions explicitly (the staged-rollout /
            real-testbed path).

    Error contract: any site-keyed lookup against an unregistered name
    raises :class:`KeyError`; registering a duplicate name raises
    :class:`ValueError`.
    """

    def __init__(
        self,
        *,
        config: Optional[TafLocConfig] = None,
        protocol: Optional[CollectionProtocol] = None,
        commission_day: float = 0.0,
        seed: int = 0,
        auto_commission: bool = True,
    ) -> None:
        self.config = config if config is not None else TafLocConfig()
        self.protocol = (
            protocol if protocol is not None else CollectionProtocol()
        )
        self.commission_day = float(commission_day)
        self.seed = int(seed)
        self.auto_commission = auto_commission
        self.stats = SiteManagerStats()
        self._specs: Dict[str, ScenarioSpec] = {}
        self._attached: Dict[str, TafLoc] = {}
        self._pipelines: Dict[str, TafLoc] = {}  # spec fingerprint -> pipeline
        self._by_site: Dict[str, TafLoc] = {}  # resolved site -> pipeline

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self, site: str, spec: Union[ScenarioSpec, dict, str]
    ) -> ScenarioSpec:
        """Bind ``site`` to a scenario spec (object, dict, or registry name)."""
        if site in self._specs or site in self._attached:
            raise ValueError(f"site {site!r} is already registered")
        resolved = as_scenario_spec(spec)
        self._specs[site] = resolved
        return resolved

    def attach(self, site: str, system: TafLoc) -> None:
        """Bind ``site`` to an existing pipeline (e.g. a real testbed).

        The pipeline is served as-is: if it has not been commissioned,
        queries raise ``RuntimeError`` until it is.
        """
        if site in self._specs or site in self._attached:
            raise ValueError(f"site {site!r} is already registered")
        self._attached[site] = system

    def sites(self) -> List[str]:
        """Registered site names, in registration order."""
        return [*self._specs, *self._attached]

    def __contains__(self, site: str) -> bool:
        return site in self._specs or site in self._attached

    def spec(self, site: str) -> Optional[ScenarioSpec]:
        """The site's spec (``None`` for attached pipelines)."""
        if site in self._specs:
            return self._specs[site]
        if site in self._attached:
            return None
        raise KeyError(self._unknown(site))

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def pipeline(self, site: str) -> TafLoc:
        """The (lazily materialized, fingerprint-cached) pipeline for ``site``.

        The first lookup per site fingerprints its spec to find (or build)
        the shared pipeline; later lookups are a plain dict hit, keeping
        the steady-state routing path allocation-free.
        """
        return self._resolve(site)

    def _resolve(self, site: str, *, commission: Optional[bool] = None) -> TafLoc:
        """Shared site→pipeline resolution behind :meth:`pipeline` and
        :meth:`_resolve_raw`; ``commission`` only applies when this call
        is the one that materializes (``None`` = the manager's
        ``auto_commission`` policy, ``False`` = leave it raw for an
        explicit lifecycle caller)."""
        resolved = self._by_site.get(site)
        if resolved is not None:
            return resolved
        if site in self._attached:
            resolved = self._attached[site]
        elif site in self._specs:
            spec = self._specs[site]
            key = task_fingerprint(spec)
            if key not in self._pipelines:
                self._pipelines[key] = self._materialize(
                    spec, commission=commission
                )
                self.stats.pipelines_built += 1
            else:
                self.stats.pipelines_shared += 1
            resolved = self._pipelines[key]
        else:
            raise KeyError(self._unknown(site))
        self._by_site[site] = resolved
        return resolved

    def materialized(self, site: str) -> bool:
        """Whether the site's pipeline has been built (never builds one)."""
        if site in self._attached:
            return True
        if site not in self._specs:
            raise KeyError(self._unknown(site))
        return task_fingerprint(self._specs[site]) in self._pipelines

    def commission(self, site: str, day: float) -> FingerprintMatrix:
        """Run the site's commissioning survey at ``day``, explicitly.

        Materializes the pipeline if needed — *without* the lazy path's
        implicit ``commission_day`` survey — and commissions it at ``day``,
        so a cold site's first epoch lands exactly where the caller (e.g.
        the update scheduler catching up a site registered mid-flight)
        says it does. Raises :class:`RuntimeError` if the site is already
        commissioned: re-surveying is not a refresh, it would shadow the
        learned time-stable structure — call :meth:`update` instead.
        """
        system = self._resolve_raw(site)
        if system.commissioned:
            raise RuntimeError(
                f"site {site!r} is already commissioned (epoch days: "
                f"{system.database.days}); use update() to refresh it"
            )
        return system.commission(day)

    def update(
        self, site: str, day: float, *, cold: str = "raise"
    ) -> Optional[UpdateReport]:
        """Run a cheap fingerprint refresh on the site's pipeline.

        The **cold-update contract**: updating a site whose pipeline was
        never materialized (or never commissioned) is ambiguous — there is
        no reference structure to reconstruct against, and silently
        commissioning first would plant a surprise epoch at
        ``commission_day`` next to the requested one. ``cold`` selects the
        behavior explicitly:

        * ``"raise"`` (default) — raise :class:`RuntimeError`; the caller
          decides between :meth:`commission` and :meth:`pipeline`/warm.
        * ``"commission"`` — run the commissioning survey at ``day``
          instead (the refresh *is* the survey) and return ``None``: the
          site ends up with exactly one epoch, at ``day``, and later
          updates reconstruct against it.

        Returns the :class:`~repro.core.pipeline.UpdateReport` for a warm
        update, ``None`` when ``cold="commission"`` commissioned instead.
        """
        if cold not in ("raise", "commission"):
            raise ValueError(
                f"cold must be 'raise' or 'commission', got {cold!r}"
            )
        if site not in self:
            raise KeyError(self._unknown(site))
        if self.materialized(site):
            system = self.pipeline(site)
            if system.commissioned:
                return system.update(day)
        if cold == "raise":
            # Deliberately does not materialize anything: a refused cold
            # update must leave the site exactly as lazy as it found it.
            raise RuntimeError(
                f"cold update: site {site!r} has no commissioned pipeline "
                f"to refresh at day {day:g}; call commission(site, day) "
                "(or warm the site) first, or pass cold='commission' to "
                "survey at the update day"
            )
        self._resolve_raw(site).commission(day)
        return None

    # ------------------------------------------------------------------
    def _resolve_raw(self, site: str) -> TafLoc:
        """The site's pipeline, materialized *without* auto-commissioning.

        The commission/update entry points use this so lifecycle decisions
        (when and whether to survey) stay theirs; the returned pipeline is
        the same shared object :meth:`pipeline` would serve.
        """
        return self._resolve(site, commission=False)

    def _materialize(
        self, spec: ScenarioSpec, *, commission: Optional[bool] = None
    ) -> TafLoc:
        scenario = cached_scenario(spec, build_scenario)
        system = TafLoc(
            RssCollector(
                scenario, self.protocol, seed=pipeline_seed(spec, self.seed)
            ),
            self.config,
            seed=reconstructor_seed(spec, self.seed),
        )
        if self.auto_commission if commission is None else commission:
            system.commission(self.commission_day)
        return system

    def _unknown(self, site: str) -> str:
        known = ", ".join(self.sites()) or "<none>"
        return f"unknown site {site!r}; registered: {known}"
