"""Multi-site pipeline management: one process, many scenario realizations.

The registry (PR 3) made every experiment runnable on any environment; this
module is the serving-side counterpart: a :class:`SiteManager` holds a fleet
of named *sites*, each bound to a :class:`~repro.sim.specs.ScenarioSpec`
(registered name, dict, JSON file — anything
:func:`~repro.sim.specs.as_scenario_spec` accepts), and lazily materializes
one commissioned :class:`~repro.core.pipeline.TafLoc` pipeline per distinct
spec.

Materialization is deterministic and shared:

* Scenario realizations go through
  :func:`repro.eval.engine.cached_scenario`, so a spec's world is built at
  most once per process no matter how many sites or services reference it.
* Pipelines are cached by the spec's structural fingerprint
  (:func:`repro.eval.engine.task_fingerprint`), so two sites registered
  with byte-identical specs share one commissioned pipeline — commissioning
  (the expensive full survey) runs once per distinct environment.
* Collector and reconstructor seeds derive from ``(manager seed, spec
  fingerprint)`` via :func:`repro.util.rng.task_key` (see
  :func:`pipeline_seed` / :func:`reconstructor_seed`), so a manager-built
  pipeline is bit-identical to a standalone
  :class:`~repro.core.pipeline.TafLoc` constructed with the same derived
  seeds — the contract the serving tests assert, including for stochastic
  reference-selection strategies.

Two PR-6 additions make the manager the durability layer of the elastic
fleet:

* ``snapshot_dir`` — every commission/update writes a checksummed
  :mod:`~repro.serve.snapshot` file, and lazy materialization restores
  from it when the spec/config/protocol fingerprints match, so a
  respawned or re-sharded worker warms in milliseconds without
  re-surveying. Restores apply only to the lazy (auto-commission) path;
  the explicit :meth:`commission`/:meth:`update` lifecycle entry points
  always get a virgin pipeline, keeping their contracts unchanged.
* ``share_pipelines=False`` — pipelines keyed per *site* instead of per
  spec fingerprint, so a site's stream state depends only on its own
  call sequence. That is what keeps R-way replicas of a site
  bit-identical to each other (and to any other layout) no matter which
  other sites each worker happens to own; the sharded router enables it
  whenever replication or snapshots are on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.fingerprint import FingerprintMatrix
from repro.core.pipeline import TafLoc, TafLocConfig, UpdateReport
from repro.eval.engine import cached_scenario, task_fingerprint
from repro.serve.snapshot import (
    SnapshotError,
    SnapshotStore,
    epochs_digest,
    load_snapshot,
    read_snapshot_digest,
    restore_into,
    snapshot_state,
)
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import ScenarioSpec, as_scenario_spec, build_scenario
from repro.util.rng import task_key

__all__ = [
    "SiteManager",
    "SiteManagerStats",
    "pipeline_seed",
    "reconstructor_seed",
]


def _spec_fingerprint(spec: ScenarioSpec) -> str:
    fingerprint = task_fingerprint(spec)
    if fingerprint is None:  # pragma: no cover - specs are always plain data
        raise ValueError(f"scenario spec {spec.name!r} is not fingerprintable")
    return fingerprint


def pipeline_seed(spec: ScenarioSpec, seed: int = 0) -> int:
    """Deterministic collector seed for the pipeline serving ``spec``.

    Keyed by the spec's structural fingerprint rather than its name, so the
    stream follows the environment (two sites sharing a spec share the
    stream along with the pipeline) and never collides across distinct
    environments or adjacent manager seeds.
    """
    return task_key(seed, "serve-pipeline", _spec_fingerprint(spec))


def reconstructor_seed(spec: ScenarioSpec, seed: int = 0) -> int:
    """Deterministic reconstructor seed for the pipeline serving ``spec``.

    The second half of the bit-identity recipe: a standalone pipeline
    equal to the manager's is
    ``TafLoc(RssCollector(scenario, protocol, seed=pipeline_seed(spec, s)),
    config, seed=reconstructor_seed(spec, s))``. The reconstructor seed
    only matters for stochastic reference-selection strategies; deriving
    it per spec keeps those streams independent across environments.
    """
    return task_key(seed, "serve-reconstructor", _spec_fingerprint(spec))


@dataclass
class SiteManagerStats:
    """Counters for one manager's lifetime."""

    pipelines_built: int = 0
    pipelines_shared: int = 0
    snapshots_saved: int = 0
    snapshots_restored: int = 0
    snapshots_rejected: int = 0


class SiteManager:
    """Registry of sites and lazy cache of their commissioned pipelines.

    Args:
        config: :class:`~repro.core.pipeline.TafLocConfig` applied to every
            materialized pipeline.
        protocol: Collection protocol for the commissioning survey (and any
            later :meth:`update` calls).
        commission_day: Day at which lazily materialized pipelines run
            their commissioning survey.
        seed: Master seed; per-pipeline collector streams derive from it
            via :func:`pipeline_seed`.
        auto_commission: When ``False``, materialized pipelines are *not*
            commissioned — queries against them raise ``RuntimeError``
            until the caller commissions explicitly (the staged-rollout /
            real-testbed path).
        snapshot_dir: When set, commissioned state is persisted there
            (one checksummed file per pipeline) after every
            commission/update, and lazy materialization restores from a
            matching snapshot instead of re-surveying.
        snapshot_keep: Retention policy for ``snapshot_dir``: ``None``
            (default) keeps the single-file-per-site layout, ``K`` makes
            every save a new version and prunes each site's history to
            the newest ``K`` (see
            :class:`~repro.serve.snapshot.SnapshotStore`). Restores try
            newest-first either way.
        share_pipelines: When ``False``, every site gets its own pipeline
            (still seeded per spec fingerprint) instead of sharing one per
            distinct spec — the replica-consistency mode (see module
            docstring).

    Error contract: any site-keyed lookup against an unregistered name
    raises :class:`KeyError`; registering a duplicate name raises
    :class:`ValueError`.
    """

    def __init__(
        self,
        *,
        config: Optional[TafLocConfig] = None,
        protocol: Optional[CollectionProtocol] = None,
        commission_day: float = 0.0,
        seed: int = 0,
        auto_commission: bool = True,
        snapshot_dir: Optional[Union[str, Path]] = None,
        snapshot_keep: Optional[int] = None,
        share_pipelines: bool = True,
    ) -> None:
        self.config = config if config is not None else TafLocConfig()
        self.protocol = (
            protocol if protocol is not None else CollectionProtocol()
        )
        self.commission_day = float(commission_day)
        self.seed = int(seed)
        self.auto_commission = auto_commission
        self.snapshot_dir = None if snapshot_dir is None else Path(snapshot_dir)
        self._store: Optional[SnapshotStore] = None
        if self.snapshot_dir is not None:
            self.snapshot_dir.mkdir(parents=True, exist_ok=True)
            self._store = SnapshotStore(self.snapshot_dir, keep_last=snapshot_keep)
        elif snapshot_keep is not None:
            raise ValueError("snapshot_keep requires a snapshot_dir")
        self.share_pipelines = bool(share_pipelines)
        self.stats = SiteManagerStats()
        self._specs: Dict[str, ScenarioSpec] = {}
        self._attached: Dict[str, TafLoc] = {}
        self._pipelines: Dict[str, TafLoc] = {}  # pipeline key -> pipeline
        self._by_site: Dict[str, TafLoc] = {}  # resolved site -> pipeline

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self, site: str, spec: Union[ScenarioSpec, dict, str]
    ) -> ScenarioSpec:
        """Bind ``site`` to a scenario spec (object, dict, or registry name)."""
        if site in self._specs or site in self._attached:
            raise ValueError(f"site {site!r} is already registered")
        resolved = as_scenario_spec(spec)
        self._specs[site] = resolved
        return resolved

    def attach(self, site: str, system: TafLoc) -> None:
        """Bind ``site`` to an existing pipeline (e.g. a real testbed).

        The pipeline is served as-is: if it has not been commissioned,
        queries raise ``RuntimeError`` until it is.
        """
        if site in self._specs or site in self._attached:
            raise ValueError(f"site {site!r} is already registered")
        self._attached[site] = system

    def deregister(self, site: str) -> None:
        """Drop ``site`` and free its pipeline if no other site shares it.

        The live-resize handoff path: a worker that lost ownership of a
        site under a new shard layout deregisters it so its memory is
        reclaimed. Unknown sites raise :class:`KeyError`.
        """
        if site not in self:
            raise KeyError(self._unknown(site))
        spec = self._specs.pop(site, None)
        self._attached.pop(site, None)
        self._by_site.pop(site, None)
        if spec is not None:
            key = self._pipeline_key(site, spec)
            still_used = any(
                self._pipeline_key(other, other_spec) == key
                for other, other_spec in self._specs.items()
            )
            if not still_used:
                self._pipelines.pop(key, None)

    def sites(self) -> List[str]:
        """Registered site names, in registration order."""
        return [*self._specs, *self._attached]

    def __contains__(self, site: str) -> bool:
        return site in self._specs or site in self._attached

    def spec(self, site: str) -> Optional[ScenarioSpec]:
        """The site's spec (``None`` for attached pipelines)."""
        if site in self._specs:
            return self._specs[site]
        if site in self._attached:
            return None
        raise KeyError(self._unknown(site))

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def pipeline(self, site: str) -> TafLoc:
        """The (lazily materialized, fingerprint-cached) pipeline for ``site``.

        The first lookup per site fingerprints its spec to find (or build)
        the shared pipeline; later lookups are a plain dict hit, keeping
        the steady-state routing path allocation-free.
        """
        return self._resolve(site)

    def _resolve(self, site: str, *, commission: Optional[bool] = None) -> TafLoc:
        """Shared site→pipeline resolution behind :meth:`pipeline` and
        :meth:`_resolve_raw`; ``commission`` only applies when this call
        is the one that materializes (``None`` = the manager's
        ``auto_commission`` policy, ``False`` = leave it raw for an
        explicit lifecycle caller)."""
        resolved = self._by_site.get(site)
        if resolved is not None:
            return resolved
        if site in self._attached:
            resolved = self._attached[site]
        elif site in self._specs:
            spec = self._specs[site]
            key = self._pipeline_key(site, spec)
            if key not in self._pipelines:
                self._pipelines[key] = self._materialize(
                    site, spec, commission=commission
                )
                self.stats.pipelines_built += 1
            else:
                self.stats.pipelines_shared += 1
            resolved = self._pipelines[key]
        else:
            raise KeyError(self._unknown(site))
        self._by_site[site] = resolved
        return resolved

    def _pipeline_key(self, site: str, spec: ScenarioSpec) -> str:
        """Cache key for the pipeline serving ``site``.

        The spec fingerprint alone in shared mode (twin sites share one
        pipeline); fingerprint *plus site name* otherwise, so each site's
        collector stream is private to its own call sequence.
        """
        fingerprint = _spec_fingerprint(spec)
        if self.share_pipelines:
            return fingerprint
        return f"{fingerprint}@{site}"

    def materialized(self, site: str) -> bool:
        """Whether the site's pipeline has been built (never builds one)."""
        if site in self._attached:
            return True
        if site not in self._specs:
            raise KeyError(self._unknown(site))
        return self._pipeline_key(site, self._specs[site]) in self._pipelines

    def commission(self, site: str, day: float) -> FingerprintMatrix:
        """Run the site's commissioning survey at ``day``, explicitly.

        Materializes the pipeline if needed — *without* the lazy path's
        implicit ``commission_day`` survey — and commissions it at ``day``,
        so a cold site's first epoch lands exactly where the caller (e.g.
        the update scheduler catching up a site registered mid-flight)
        says it does. Raises :class:`RuntimeError` if the site is already
        commissioned: re-surveying is not a refresh, it would shadow the
        learned time-stable structure — call :meth:`update` instead.
        """
        system = self._resolve_raw(site)
        if system.commissioned:
            raise RuntimeError(
                f"site {site!r} is already commissioned (epoch days: "
                f"{system.database.days}); use update() to refresh it"
            )
        fingerprint = system.commission(day)
        self._save_snapshot_for(site)
        return fingerprint

    def update(
        self, site: str, day: float, *, cold: str = "raise"
    ) -> Optional[UpdateReport]:
        """Run a cheap fingerprint refresh on the site's pipeline.

        The **cold-update contract**: updating a site whose pipeline was
        never materialized (or never commissioned) is ambiguous — there is
        no reference structure to reconstruct against, and silently
        commissioning first would plant a surprise epoch at
        ``commission_day`` next to the requested one. ``cold`` selects the
        behavior explicitly:

        * ``"raise"`` (default) — raise :class:`RuntimeError`; the caller
          decides between :meth:`commission` and :meth:`pipeline`/warm.
        * ``"commission"`` — run the commissioning survey at ``day``
          instead (the refresh *is* the survey) and return ``None``: the
          site ends up with exactly one epoch, at ``day``, and later
          updates reconstruct against it.

        Returns the :class:`~repro.core.pipeline.UpdateReport` for a warm
        update, ``None`` when ``cold="commission"`` commissioned instead.
        """
        if cold not in ("raise", "commission"):
            raise ValueError(
                f"cold must be 'raise' or 'commission', got {cold!r}"
            )
        if site not in self:
            raise KeyError(self._unknown(site))
        if self.materialized(site):
            system = self.pipeline(site)
            if system.commissioned:
                report = system.update(day)
                self._save_snapshot_for(site)
                return report
        if cold == "raise":
            # Deliberately does not materialize anything: a refused cold
            # update must leave the site exactly as lazy as it found it.
            raise RuntimeError(
                f"cold update: site {site!r} has no commissioned pipeline "
                f"to refresh at day {day:g}; call commission(site, day) "
                "(or warm the site) first, or pass cold='commission' to "
                "survey at the update day"
            )
        self._resolve_raw(site).commission(day)
        self._save_snapshot_for(site)
        return None

    # ------------------------------------------------------------------
    def _resolve_raw(self, site: str) -> TafLoc:
        """The site's pipeline, materialized *without* auto-commissioning.

        The commission/update entry points use this so lifecycle decisions
        (when and whether to survey) stay theirs; the returned pipeline is
        the same shared object :meth:`pipeline` would serve.
        """
        return self._resolve(site, commission=False)

    def _materialize(
        self, site: str, spec: ScenarioSpec, *, commission: Optional[bool] = None
    ) -> TafLoc:
        want_commission = (
            self.auto_commission if commission is None else commission
        )
        if want_commission and self.snapshot_dir is not None:
            restored = self._try_restore(site, spec)
            if restored is not None:
                return restored
        system = self._build_raw(spec)
        if want_commission:
            system.commission(self.commission_day)
            self._save_snapshot_system(site, spec, system)
        return system

    def _build_raw(self, spec: ScenarioSpec) -> TafLoc:
        """A virgin pipeline for ``spec`` with the manager-derived seeds."""
        scenario = cached_scenario(spec, build_scenario)
        return TafLoc(
            RssCollector(
                scenario, self.protocol, seed=pipeline_seed(spec, self.seed)
            ),
            self.config,
            seed=reconstructor_seed(spec, self.seed),
        )

    # ------------------------------------------------------------------
    # snapshots (the durability layer; see repro.serve.snapshot)
    # ------------------------------------------------------------------
    def snapshot_path(self, site: str) -> Path:
        """Where the site's snapshot lives (requires ``snapshot_dir``).

        With a retention policy this is the *base* name version files
        derive from (``<base>.vNNNNNN.snap.npz``); use
        :attr:`snapshot_store` ``.latest(path)`` for the newest file.
        """
        if self.snapshot_dir is None:
            raise RuntimeError(
                "this manager has no snapshot_dir; construct it with one "
                "to enable snapshots"
            )
        spec = self._specs.get(site)
        if spec is None:
            if site in self._attached:
                raise RuntimeError(
                    f"site {site!r} is an attached pipeline; snapshots "
                    "cover spec-backed sites only"
                )
            raise KeyError(self._unknown(site))
        key = self._pipeline_key(site, spec)
        digest = hashlib.blake2b(
            f"{key}|{self._seed_key()}".encode("utf-8"), digest_size=16
        ).hexdigest()
        safe_name = "".join(
            ch if ch.isalnum() or ch in "-_" else "-" for ch in spec.name
        )
        return self.snapshot_dir / f"{safe_name}-{digest}.snap.npz"

    @property
    def snapshot_store(self) -> Optional[SnapshotStore]:
        """The lifecycle manager over ``snapshot_dir`` (``None`` without one)."""
        return self._store

    def snapshot_site(self, site: str) -> Path:
        """Persist the site's commissioned state now; returns the path.

        Idempotent by digest: when the newest on-disk snapshot already
        records byte-identical epochs, the existing file is returned
        without writing — so R replicas running maintenance over a shared
        directory don't churn R identical versions per pass through the
        retention window.
        """
        system = self._by_site.get(site)
        if system is None or not system.commissioned:
            raise RuntimeError(
                f"site {site!r} has no commissioned pipeline to snapshot; "
                "warm or commission it first"
            )
        path = self.snapshot_path(site)  # validates dir + spec-backed
        spec = self._specs[site]
        live = self.live_digest(site)
        if live is not None and live == self.snapshot_digest(site):
            latest = self._store.latest(path)
            if latest is not None:
                return latest
        written = self._store.save(path, self._capture(site, spec, system))
        self.stats.snapshots_saved += 1
        return written

    def snapshot_all(self) -> Dict[str, Path]:
        """Snapshot every commissioned spec-backed site; ``{site: path}``."""
        written: Dict[str, Path] = {}
        for site in self._specs:
            system = self._by_site.get(site)
            if system is not None and system.commissioned:
                written[site] = self.snapshot_site(site)
        return written

    def _seed_key(self) -> int:
        return task_key(self.seed, "serve-snapshot")

    def _capture(self, site: str, spec: ScenarioSpec, system: TafLoc):
        return snapshot_state(
            system,
            spec_name=spec.name,
            spec_fingerprint=_spec_fingerprint(spec),
            config_fingerprint=task_fingerprint(self.config),
            protocol_fingerprint=task_fingerprint(self.protocol),
            seed_key=self._seed_key(),
        )

    def _save_snapshot_for(self, site: str) -> None:
        """Best-effort persistence hook behind commission/update."""
        if self.snapshot_dir is None or site not in self._specs:
            return
        system = self._by_site.get(site)
        if system is None or not system.commissioned:
            return
        self._save_snapshot_system(site, self._specs[site], system)

    def _save_snapshot_system(
        self, site: str, spec: ScenarioSpec, system: TafLoc
    ) -> None:
        if self.snapshot_dir is None:
            return
        self._store.save(self.snapshot_path(site), self._capture(site, spec, system))
        self.stats.snapshots_saved += 1

    def _restore_one(self, path: Path, spec: ScenarioSpec) -> TafLoc:
        """Restore from one specific file; raises :class:`SnapshotError`."""
        snapshot = load_snapshot(path)
        expectations = (
            (snapshot.spec_fingerprint, _spec_fingerprint(spec), "spec"),
            (
                snapshot.config_fingerprint,
                task_fingerprint(self.config),
                "config",
            ),
            (
                snapshot.protocol_fingerprint,
                task_fingerprint(self.protocol),
                "protocol",
            ),
        )
        for stored, expected, label in expectations:
            if stored != expected:
                raise SnapshotError(
                    f"snapshot {path} was written under a different "
                    f"{label} (fingerprint {stored!r} != {expected!r})"
                )
        return restore_into(self._build_raw(spec), snapshot)

    def _try_restore(self, site: str, spec: ScenarioSpec) -> Optional[TafLoc]:
        """Restore ``site`` from its snapshot(s), or ``None`` to rebuild.

        Candidates are tried newest-first (with retention there can be
        several). A missing file is the normal cold path; a present-but-
        unusable one (corrupt, wrong format version, or written under a
        different spec/config/protocol) counts as *rejected* and the next-
        older version gets its chance — a stale snapshot must never win
        over correctness, but one bad write should not force a re-survey
        when a verified predecessor exists.
        """
        for path in self._store.candidates(self.snapshot_path(site)):
            try:
                system = self._restore_one(path, spec)
            except SnapshotError:
                self.stats.snapshots_rejected += 1
                continue
            self.stats.snapshots_restored += 1
            return system
        return None

    # ------------------------------------------------------------------
    # anti-entropy (digest arbitration + read-repair; see serve.snapshot)
    # ------------------------------------------------------------------
    def live_digest(self, site: str) -> Optional[str]:
        """Digest of the site's live fingerprint database, or ``None`` cold.

        Comparable bit-for-bit with :meth:`snapshot_digest` — equal
        digests mean the live epochs and the snapshotted ones are
        byte-identical. Never materializes a pipeline.
        """
        if not self.materialized(site):  # KeyError for unknown sites
            return None
        system = self.pipeline(site)
        if not system.commissioned or system.database.epoch_count == 0:
            return None
        return epochs_digest(system.database.epochs())

    def snapshot_digest(self, site: str) -> Optional[str]:
        """Digest recorded by the site's newest *readable* snapshot.

        Walks retention candidates newest-first and returns the first
        whose meta block validates; ``None`` when the site has no usable
        snapshot (no directory, never saved, or all copies corrupt).
        """
        if self.snapshot_dir is None or site not in self._specs:
            return None
        for path in self._store.candidates(self.snapshot_path(site)):
            try:
                return read_snapshot_digest(path)
            except SnapshotError:
                continue
        return None

    def has_snapshot(self, site: str) -> bool:
        """Whether any snapshot file exists for ``site`` (no validation)."""
        if self.snapshot_dir is None or site not in self._specs:
            return False
        return bool(self._store.candidates(self.snapshot_path(site)))

    def restore_site(self, site: str, *, refresh: bool = False) -> TafLoc:
        """Materialize ``site`` strictly from its snapshot — never survey.

        The degraded-serving path: when every replica of a site is down,
        the router answers from the last verified snapshot, and answering
        must not trigger a commissioning survey in the parent process.
        ``refresh=True`` drops any cached pipeline first so a newer
        snapshot wins. Raises :class:`SnapshotError` when no usable
        snapshot exists.
        """
        if self.snapshot_dir is None:
            raise RuntimeError(
                "this manager has no snapshot_dir; construct it with one "
                "to enable snapshot restores"
            )
        if site in self._attached:
            raise RuntimeError(
                f"site {site!r} is an attached pipeline; snapshots cover "
                "spec-backed sites only"
            )
        if site not in self._specs:
            raise KeyError(self._unknown(site))
        spec = self._specs[site]
        key = self._pipeline_key(site, spec)
        if refresh:
            self._drop_pipeline(site, spec)
        cached = self._by_site.get(site)
        if cached is not None:
            return cached
        if key not in self._pipelines:
            restored = self._try_restore(site, spec)
            if restored is None:
                raise SnapshotError(
                    f"no usable snapshot for site {site!r} in "
                    f"{self.snapshot_dir}"
                )
            self._pipelines[key] = restored
            self.stats.pipelines_built += 1
        else:
            self.stats.pipelines_shared += 1
        self._by_site[site] = self._pipelines[key]
        return self._by_site[site]

    def _drop_pipeline(self, site: str, spec: ScenarioSpec) -> None:
        """Forget the site's pipeline (and its aliases in shared mode)."""
        key = self._pipeline_key(site, spec)
        for other, other_spec in self._specs.items():
            if self._pipeline_key(other, other_spec) == key:
                self._by_site.pop(other, None)
        self._pipelines.pop(key, None)

    def repair_site(self, site: str) -> Dict[str, object]:
        """Rebuild the site's pipeline from authoritative state.

        The read-repair half of the anti-entropy loop: the diverged (e.g.
        bit-flipped) in-memory pipeline is dropped and the site is
        re-materialized through the lazy path — restoring from the newest
        valid snapshot when one exists (milliseconds, and bit-identical to
        the state the snapshot froze), falling back to a fresh
        commissioning survey when the snapshots themselves are unusable
        (correct fingerprints, at the cost of the survey and any epochs
        recorded since). Returns what happened.
        """
        if site in self._attached:
            raise RuntimeError(
                f"site {site!r} is an attached pipeline; repair covers "
                "spec-backed sites only"
            )
        if site not in self._specs:
            raise KeyError(self._unknown(site))
        spec = self._specs[site]
        self._drop_pipeline(site, spec)
        restored_before = self.stats.snapshots_restored
        system = self.pipeline(site)
        return {
            "site": site,
            "restored": self.stats.snapshots_restored > restored_before,
            "commissioned": bool(system.commissioned),
            "epochs": int(system.database.epoch_count),
        }

    def snapshot_maintenance(self) -> Dict[str, object]:
        """One lifecycle pass: save, scrub, compact; returns the report.

        The scheduler's snapshot-cadence hook (see
        ``SchedulerConfig.snapshot_cadence_days``): persists every
        commissioned site, checksum-verifies the whole directory
        (quarantining corrupt files out of the restore path), and prunes
        history per the retention policy. A no-op report without a
        ``snapshot_dir``.
        """
        if self.snapshot_dir is None:
            return {
                "enabled": False,
                "written": 0,
                "checked": 0,
                "corrupt": 0,
                "files_removed": 0,
                "bytes_reclaimed": 0,
                "total_bytes": 0,
            }
        # Saves prune inline (SnapshotStore.save compacts its own base),
        # so report the pass's prune work as a delta of the store's
        # lifetime counters rather than only the final compact's output.
        pruned_files = self._store.pruned_files
        pruned_bytes = self._store.pruned_bytes
        written = self.snapshot_all()
        scrubbed = self._store.scrub()
        self._store.compact()
        return {
            "enabled": True,
            "written": len(written),
            "checked": int(scrubbed["checked"]),
            "corrupt": int(scrubbed["corrupt"]),
            "files_removed": self._store.pruned_files - pruned_files,
            "bytes_reclaimed": self._store.pruned_bytes - pruned_bytes,
            "total_bytes": self._store.total_bytes(),
        }

    def _unknown(self, site: str) -> str:
        known = ", ".join(self.sites()) or "<none>"
        return f"unknown site {site!r}; registered: {known}"
